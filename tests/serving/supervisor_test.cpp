// Supervisor on a VirtualClock: the health ladder crosses thresholds at
// exact ages, failover retires a DEAD worker through remove_worker with
// every queued item accounted, the last worker is never removed, and
// growth via watch() enrolls new workers into the ladder.
#include "serving/supervisor.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "attacks/attack.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"
#include "serving/server.hpp"

namespace vibguard::serving {
namespace {

struct Population {
  struct Trial {
    eval::TrialRecordings recordings;
    std::unique_ptr<core::OracleSegmenter> segmenter;
  };
  std::vector<Trial> trials;

  static const Population& instance() {
    static Population* pop = [] {
      auto* p = new Population;
      eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 271);
      Rng rng(272);
      const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
      const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
      const auto& cmd = speech::command_by_text("unlock the front door");
      for (int i = 0; i < 4; ++i) {
        Trial trial;
        trial.recordings =
            i % 2 == 0 ? sim.legitimate_trial(cmd, user)
                       : sim.attack_trial(attacks::AttackType::kReplay, cmd,
                                          user, adv);
        trial.segmenter = std::make_unique<core::OracleSegmenter>(
            trial.recordings.alignment, eval::reference_sensitive_set());
        p->trials.push_back(std::move(trial));
      }
      return p;
    }();
    return *pop;
  }
};

ServerConfig small_fleet(std::size_t workers) {
  ServerConfig config;
  config.workers = workers;
  config.shard.queue_capacity = 64;
  config.shard.batch_max = 4;
  config.shard.batch_window_us = 0;
  return config;
}

SupervisorConfig thresholds() {
  SupervisorConfig config;
  config.slow_after_us = 10'000;
  config.wedged_after_us = 50'000;
  config.dead_after_us = 200'000;
  return config;
}

void beat_all(Server& server) {
  for (std::size_t w = 0; w < server.workers(); ++w) {
    if (server.worker_active(w)) server.shard(w).beat();
  }
}

ServerRequest make_request(const Population& pop, std::size_t i) {
  const auto& trial = pop.trials[i % pop.trials.size()];
  ServerRequest request;
  request.va = &trial.recordings.va;
  request.wearable = &trial.recordings.wearable;
  request.segmenter = trial.segmenter.get();
  request.rng = Rng(900).fork(i);
  request.request_id = i;
  return request;
}

TEST(SupervisorTest, ClassificationLadderCrossesAtThresholds) {
  VirtualClock clock(1'000'000);
  Server server(small_fleet(2), clock);
  Supervisor supervisor(server, thresholds(), clock);
  beat_all(server);  // both workers age 0

  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kHealthy);

  clock.advance(9'999);
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kHealthy);
  clock.advance(1);  // age = slow_after_us exactly
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kSlow);

  clock.advance(39'999);  // age = 49'999
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kSlow);
  clock.advance(1);  // age = wedged_after_us
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kWedged);

  clock.advance(149'999);  // age = 199'999
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kWedged);
  clock.advance(1);  // age = dead_after_us
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kDead);

  // A fresh beat resets the ladder.
  server.shard(0).beat();
  EXPECT_EQ(supervisor.classify(0), WorkerHealth::kHealthy);
}

TEST(SupervisorTest, PollRecordsTransitionsOnce) {
  VirtualClock clock;
  Server server(small_fleet(2), clock);
  SupervisorConfig config = thresholds();
  config.auto_failover = false;
  Supervisor supervisor(server, config, clock);
  beat_all(server);

  std::vector<ServedResult> out;
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_TRUE(supervisor.events().empty());  // everyone healthy, no change

  // Worker 1 stops beating; worker 0 stays fresh.
  clock.advance(20'000);
  server.shard(0).beat();
  supervisor.poll(out);
  ASSERT_EQ(supervisor.events().size(), 1u);
  EXPECT_EQ(supervisor.events()[0].worker, 1u);
  EXPECT_EQ(supervisor.events()[0].from, WorkerHealth::kHealthy);
  EXPECT_EQ(supervisor.events()[0].to, WorkerHealth::kSlow);

  // Same state on the next poll: no duplicate event.
  supervisor.poll(out);
  EXPECT_EQ(supervisor.events().size(), 1u);
  EXPECT_EQ(supervisor.health(1), WorkerHealth::kSlow);

  clock.advance(40'000);  // age 60'000: wedged
  server.shard(0).beat();
  supervisor.poll(out);
  ASSERT_EQ(supervisor.events().size(), 2u);
  EXPECT_EQ(supervisor.events()[1].to, WorkerHealth::kWedged);

  // Without auto_failover a dead worker is recorded but not removed.
  clock.advance(200'000);
  server.shard(0).beat();
  EXPECT_EQ(supervisor.poll(out), 0u);
  ASSERT_EQ(supervisor.events().size(), 3u);
  EXPECT_EQ(supervisor.events()[2].to, WorkerHealth::kDead);
  EXPECT_FALSE(supervisor.events()[2].failover);
  EXPECT_TRUE(server.worker_active(1));
  EXPECT_TRUE(out.empty());
}

TEST(SupervisorTest, FailoverRetiresDeadWorkerAndMigratesItsState) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(small_fleet(3), clock);
  Supervisor supervisor(server, thresholds(), clock);
  beat_all(server);

  // Open sessions spread across the fleet; the worker owning session 1
  // is the victim (placement is hash-determined, so pick, don't assume).
  std::map<std::uint64_t, SessionHandle> handles;
  const std::size_t victim = server.shard_of(1);
  std::vector<std::uint64_t> on_victim;
  for (std::uint64_t sid = 1; sid <= 24; ++sid) {
    handles[sid] = server.open_session(sid);
    if (server.shard_of(sid) == victim) on_victim.push_back(sid);
  }
  ASSERT_FALSE(on_victim.empty());

  // Queue one request on a victim-owned session so failover has an item
  // to re-home.
  ASSERT_EQ(server.submit(on_victim[0], handles[on_victim[0]],
                          make_request(pop, 0)),
            SubmitStatus::kQueued);
  const std::size_t sessions_before = server.sessions();

  // Every other worker keeps beating; the victim goes silent past
  // dead_after.
  clock.advance(250'000);
  for (std::size_t w = 0; w < server.workers(); ++w) {
    if (w != victim) server.shard(w).beat();
  }

  std::vector<ServedResult> out;
  EXPECT_EQ(supervisor.poll(out), 1u);
  EXPECT_FALSE(server.worker_active(victim));
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kRetired);
  EXPECT_EQ(supervisor.classify(victim), WorkerHealth::kRetired);
  EXPECT_EQ(supervisor.stats().failovers, 1u);

  // The failover event carries the migration ledger.
  const SupervisorEvent* failover = nullptr;
  for (const SupervisorEvent& e : supervisor.events()) {
    if (e.failover) failover = &e;
  }
  ASSERT_NE(failover, nullptr);
  EXPECT_EQ(failover->worker, victim);
  EXPECT_EQ(failover->to, WorkerHealth::kDead);
  EXPECT_EQ(failover->sessions_migrated, on_victim.size());
  EXPECT_EQ(failover->migrations.size(), on_victim.size());
  EXPECT_EQ(failover->items_requeued + failover->items_expired +
                failover->items_dropped,
            1u);

  // No session lost; every migrated session reachable via its new handle.
  EXPECT_EQ(server.sessions(), sessions_before);
  for (const ResizeReport::MigratedSession& m : failover->migrations) {
    EXPECT_EQ(m.from, victim);
    EXPECT_NE(m.to, victim);
    const SessionRecord* record = server.session(m.session_id, m.new_handle);
    ASSERT_NE(record, nullptr) << "session " << m.session_id;
    EXPECT_EQ(record->session_id, m.session_id);
    // A pre-failover handle must never alias: either it no longer
    // resolves, or (when the destination slab coincidentally minted the
    // same slot and generation) it resolves to the very same session.
    const SessionRecord* stale = server.session(m.session_id, m.old_handle);
    if (m.old_handle == m.new_handle) {
      EXPECT_EQ(stale, record);
    } else {
      EXPECT_EQ(stale, nullptr) << "stale handle must not resolve";
    }
  }

  // The re-homed item still gets served.
  std::vector<ServedResult> served;
  server.drain(served);
  std::size_t answered = static_cast<std::size_t>(served.size()) + out.size();
  EXPECT_EQ(answered, 1u);

  // The retired worker never comes back on later polls.
  clock.advance(1'000'000);
  beat_all(server);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_EQ(supervisor.health(victim), WorkerHealth::kRetired);
}

TEST(SupervisorTest, LastActiveWorkerIsNeverRemoved) {
  VirtualClock clock;
  Server server(small_fleet(2), clock);
  Supervisor supervisor(server, thresholds(), clock);
  beat_all(server);

  std::vector<ServedResult> out;
  // Both workers go silent together. Only one may be retired; the
  // survivor stays DEAD but on the ring (the ring must place somewhere).
  clock.advance(300'000);
  const std::size_t failovers = supervisor.poll(out);
  EXPECT_EQ(failovers, 1u);
  EXPECT_EQ(server.active_worker_ids().size(), 1u);
  const std::size_t survivor = server.active_worker_ids()[0];
  EXPECT_EQ(supervisor.health(survivor), WorkerHealth::kDead);

  // Still never removed, poll after poll.
  clock.advance(1'000'000);
  EXPECT_EQ(supervisor.poll(out), 0u);
  EXPECT_TRUE(server.worker_active(survivor));
}

TEST(SupervisorTest, WatchEnrollsGrownWorker) {
  VirtualClock clock;
  Server server(small_fleet(2), clock);
  Supervisor supervisor(server, thresholds(), clock);
  beat_all(server);

  std::vector<ServedResult> out;
  const std::size_t fresh = server.add_worker(out);
  EXPECT_EQ(fresh, 2u);
  supervisor.watch(fresh);
  server.shard(fresh).beat();
  EXPECT_EQ(supervisor.classify(fresh), WorkerHealth::kHealthy);

  // The grown worker rides the same ladder — and can itself fail over.
  clock.advance(250'000);
  server.shard(0).beat();
  server.shard(1).beat();
  EXPECT_EQ(supervisor.poll(out), 1u);
  EXPECT_FALSE(server.worker_active(fresh));
  EXPECT_EQ(supervisor.health(fresh), WorkerHealth::kRetired);
}

}  // namespace
}  // namespace vibguard::serving
