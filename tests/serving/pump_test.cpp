// Thread-per-worker pump loop on a real clock: start_pumps spawns one
// drainer per active worker, every submitted request is served exactly
// once through the sink, heartbeats advance on idle and busy iterations
// alike, and stop_pumps force-drains before joining. This is the slice
// the CI thread-sanitizer job exercises.
#include "serving/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "attacks/attack.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::serving {
namespace {

/// A small rendered population whose signals stay alive for the whole
/// process (requests borrow them while in flight on pump threads).
struct Population {
  struct Trial {
    eval::TrialRecordings recordings;
    std::unique_ptr<core::OracleSegmenter> segmenter;
  };
  std::vector<Trial> trials;

  static const Population& instance() {
    static Population* pop = [] {
      auto* p = new Population;
      eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 171);
      Rng rng(172);
      const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
      const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
      const auto& cmd = speech::command_by_text("unlock the front door");
      for (int i = 0; i < 4; ++i) {
        Trial trial;
        trial.recordings =
            i % 2 == 0 ? sim.legitimate_trial(cmd, user)
                       : sim.attack_trial(attacks::AttackType::kReplay, cmd,
                                          user, adv);
        trial.segmenter = std::make_unique<core::OracleSegmenter>(
            trial.recordings.alignment, eval::reference_sensitive_set());
        p->trials.push_back(std::move(trial));
      }
      return p;
    }();
    return *pop;
  }
};

ServerConfig pump_config(std::size_t workers) {
  ServerConfig config;
  config.workers = workers;
  config.shard.queue_capacity = 256;
  config.shard.batch_max = 4;
  config.shard.batch_window_us = 2'000;
  return config;
}

/// Thread-safe result collector handed to start_pumps.
struct Collector {
  std::mutex mu;
  std::vector<ServedResult> results;

  Server::ResultSink sink() {
    return [this](const ServedResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
    };
  }

  std::size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return results.size();
  }
};

/// Spins (with small sleeps) until `count()` reaches `want` or ~5 s pass.
void wait_for_results(Collector& collector, std::size_t want) {
  for (int spins = 0; spins < 5'000; ++spins) {
    if (collector.count() >= want) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(PumpTest, PumpsServeEveryRequestExactlyOnce) {
  const Population& pop = Population::instance();
  const SteadyClock& clock = SteadyClock::instance();
  Server server(pump_config(3), clock);

  const std::vector<std::uint64_t> session_ids = {901, 902, 903, 904};
  std::vector<SessionHandle> handles;
  for (std::uint64_t sid : session_ids) {
    handles.push_back(server.open_session(sid));
  }

  Collector collector;
  server.start_pumps(collector.sink());
  EXPECT_TRUE(server.pumps_running());

  // Submit from several producer threads while the pumps run.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 16;
  std::atomic<std::size_t> queued{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng base(500 + p);
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t t = (p + i) % pop.trials.size();
        const std::size_t s = (p + i) % session_ids.size();
        ServerRequest request;
        request.va = &pop.trials[t].recordings.va;
        request.wearable = &pop.trials[t].recordings.wearable;
        request.segmenter = pop.trials[t].segmenter.get();
        request.rng = base.fork(i);
        request.request_id = p * 1'000 + i;
        if (server.submit(session_ids[s], handles[s], request) ==
            SubmitStatus::kQueued) {
          queued.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(queued.load(), kProducers * kPerProducer);

  wait_for_results(collector, queued.load());
  server.stop_pumps();
  EXPECT_FALSE(server.pumps_running());

  // Exactly once: every request id appears once, scored, undegraded.
  std::map<std::uint64_t, std::size_t> seen;
  for (const ServedResult& r : collector.results) {
    ++seen[r.request_id];
    EXPECT_FALSE(r.expired_in_queue);
    EXPECT_EQ(r.outcome.status, core::ScoreStatus::kOk)
        << "request " << r.request_id << ": " << r.outcome.reason;
  }
  EXPECT_EQ(seen.size(), queued.load());
  for (const auto& [id, n] : seen) {
    EXPECT_EQ(n, 1u) << "request " << id << " served " << n << " times";
  }
}

TEST(PumpTest, IdlePumpsKeepHeartbeating) {
  const SteadyClock& clock = SteadyClock::instance();
  Server server(pump_config(2), clock);
  Collector collector;
  PumpConfig pump;
  pump.idle_poll_us = 500;
  server.start_pumps(collector.sink(), pump);

  // No work at all — the pumps must still beat at idle_poll cadence so a
  // supervisor can tell "idle" from "wedged".
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.stop_pumps();

  for (std::size_t w = 0; w < server.workers(); ++w) {
    EXPECT_GE(server.shard(w).beats(), 2u) << "worker " << w;
  }
  EXPECT_EQ(collector.count(), 0u);
}

TEST(PumpTest, StopPumpsForceDrainsQueuedWork) {
  const Population& pop = Population::instance();
  const SteadyClock& clock = SteadyClock::instance();
  ServerConfig config = pump_config(2);
  // A window far longer than the test: only the stop-path force drain can
  // serve these items.
  config.shard.batch_window_us = 60'000'000;
  config.shard.batch_max = 64;
  Server server(config, clock);

  const std::uint64_t sid = 31;
  const SessionHandle handle = server.open_session(sid);
  Collector collector;
  server.start_pumps(collector.sink());

  Rng base(7);
  constexpr std::size_t kRequests = 6;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const auto& trial = pop.trials[i % pop.trials.size()];
    ServerRequest request;
    request.va = &trial.recordings.va;
    request.wearable = &trial.recordings.wearable;
    request.segmenter = trial.segmenter.get();
    request.rng = base.fork(i);
    request.request_id = i;
    ASSERT_EQ(server.submit(sid, handle, request), SubmitStatus::kQueued);
  }

  server.stop_pumps();
  EXPECT_EQ(collector.count(), kRequests);
}

TEST(PumpTest, DestructorJoinsRunningPumps) {
  Collector collector;
  {
    const SteadyClock& clock = SteadyClock::instance();
    Server server(pump_config(2), clock);
    server.start_pumps(collector.sink());
    // Falls out of scope with pumps live; ~Server must stop and join them
    // (this test passing IS the assertion — a missed join aborts).
  }
  SUCCEED();
}

}  // namespace
}  // namespace vibguard::serving
