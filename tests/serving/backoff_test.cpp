#include "serving/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard::serving {
namespace {

TEST(BackoffTest, FirstDelayIsBase) {
  BackoffSchedule schedule({1000, 60000, 3.0}, Rng(7));
  EXPECT_EQ(schedule.next(), 1000u);
}

TEST(BackoffTest, DelaysStayWithinBaseAndCap) {
  const BackoffPolicy policy{500, 4000, 3.0};
  BackoffSchedule schedule(policy, Rng(11));
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t delay = schedule.next();
    EXPECT_GE(delay, policy.base_us) << "draw " << i;
    EXPECT_LE(delay, policy.cap_us) << "draw " << i;
  }
}

TEST(BackoffTest, GrowthBoundedByMultiplier) {
  const BackoffPolicy policy{100, 1'000'000, 2.0};
  BackoffSchedule schedule(policy, Rng(13));
  std::uint64_t prev = schedule.next();
  for (int i = 0; i < 32; ++i) {
    const std::uint64_t delay = schedule.next();
    // Decorrelated jitter: each draw is uniform in [base, prev*multiplier],
    // so it can shrink but never exceed the multiplied previous delay.
    EXPECT_LE(static_cast<double>(delay),
              static_cast<double>(prev) * policy.multiplier + 1.0);
    prev = delay;
  }
}

TEST(BackoffTest, DeterministicForSameRngStream) {
  const BackoffPolicy policy{250, 8000, 3.0};
  BackoffSchedule a(policy, Rng(99));
  BackoffSchedule b(policy, Rng(99));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), b.next()) << "draw " << i;
  }
}

TEST(BackoffTest, ZeroBaseDisablesBackoff) {
  BackoffSchedule schedule({0, 8000, 3.0}, Rng(1));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(schedule.next(), 0u);
}

TEST(BackoffTest, CapBelowBaseIsRaisedToBase) {
  BackoffSchedule schedule({1000, 10, 2.0}, Rng(3));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(schedule.next(), 1000u);
}

TEST(BackoffTest, RejectsShrinkingMultiplier) {
  EXPECT_THROW(BackoffSchedule({100, 1000, 0.5}, Rng(1)), Error);
}

}  // namespace
}  // namespace vibguard::serving
