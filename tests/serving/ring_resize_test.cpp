// ConsistentHashRing resize properties — the placement-stability contract
// that makes failover migration cheap and growth migration bounded:
//
//   remove(w): a key changes owner iff its old owner was w, and every
//              such key lands on a still-active worker;
//   add(w):    a key changes owner iff its new owner is w (only the new
//              worker's arcs move — no third-party shuffling);
//   incremental construction (add_worker one at a time, in any order)
//              places every key identically to a fresh ring built over
//              the same active set.
//
// Each property is checked over many keys, several fleet sizes, and
// several replica counts — the "seeds" here are key streams drawn from
// distinct splitmix64 substreams, since ring point placement itself is
// deliberately seed-free (a pure function of worker × replica).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "serving/shard.hpp"

namespace vibguard::serving {
namespace {

constexpr std::size_t kKeys = 4096;

std::vector<std::uint64_t> key_stream(std::uint64_t seed) {
  std::vector<std::uint64_t> keys;
  keys.reserve(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    keys.push_back(mix64(seed * 0x9e3779b97f4a7c15ULL + i));
  }
  return keys;
}

std::vector<std::size_t> placements(const ConsistentHashRing& ring,
                                    const std::vector<std::uint64_t>& keys) {
  std::vector<std::size_t> owners;
  owners.reserve(keys.size());
  for (std::uint64_t k : keys) owners.push_back(ring.worker_for(k));
  return owners;
}

struct Param {
  std::size_t workers;
  std::size_t replicas;
  std::uint64_t seed;
};

const Param kParams[] = {
    {2, 16, 1},  {2, 64, 2},   {3, 32, 3},  {4, 64, 4},
    {4, 128, 5}, {6, 64, 6},   {8, 64, 7},  {8, 128, 8},
    {5, 1, 9},   {12, 256, 10},
};

TEST(RingResizeTest, RemoveMovesOnlyTheRemovedWorkersKeys) {
  for (const Param& p : kParams) {
    const std::vector<std::uint64_t> keys = key_stream(p.seed);
    for (std::size_t victim = 0; victim < p.workers; ++victim) {
      ConsistentHashRing ring(p.workers, p.replicas);
      const std::vector<std::size_t> before = placements(ring, keys);
      ring.remove_worker(victim);
      EXPECT_FALSE(ring.contains(victim));
      const std::vector<std::size_t> after = placements(ring, keys);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        if (before[i] == victim) {
          EXPECT_NE(after[i], victim)
              << "key still routed to removed worker " << victim;
        } else {
          EXPECT_EQ(after[i], before[i])
              << "removal of worker " << victim
              << " moved a key owned by worker " << before[i];
        }
      }
    }
  }
}

TEST(RingResizeTest, AddMovesKeysOnlyOntoTheNewWorker) {
  for (const Param& p : kParams) {
    const std::vector<std::uint64_t> keys = key_stream(p.seed);
    ConsistentHashRing ring(p.workers, p.replicas);
    const std::vector<std::size_t> before = placements(ring, keys);
    const std::size_t fresh = p.workers;  // next index, as the server grows
    ring.add_worker(fresh);
    EXPECT_TRUE(ring.contains(fresh));
    const std::vector<std::size_t> after = placements(ring, keys);
    std::size_t moved = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (after[i] != before[i]) {
        EXPECT_EQ(after[i], fresh)
            << "growth moved a key to worker " << after[i]
            << ", not the new worker";
        ++moved;
      }
    }
    // The new worker's arc is roughly 1/(N+1) of the ring; what matters
    // here is only that growth cannot trigger a global reshuffle. Bound
    // the movement at 3x the fair share (generous for small replica
    // counts, still far below "everything moved").
    const double fair = static_cast<double>(kKeys) /
                        static_cast<double>(p.workers + 1);
    EXPECT_LE(static_cast<double>(moved), 3.0 * fair)
        << "workers=" << p.workers << " replicas=" << p.replicas;
  }
}

TEST(RingResizeTest, AddThenRemoveRoundTripsPlacement) {
  for (const Param& p : kParams) {
    const std::vector<std::uint64_t> keys = key_stream(p.seed);
    ConsistentHashRing ring(p.workers, p.replicas);
    const std::vector<std::size_t> before = placements(ring, keys);
    ring.add_worker(p.workers);
    ring.remove_worker(p.workers);
    EXPECT_EQ(placements(ring, keys), before);
  }
}

TEST(RingResizeTest, IncrementalBuildMatchesFreshBuild) {
  for (const Param& p : kParams) {
    const std::vector<std::uint64_t> keys = key_stream(p.seed);
    const ConsistentHashRing fresh(p.workers, p.replicas);
    // Grow from a single worker up to the full set, one add at a time.
    ConsistentHashRing grown(1, p.replicas);
    for (std::size_t w = 1; w < p.workers; ++w) grown.add_worker(w);
    EXPECT_EQ(placements(grown, keys), placements(fresh, keys))
        << "workers=" << p.workers << " replicas=" << p.replicas;
  }
}

TEST(RingResizeTest, RemovalSurvivorsRebuildIdentically) {
  // After removing a worker, the ring must equal a fresh ring built over
  // the survivors — removal leaves no residue.
  const std::vector<std::uint64_t> keys = key_stream(42);
  ConsistentHashRing ring(4, 64);
  ring.remove_worker(2);
  ConsistentHashRing survivors(1, 64);  // worker 0
  survivors.add_worker(1);
  survivors.add_worker(3);
  EXPECT_EQ(placements(ring, keys), placements(survivors, keys));
}

TEST(RingResizeTest, EveryKeyAlwaysLandsOnAnActiveWorker) {
  const std::vector<std::uint64_t> keys = key_stream(7);
  ConsistentHashRing ring(5, 32);
  ring.remove_worker(0);
  ring.remove_worker(3);
  ring.add_worker(5);
  const std::vector<std::size_t> active = ring.active_workers();
  ASSERT_EQ(active, (std::vector<std::size_t>{1, 2, 4, 5}));
  for (std::uint64_t k : keys) {
    const std::size_t w = ring.worker_for(k);
    EXPECT_TRUE(ring.contains(w)) << "key routed to inactive worker " << w;
  }
}

TEST(RingResizeTest, SessionMigrationSetMatchesRingDelta) {
  // The exact set the server migrates on failover: sessions whose owner
  // was the removed worker, nothing else. Pin it for a concrete fleet.
  constexpr std::size_t kSessions = 512;
  ConsistentHashRing ring(4, 64);
  std::map<std::uint64_t, std::size_t> owner_before;
  for (std::uint64_t s = 0; s < kSessions; ++s) {
    owner_before[s] = ring.worker_for(mix64(s));
  }
  ring.remove_worker(1);
  std::size_t migrated = 0;
  for (std::uint64_t s = 0; s < kSessions; ++s) {
    const std::size_t now = ring.worker_for(mix64(s));
    if (owner_before[s] == 1) {
      EXPECT_NE(now, 1u);
      ++migrated;
    } else {
      EXPECT_EQ(now, owner_before[s]);
    }
  }
  // Worker 1 owned a nontrivial share; all of it (and only it) moved.
  EXPECT_GT(migrated, 0u);
  EXPECT_LT(migrated, kSessions);
}

}  // namespace
}  // namespace vibguard::serving
