// WorkQueue close() semantics — the retirement contract a failover leans
// on: close rejects every future push, wakes every consumer blocked in
// pop_blocking, and already-accepted items stay poppable until drained.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serving/shard.hpp"

namespace vibguard::serving {
namespace {

WorkItem item(std::uint64_t id) {
  WorkItem w;
  w.request_id = id;
  return w;
}

TEST(QueueCloseTest, PushAfterCloseIsRejected) {
  MutexRingQueue queue(4);
  EXPECT_TRUE(queue.try_push(item(1)));
  queue.close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.try_push(item(2)));
  // The accepted item still drains.
  WorkItem out;
  EXPECT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.request_id, 1u);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(QueueCloseTest, CloseIsIdempotent) {
  MutexRingQueue queue(2);
  queue.close();
  queue.close();
  EXPECT_TRUE(queue.closed());
}

TEST(QueueCloseTest, PopBlockingDrainsThenReportsClosed) {
  MutexRingQueue queue(4);
  ASSERT_TRUE(queue.try_push(item(1)));
  ASSERT_TRUE(queue.try_push(item(2)));
  queue.close();
  WorkItem out;
  // Closed but not drained: pops keep succeeding, FIFO.
  EXPECT_TRUE(queue.pop_blocking(out));
  EXPECT_EQ(out.request_id, 1u);
  EXPECT_TRUE(queue.pop_blocking(out));
  EXPECT_EQ(out.request_id, 2u);
  // Closed and drained: false, immediately (no block).
  EXPECT_FALSE(queue.pop_blocking(out));
}

// The regression the satellite demands: park several consumer threads in
// blocking pops on an empty queue, then close() — every one of them must
// wake and return false. A close() that only signals one waiter (or
// none) deadlocks this test rather than failing an assertion, so the
// 900 s ctest timeout is the failure detector of last resort; the
// threads themselves prove wake-all by all joining.
TEST(QueueCloseTest, CloseWakesEveryBlockedConsumer) {
  MutexRingQueue queue(4);
  constexpr int kConsumers = 8;
  std::atomic<int> parked{0};
  std::atomic<int> woke_empty{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      parked.fetch_add(1, std::memory_order_relaxed);
      WorkItem out;
      if (!queue.pop_blocking(out)) {
        woke_empty.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Wait until every consumer has at least reached the pop call; they
  // then block inside it (the queue is empty).
  while (parked.load(std::memory_order_relaxed) < kConsumers) {
    std::this_thread::yield();
  }
  queue.close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(woke_empty.load(), kConsumers);
}

// Producers racing close(): every item is either pushed (and then
// poppable) or explicitly rejected — the push/close race can never lose
// an accepted item or accept one after the rejection was reported.
TEST(QueueCloseTest, PushCloseRaceNeverLosesAcceptedItems) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  MutexRingQueue queue(kProducers * kPerProducer);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.try_push(item(static_cast<std::uint64_t>(p * 1000 + i)))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  queue.close();
  for (std::thread& t : producers) t.join();
  WorkItem out;
  int drained = 0;
  while (queue.try_pop(out)) ++drained;
  EXPECT_EQ(drained, accepted.load());
}

}  // namespace
}  // namespace vibguard::serving
