#include "serving/admission.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace vibguard::serving {
namespace {

TEST(AdmissionTest, RejectsWhenQueueIsFull) {
  VirtualClock clock;
  AdmissionController admission({2}, clock);
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_TRUE(admission.try_admit(1));
  EXPECT_FALSE(admission.try_admit(2));  // explicit backpressure
  EXPECT_EQ(admission.depth(), 2u);
  EXPECT_EQ(admission.stats().admitted, 2u);
  EXPECT_EQ(admission.stats().rejected, 1u);
}

TEST(AdmissionTest, DrainsFifoWithQueueTimes) {
  VirtualClock clock;
  AdmissionController admission({4}, clock);
  admission.try_admit(7);
  clock.advance(100);
  admission.try_admit(8);
  clock.advance(50);

  auto first = admission.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request_id, 7u);
  EXPECT_EQ(first->queue_us, 150u);

  clock.advance(25);
  auto second = admission.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request_id, 8u);
  EXPECT_EQ(second->queue_us, 75u);

  EXPECT_FALSE(admission.next().has_value());
  EXPECT_EQ(admission.stats().dequeued, 2u);
  EXPECT_EQ(admission.stats().total_queue_us, 225u);
  EXPECT_EQ(admission.stats().max_queue_us, 150u);
  EXPECT_DOUBLE_EQ(admission.stats().mean_queue_us(), 112.5);
}

TEST(AdmissionTest, CapacityFreesAsRequestsDequeue) {
  VirtualClock clock;
  AdmissionController admission({1}, clock);
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_FALSE(admission.try_admit(1));
  ASSERT_TRUE(admission.next().has_value());
  EXPECT_TRUE(admission.try_admit(1));
}

TEST(AdmissionTest, ClearDropsQueueAndStats) {
  VirtualClock clock;
  AdmissionController admission({2}, clock);
  admission.try_admit(0);
  admission.try_admit(1);
  admission.try_admit(2);
  admission.clear();
  EXPECT_EQ(admission.depth(), 0u);
  EXPECT_EQ(admission.stats().admitted, 0u);
  EXPECT_EQ(admission.stats().rejected, 0u);
  EXPECT_FALSE(admission.next().has_value());
}

TEST(AdmissionTest, ZeroCapacityRejectsCleanly) {
  // Capacity 0 is a legal "admit nothing" configuration: every try_admit
  // is a clean, counted rejection — not a constructor throw, and not a
  // pollution of the queue-time aggregates.
  VirtualClock clock;
  AdmissionController admission({0}, clock);
  EXPECT_FALSE(admission.try_admit(0));
  EXPECT_FALSE(admission.try_admit(1));
  EXPECT_EQ(admission.depth(), 0u);
  EXPECT_EQ(admission.stats().admitted, 0u);
  EXPECT_EQ(admission.stats().rejected, 2u);
  EXPECT_EQ(admission.stats().dequeued, 0u);
  EXPECT_DOUBLE_EQ(admission.stats().mean_queue_us(), 0.0);
  EXPECT_FALSE(admission.next().has_value());
}

TEST(AdmissionTest, PeekShowsHeadWithoutDequeuing) {
  VirtualClock clock;
  AdmissionController admission({2}, clock);
  EXPECT_FALSE(admission.peek().has_value());
  admission.try_admit(11);
  admission.try_admit(12);
  ASSERT_TRUE(admission.peek().has_value());
  EXPECT_EQ(*admission.peek(), 11u);
  EXPECT_EQ(admission.depth(), 2u);  // peek must not consume
  EXPECT_EQ(admission.stats().dequeued, 0u);
  auto head = admission.next();
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(head->request_id, 11u);
  EXPECT_EQ(*admission.peek(), 12u);
}

TEST(AdmissionTest, ExpiredDequeueDoesNotPolluteQueueTimeStats) {
  // A request dropped because its deadline passed while queued must not
  // enter the service-side queue-time aggregates: `dequeued`,
  // `total_queue_us` and `max_queue_us` describe only requests that went
  // on to be served, so the mean wait stays meaningful under overload.
  VirtualClock clock;
  AdmissionController admission({4}, clock);
  admission.try_admit(0);
  clock.advance(100);
  admission.try_admit(1);

  clock.advance(900);  // request 0 has now waited 1000us — assume expired
  auto expired = admission.next_expired();
  ASSERT_TRUE(expired.has_value());
  EXPECT_EQ(expired->request_id, 0u);
  EXPECT_EQ(expired->queue_us, 1000u);  // reported, but not aggregated
  EXPECT_EQ(admission.stats().expired, 1u);
  EXPECT_EQ(admission.stats().dequeued, 0u);
  EXPECT_EQ(admission.stats().total_queue_us, 0u);
  EXPECT_EQ(admission.stats().max_queue_us, 0u);
  EXPECT_DOUBLE_EQ(admission.stats().mean_queue_us(), 0.0);

  auto served = admission.next();
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->request_id, 1u);
  EXPECT_EQ(served->queue_us, 900u);
  EXPECT_EQ(admission.stats().dequeued, 1u);
  EXPECT_EQ(admission.stats().total_queue_us, 900u);
  EXPECT_DOUBLE_EQ(admission.stats().mean_queue_us(), 900.0);

  EXPECT_FALSE(admission.next_expired().has_value());  // empty queue
}

}  // namespace
}  // namespace vibguard::serving
