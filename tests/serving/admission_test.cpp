#include "serving/admission.hpp"

#include <gtest/gtest.h>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace vibguard::serving {
namespace {

TEST(AdmissionTest, RejectsWhenQueueIsFull) {
  VirtualClock clock;
  AdmissionController admission({2}, clock);
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_TRUE(admission.try_admit(1));
  EXPECT_FALSE(admission.try_admit(2));  // explicit backpressure
  EXPECT_EQ(admission.depth(), 2u);
  EXPECT_EQ(admission.stats().admitted, 2u);
  EXPECT_EQ(admission.stats().rejected, 1u);
}

TEST(AdmissionTest, DrainsFifoWithQueueTimes) {
  VirtualClock clock;
  AdmissionController admission({4}, clock);
  admission.try_admit(7);
  clock.advance(100);
  admission.try_admit(8);
  clock.advance(50);

  auto first = admission.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->request_id, 7u);
  EXPECT_EQ(first->queue_us, 150u);

  clock.advance(25);
  auto second = admission.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->request_id, 8u);
  EXPECT_EQ(second->queue_us, 75u);

  EXPECT_FALSE(admission.next().has_value());
  EXPECT_EQ(admission.stats().dequeued, 2u);
  EXPECT_EQ(admission.stats().total_queue_us, 225u);
  EXPECT_EQ(admission.stats().max_queue_us, 150u);
  EXPECT_DOUBLE_EQ(admission.stats().mean_queue_us(), 112.5);
}

TEST(AdmissionTest, CapacityFreesAsRequestsDequeue) {
  VirtualClock clock;
  AdmissionController admission({1}, clock);
  EXPECT_TRUE(admission.try_admit(0));
  EXPECT_FALSE(admission.try_admit(1));
  ASSERT_TRUE(admission.next().has_value());
  EXPECT_TRUE(admission.try_admit(1));
}

TEST(AdmissionTest, ClearDropsQueueAndStats) {
  VirtualClock clock;
  AdmissionController admission({2}, clock);
  admission.try_admit(0);
  admission.try_admit(1);
  admission.try_admit(2);
  admission.clear();
  EXPECT_EQ(admission.depth(), 0u);
  EXPECT_EQ(admission.stats().admitted, 0u);
  EXPECT_EQ(admission.stats().rejected, 0u);
  EXPECT_FALSE(admission.next().has_value());
}

TEST(AdmissionTest, RejectsZeroCapacity) {
  VirtualClock clock;
  EXPECT_THROW(AdmissionController({0}, clock), Error);
}

}  // namespace
}  // namespace vibguard::serving
