// Serving policy behavior of DefenseSession: retry with deterministic
// backoff, per-command deadline budgets, circuit-breaker degradation with
// half-open probing, and admission-controlled batch processing — all driven
// by a VirtualClock so every transition is reproducible, plus the guarantee
// that enabling none of it changes a single bit of the default behavior.
#include "core/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/clock.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"
#include "faults/fault.hpp"

namespace vibguard::core {
namespace {

/// Segmenter that fails its first `failures` calls, then delegates — the
/// deterministic stand-in for a transiently broken pipeline dependency.
class FlakySegmenter : public Segmenter {
 public:
  FlakySegmenter(const Segmenter& inner, int failures)
      : inner_(inner), remaining_(failures) {}

  std::vector<SampleRange> segment(const Signal& audio,
                                   std::size_t timeline_offset) const override {
    if (remaining_ > 0) {
      --remaining_;
      throw std::runtime_error("flaky segmenter outage");
    }
    return inner_.segment(audio, timeline_offset);
  }

 private:
  const Segmenter& inner_;
  mutable int remaining_;
};

SessionPolicy retry_policy(std::size_t retries) {
  SessionPolicy policy;
  policy.max_retries = retries;
  return policy;
}

SessionPolicy breaker_policy(std::size_t threshold) {
  SessionPolicy policy;
  policy.max_retries = 0;
  policy.breaker = serving::BreakerConfig{threshold, 1000, 1};
  return policy;
}

struct Fixture {
  eval::ScenarioSimulator sim{eval::ScenarioConfig{}, 9};
  speech::SpeakerProfile user;
  eval::TrialRecordings trial;
  OracleSegmenter segmenter;

  Fixture()
      : user([] {
          Rng rng(10);
          return speech::sample_speaker(speech::Sex::kMale, rng);
        }()),
        trial(sim.legitimate_trial(
            speech::command_by_text("turn on the lights"), user)),
        segmenter(trial.alignment, eval::reference_sensitive_set()) {}
};

TEST(SessionServingTest, RetryRecoversFromTransientStageError) {
  Fixture fx;
  FlakySegmenter flaky(fx.segmenter, /*failures=*/1);
  DefenseSession session(DefenseConfig{}, SessionPolicy{.max_retries = 2});
  Rng rng(51);
  const auto event =
      session.process("transient", fx.trial.va, fx.trial.wearable, &flaky, rng);
  EXPECT_EQ(event.verdict, Verdict::kAccepted);
  EXPECT_EQ(event.attempts, 2u);  // failed once, recovered on the retry
  EXPECT_EQ(session.stats().retries, 1u);
  EXPECT_EQ(session.stats().indeterminate, 0u);
}

TEST(SessionServingTest, RetriesExhaustOnPersistentFault) {
  Fixture fx;
  // A persistently corrupted capture (PR 4 fault injector at full severity)
  // fails every attempt: the session burns all retries, then settles on
  // kIndeterminate rather than a hostile verdict.
  Signal corrupted = fx.trial.wearable;
  Rng fault_rng(52);
  faults::severity_plan(faults::FaultKind::kNonFinite, 1.0)
      .apply(corrupted, fault_rng);
  DefenseSession session(DefenseConfig{}, SessionPolicy{.max_retries = 3});
  Rng rng(53);
  const auto event = session.process("corrupted", fx.trial.va, corrupted,
                                     &fx.segmenter, rng);
  EXPECT_EQ(event.verdict, Verdict::kIndeterminate);
  EXPECT_EQ(event.attempts, 4u);  // 1 attempt + 3 retries
  EXPECT_EQ(session.stats().retries, 3u);
  EXPECT_TRUE(std::isnan(event.score));
}

TEST(SessionServingTest, BackoffWaitsOnTheSessionClockDeterministically) {
  Fixture fx;
  const Signal dead =
      Signal::zeros(fx.trial.wearable.size(), fx.trial.wearable.sample_rate());
  const SessionPolicy policy{.max_retries = 2,
                             .backoff = {1000, 8000, 3.0}};
  std::uint64_t first_total = 0;
  for (int round = 0; round < 2; ++round) {
    VirtualClock clock;
    DefenseSession session(DefenseConfig{}, policy, &clock);
    Rng rng(54);
    const auto event =
        session.process("dead", fx.trial.va, dead, &fx.segmenter, rng);
    EXPECT_EQ(event.verdict, Verdict::kIndeterminate);
    EXPECT_EQ(event.attempts, 3u);
    EXPECT_GE(event.backoff_us, 2u * policy.backoff.base_us);
    // All waiting happened on the injected clock, nowhere else.
    EXPECT_EQ(clock.now_us(), event.backoff_us);
    if (round == 0) {
      first_total = event.backoff_us;
    } else {
      EXPECT_EQ(event.backoff_us, first_total);  // bit-reproducible schedule
    }
  }
}

TEST(SessionServingTest, NoClockMeansNoBackoffWait) {
  Fixture fx;
  const Signal dead =
      Signal::zeros(fx.trial.wearable.size(), fx.trial.wearable.sample_rate());
  DefenseSession session(
      DefenseConfig{},
      SessionPolicy{.max_retries = 1, .backoff = {1000, 8000, 3.0}});
  Rng rng(55);
  const auto event =
      session.process("dead", fx.trial.va, dead, &fx.segmenter, rng);
  EXPECT_EQ(event.attempts, 2u);
  EXPECT_EQ(event.backoff_us, 0u);
}

TEST(SessionServingTest, ExpiredDeadlineEndsCommandWithoutRetries) {
  Fixture fx;
  VirtualClock clock(100);
  DefenseSession session(
      DefenseConfig{},
      SessionPolicy{.max_retries = 3, .deadline_us = 0}, &clock);
  Rng rng(56);
  const auto event = session.process("no budget", fx.trial.va,
                                     fx.trial.wearable, &fx.segmenter, rng);
  EXPECT_EQ(event.verdict, Verdict::kIndeterminate);
  EXPECT_EQ(event.note, "deadline_exceeded");
  EXPECT_EQ(event.attempts, 1u);  // the budget covers the whole command
  EXPECT_EQ(session.stats().deadline_exceeded, 1u);
  EXPECT_EQ(session.stats().retries, 0u);
}

TEST(SessionServingTest, GenerousDeadlineScoresBitIdenticalToDefault) {
  Fixture fx;
  DefenseSession plain;
  Rng r1(57);
  const auto base = plain.process("cmd", fx.trial.va, fx.trial.wearable,
                                  &fx.segmenter, r1);

  VirtualClock clock;
  DefenseSession bounded(
      DefenseConfig{},
      SessionPolicy{.max_retries = 1, .deadline_us = 1'000'000'000}, &clock);
  Rng r2(57);
  const auto event = bounded.process("cmd", fx.trial.va, fx.trial.wearable,
                                     &fx.segmenter, r2);
  EXPECT_EQ(event.verdict, base.verdict);
  EXPECT_EQ(event.score, base.score);  // exact: same bits
  EXPECT_EQ(bounded.stats().deadline_exceeded, 0u);
}

TEST(SessionServingTest, BreakerTripsAndRoutesToDegradedMode) {
  Fixture fx;
  VirtualClock clock;
  DefenseSession session(
      DefenseConfig{},
      SessionPolicy{.max_retries = 0,
                    .breaker = serving::BreakerConfig{2, 1000, 1}},
      &clock);
  ASSERT_NE(session.breaker(), nullptr);
  ASSERT_NE(session.degraded_system(), nullptr);
  EXPECT_EQ(session.degraded_system()->config().mode,
            DefenseMode::kAudioBaseline);

  // kFull without a segmenter fails hard at the precheck: two consecutive
  // hard failures trip the breaker.
  Rng r1(58), r2(59), r3(60);
  const auto e1 = session.process("fail 1", fx.trial.va, fx.trial.wearable,
                                  nullptr, r1);
  EXPECT_EQ(e1.verdict, Verdict::kIndeterminate);
  EXPECT_FALSE(e1.degraded);
  EXPECT_EQ(session.breaker()->state(), serving::BreakerState::kClosed);
  const auto e2 = session.process("fail 2", fx.trial.va, fx.trial.wearable,
                                  nullptr, r2);
  EXPECT_FALSE(e2.degraded);
  EXPECT_EQ(session.breaker()->state(), serving::BreakerState::kOpen);
  EXPECT_EQ(session.breaker()->tripped_stage(), "precheck");
  EXPECT_EQ(session.breaker()->trips(), 1u);

  // While open, commands run in the degraded audio-baseline mode, which
  // needs no segmenter — the session keeps answering.
  const auto e3 = session.process("degraded", fx.trial.va, fx.trial.wearable,
                                  nullptr, r3);
  EXPECT_TRUE(e3.degraded);
  EXPECT_NE(e3.verdict, Verdict::kIndeterminate);
  EXPECT_FALSE(std::isnan(e3.score));
  EXPECT_NE(e3.note.find("degraded: breaker open (precheck)"),
            std::string::npos)
      << e3.note;
  EXPECT_EQ(session.stats().degraded, 1u);
}

TEST(SessionServingTest, HalfOpenProbeSuccessClosesBreaker) {
  Fixture fx;
  VirtualClock clock;
  DefenseSession session(
      DefenseConfig{},
      SessionPolicy{.max_retries = 0,
                    .breaker = serving::BreakerConfig{2, 1000, 1}},
      &clock);
  Rng r1(61), r2(62), r3(63);
  session.process("fail 1", fx.trial.va, fx.trial.wearable, nullptr, r1);
  session.process("fail 2", fx.trial.va, fx.trial.wearable, nullptr, r2);
  ASSERT_EQ(session.breaker()->state(), serving::BreakerState::kOpen);

  clock.advance(1000);  // cooldown elapses
  EXPECT_EQ(session.breaker()->state(), serving::BreakerState::kHalfOpen);
  // The probe runs on the primary pipeline — this time with a working
  // segmenter — succeeds, and the breaker closes.
  const auto probe = session.process("probe", fx.trial.va, fx.trial.wearable,
                                     &fx.segmenter, r3);
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(probe.verdict, Verdict::kAccepted);
  EXPECT_EQ(session.breaker()->state(), serving::BreakerState::kClosed);
}

TEST(SessionServingTest, HalfOpenProbeFailureReopensBreaker) {
  Fixture fx;
  VirtualClock clock;
  DefenseSession session(
      DefenseConfig{},
      SessionPolicy{.max_retries = 0,
                    .breaker = serving::BreakerConfig{2, 1000, 1}},
      &clock);
  Rng r1(64), r2(65), r3(66), r4(67);
  session.process("fail 1", fx.trial.va, fx.trial.wearable, nullptr, r1);
  session.process("fail 2", fx.trial.va, fx.trial.wearable, nullptr, r2);
  ASSERT_EQ(session.breaker()->state(), serving::BreakerState::kOpen);

  clock.advance(1000);
  const auto probe = session.process("probe", fx.trial.va, fx.trial.wearable,
                                     nullptr, r3);
  EXPECT_FALSE(probe.degraded);  // the probe itself runs on the primary
  EXPECT_EQ(session.breaker()->state(), serving::BreakerState::kOpen);

  // Back under cooldown: the next command is degraded again.
  const auto e4 = session.process("still open", fx.trial.va, fx.trial.wearable,
                                  nullptr, r4);
  EXPECT_TRUE(e4.degraded);
}

TEST(SessionServingTest, ResetRestoresBreakerToClosed) {
  Fixture fx;
  VirtualClock clock;
  DefenseSession session(
      DefenseConfig{},
      SessionPolicy{.max_retries = 0,
                    .breaker = serving::BreakerConfig{1, 1000, 1}},
      &clock);
  Rng r1(68);
  session.process("fail", fx.trial.va, fx.trial.wearable, nullptr, r1);
  ASSERT_EQ(session.breaker()->state(), serving::BreakerState::kOpen);
  session.reset();
  EXPECT_EQ(session.breaker()->state(), serving::BreakerState::kClosed);
  EXPECT_EQ(session.breaker()->trips(), 0u);
}

TEST(SessionServingTest, ProcessAdmittedRejectsBeyondQueueCapacity) {
  Fixture fx;
  VirtualClock clock;
  DefenseSession session;
  serving::AdmissionController admission({1}, clock);

  std::vector<SessionRequest> requests;
  requests.push_back(SessionRequest{"a", &fx.trial.va, &fx.trial.wearable,
                                    &fx.segmenter, Rng(70)});
  requests.push_back(SessionRequest{"b", &fx.trial.va, &fx.trial.wearable,
                                    &fx.segmenter, Rng(71)});
  requests.push_back(SessionRequest{"c", &fx.trial.va, &fx.trial.wearable,
                                    &fx.segmenter, Rng(72)});
  const auto events = session.process_admitted(requests, admission);

  // The burst arrives at once: one fits the queue, two are rejected with
  // explicit backpressure; rejections are logged at submission time, the
  // drained command after them.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].label, "b");
  EXPECT_EQ(events[0].verdict, Verdict::kRejectedOverload);
  EXPECT_EQ(events[0].note, "queue_full");
  EXPECT_TRUE(std::isnan(events[0].score));
  EXPECT_EQ(events[1].label, "c");
  EXPECT_EQ(events[1].verdict, Verdict::kRejectedOverload);
  EXPECT_EQ(events[2].label, "a");
  EXPECT_EQ(events[2].verdict, Verdict::kAccepted);

  EXPECT_EQ(session.stats().rejected_overload, 2u);
  EXPECT_EQ(session.stats().processed, 3u);
  const auto& q = session.pipeline_stats().queue;
  EXPECT_EQ(q.admitted, 1u);
  EXPECT_EQ(q.rejected, 2u);
  EXPECT_EQ(q.dequeued, 1u);
}

TEST(SessionServingTest, ProcessAdmittedAccountsQueueTime) {
  Fixture fx;
  VirtualClock clock;
  DefenseSession session;
  serving::AdmissionController admission({4}, clock);
  std::vector<SessionRequest> requests;
  requests.push_back(SessionRequest{"a", &fx.trial.va, &fx.trial.wearable,
                                    &fx.segmenter, Rng(73)});
  // On a virtual clock that nobody advances the burst drains instantly,
  // so queue times are exactly zero — deterministic accounting.
  const auto events = session.process_admitted(requests, admission);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].queue_us, 0u);
  EXPECT_EQ(session.pipeline_stats().queue.total_queue_us, 0u);
  // The queue line shows up in the printed summary once admission ran.
  EXPECT_NE(session.pipeline_stats().summary().find("queue:"),
            std::string::npos);
}

TEST(SessionServingTest, RejectedOverloadVerdictHasAName) {
  EXPECT_STREQ(verdict_name(Verdict::kRejectedOverload), "rejected_overload");
}

TEST(SessionServingTest, DefaultPolicyWithClockIsBitIdenticalToNoClock) {
  Fixture fx;
  DefenseSession plain;
  VirtualClock clock;
  DefenseSession clocked(DefenseConfig{}, SessionPolicy{}, &clock);
  Rng r1(74), r2(74);
  const auto a = plain.process("cmd", fx.trial.va, fx.trial.wearable,
                               &fx.segmenter, r1);
  const auto b = clocked.process("cmd", fx.trial.va, fx.trial.wearable,
                                 &fx.segmenter, r2);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.score, b.score);  // exact: the clock is never read
  EXPECT_EQ(clock.now_us(), 0u);
}

TEST(SessionServingTest, BatchWithServingPolicyMatchesSequential) {
  Fixture fx;
  const Signal dead =
      Signal::zeros(fx.trial.wearable.size(), fx.trial.wearable.sample_rate());
  const SessionPolicy policy{.max_retries = 1,
                             .backoff = {500, 4000, 2.0},
                             .deadline_us = 1'000'000'000,
                             .breaker = serving::BreakerConfig{3, 1000, 1}};

  std::vector<SessionRequest> requests;
  requests.push_back(SessionRequest{"good", &fx.trial.va, &fx.trial.wearable,
                                    &fx.segmenter, Rng(75)});
  requests.push_back(
      SessionRequest{"dead", &fx.trial.va, &dead, &fx.segmenter, Rng(76)});
  requests.push_back(SessionRequest{"again", &fx.trial.va, &fx.trial.wearable,
                                    &fx.segmenter, Rng(77)});

  VirtualClock batch_clock;
  DefenseSession batched(DefenseConfig{}, policy, &batch_clock);
  const auto events = batched.process_batch(requests);

  VirtualClock seq_clock;
  DefenseSession sequential(DefenseConfig{}, policy, &seq_clock);
  Rng r1(75), r2(76), r3(77);
  const auto e1 = sequential.process("good", fx.trial.va, fx.trial.wearable,
                                     &fx.segmenter, r1);
  const auto e2 =
      sequential.process("dead", fx.trial.va, dead, &fx.segmenter, r2);
  const auto e3 = sequential.process("again", fx.trial.va, fx.trial.wearable,
                                     &fx.segmenter, r3);

  ASSERT_EQ(events.size(), 3u);
  const std::vector<SessionEvent> expected = {e1, e2, e3};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].verdict, expected[i].verdict) << "event " << i;
    EXPECT_EQ(events[i].attempts, expected[i].attempts) << "event " << i;
    EXPECT_EQ(events[i].backoff_us, expected[i].backoff_us) << "event " << i;
    if (std::isnan(expected[i].score)) {
      EXPECT_TRUE(std::isnan(events[i].score)) << "event " << i;
    } else {
      EXPECT_EQ(events[i].score, expected[i].score) << "event " << i;
    }
  }
  EXPECT_EQ(batch_clock.now_us(), seq_clock.now_us());
}

}  // namespace
}  // namespace vibguard::core
