// Ring resizes under fire: control-plane actions (add_worker, quarantine
// + restore, remove_worker) race live pump threads on the OTHER lanes and
// producer threads hammering submit(), and every admitted request still
// ends in exactly one result — the exactly-once accounting the
// remediation ladder relies on. Per the control-plane contract, the
// affected worker's own pump is stopped and joined before its lane is
// fenced or retired (exactly what a real supervisor deployment does);
// everything else keeps running. This is the slice the CI
// thread-sanitizer job exercises hardest.
#include "serving/server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "attacks/attack.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::serving {
namespace {

struct Population {
  struct Trial {
    eval::TrialRecordings recordings;
    std::unique_ptr<core::OracleSegmenter> segmenter;
  };
  std::vector<Trial> trials;

  static const Population& instance() {
    static Population* pop = [] {
      auto* p = new Population;
      eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 571);
      Rng rng(572);
      const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
      const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
      const auto& cmd = speech::command_by_text("unlock the front door");
      for (int i = 0; i < 4; ++i) {
        Trial trial;
        trial.recordings =
            i % 2 == 0 ? sim.legitimate_trial(cmd, user)
                       : sim.attack_trial(attacks::AttackType::kReplay, cmd,
                                          user, adv);
        trial.segmenter = std::make_unique<core::OracleSegmenter>(
            trial.recordings.alignment, eval::reference_sensitive_set());
        p->trials.push_back(std::move(trial));
      }
      return p;
    }();
    return *pop;
  }
};

/// Thread-safe result collector shared by every pump thread.
struct Collector {
  std::mutex mu;
  std::vector<ServedResult> results;

  Server::ResultSink sink() {
    return [this](const ServedResult& r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
    };
  }
};

/// One pump thread with its own stop flag, so a controller can stop and
/// join exactly the lane it is about to fence — the per-worker version of
/// what stop_pumps does fleet-wide.
struct ManagedPump {
  std::unique_ptr<std::atomic<bool>> stop;
  std::thread thread;

  ManagedPump(Server& server, std::size_t w, const Server::ResultSink& sink)
      : stop(std::make_unique<std::atomic<bool>>(false)) {
    std::atomic<bool>* flag = stop.get();
    thread = std::thread([&server, w, sink, flag] {
      server.run_pump(w, sink, *flag);
    });
  }

  void join() {
    stop->store(true, std::memory_order_release);
    if (thread.joinable()) thread.join();
  }
};

TEST(MigrationStressTest, ResizeStormLosesNothing) {
  const Population& pop = Population::instance();
  const SteadyClock& clock = SteadyClock::instance();
  ServerConfig config;
  config.workers = 3;
  config.shard.queue_capacity = 512;
  config.shard.batch_max = 4;
  config.shard.batch_window_us = 1'000;
  Server server(config, clock);

  const std::vector<std::uint64_t> session_ids = {11, 23, 37, 41, 53, 67};
  std::vector<SessionHandle> handles;
  for (std::uint64_t sid : session_ids) {
    handles.push_back(server.open_session(sid));
  }

  Collector collector;
  std::vector<std::unique_ptr<ManagedPump>> pumps;
  for (std::size_t w = 0; w < server.workers(); ++w) {
    pumps.push_back(std::make_unique<ManagedPump>(server, w,
                                                  collector.sink()));
  }

  // Producers hammer submit() for the whole storm. Handles go stale as
  // control actions migrate sessions — those submits come back
  // kStaleSession (an explicit refusal, counted), never lost.
  std::atomic<std::size_t> queued{0};
  std::atomic<std::size_t> refused{0};
  constexpr std::size_t kProducers = 3;
  constexpr std::size_t kPerProducer = 48;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng base(800 + p);
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        const std::size_t t = (p + i) % pop.trials.size();
        const std::size_t s = (p * 7 + i) % session_ids.size();
        ServerRequest request;
        request.va = &pop.trials[t].recordings.va;
        request.wearable = &pop.trials[t].recordings.wearable;
        request.segmenter = pop.trials[t].segmenter.get();
        request.rng = base.fork(i);
        request.request_id = p * 1'000 + i;
        if (server.submit(session_ids[s], handles[s], request) ==
            SubmitStatus::kQueued) {
          queued.fetch_add(1, std::memory_order_relaxed);
        } else {
          refused.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    });
  }

  // The control storm, interleaved with live traffic on the other lanes.
  std::vector<ServedResult> control_out;
  std::thread controller([&] {
    const auto breather = std::chrono::milliseconds(3);

    // Grow while every pump runs (documented safe) and give the new lane
    // its own pump.
    std::this_thread::sleep_for(breather);
    const std::size_t grown = server.add_worker(control_out);
    pumps.push_back(std::make_unique<ManagedPump>(server, grown,
                                                  collector.sink()));

    // Quarantine lane 0 (pump stopped and joined first, per the
    // control-plane contract), then restore it and restart its pump.
    std::this_thread::sleep_for(breather);
    pumps[0]->join();
    server.quarantine_worker(0, control_out);
    std::this_thread::sleep_for(breather);
    server.restore_worker(0, control_out);
    pumps[0] = std::make_unique<ManagedPump>(server, 0, collector.sink());

    // Retire the grown worker the same way.
    std::this_thread::sleep_for(breather);
    pumps[grown]->join();
    server.remove_worker(grown, control_out);
  });

  for (std::thread& t : producers) t.join();
  controller.join();
  for (auto& pump : pumps) pump->join();  // each force-drains on stop

  // Sweep anything a late migration re-homed after its pump exited.
  std::vector<ServedResult> tail;
  server.drain(tail);

  // Exactly-once accounting: every admitted request produced exactly one
  // result across the pump sinks, the control actions' accounting stream,
  // and the final sweep.
  std::map<std::uint64_t, std::size_t> seen;
  for (const ServedResult& r : collector.results) ++seen[r.request_id];
  for (const ServedResult& r : control_out) ++seen[r.request_id];
  for (const ServedResult& r : tail) ++seen[r.request_id];
  EXPECT_EQ(queued.load() + refused.load(), kProducers * kPerProducer);
  EXPECT_EQ(seen.size(), queued.load());
  for (const auto& [id, n] : seen) {
    EXPECT_EQ(n, 1u) << "request " << id << " accounted " << n << " times";
  }
  EXPECT_GT(queued.load(), 0u);
}

}  // namespace
}  // namespace vibguard::serving
