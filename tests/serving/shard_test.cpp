#include "serving/shard.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/clock.hpp"

namespace vibguard::serving {
namespace {

WorkItem item_for(std::uint64_t request_id, std::uint32_t tenant = 0,
                  std::uint64_t deadline_at_us = kNoDeadline) {
  WorkItem item;
  item.session_id = 1000 + request_id;
  item.request_id = request_id;
  item.tenant = tenant;
  item.deadline_at_us = deadline_at_us;
  return item;
}

TEST(MutexRingQueueTest, FifoPushPopPeek) {
  MutexRingQueue queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  WorkItem out;
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_FALSE(queue.try_peek(out));

  EXPECT_TRUE(queue.try_push(item_for(1)));
  EXPECT_TRUE(queue.try_push(item_for(2)));
  EXPECT_TRUE(queue.try_push(item_for(3)));
  EXPECT_FALSE(queue.try_push(item_for(4)));  // full
  EXPECT_EQ(queue.size(), 3u);

  ASSERT_TRUE(queue.try_peek(out));
  EXPECT_EQ(out.request_id, 1u);
  EXPECT_EQ(queue.size(), 3u);  // peek does not consume

  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.request_id, 1u);
  EXPECT_TRUE(queue.try_push(item_for(4)));  // ring wraps
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.request_id, 2u);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.request_id, 3u);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.request_id, 4u);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(MutexRingQueueTest, ZeroCapacityRejectsEveryPush) {
  MutexRingQueue queue(0);
  EXPECT_FALSE(queue.try_push(item_for(1)));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TenantQuotasTest, ChargesReleasesAndRejectsAtQuota) {
  TenantQuotas quotas(/*default_max=*/2);
  EXPECT_TRUE(quotas.try_charge(5));
  EXPECT_TRUE(quotas.try_charge(5));
  EXPECT_FALSE(quotas.try_charge(5));  // at quota
  EXPECT_EQ(quotas.queued(5), 2u);
  EXPECT_EQ(quotas.rejected(5), 1u);
  // Other tenants are independent buckets.
  EXPECT_TRUE(quotas.try_charge(6));
  quotas.release(5);
  EXPECT_TRUE(quotas.try_charge(5));
  EXPECT_EQ(quotas.total_rejected(), 1u);
}

TEST(TenantQuotasTest, ExplicitQuotaOverridesDefault) {
  TenantQuotas quotas;  // default: unlimited
  quotas.set_quota(1, 0);
  EXPECT_FALSE(quotas.try_charge(1));  // zero quota = always rejected
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(quotas.try_charge(2));
}

TEST(ConsistentHashRingTest, PlacementIsAPureFunctionOfConfiguration) {
  ConsistentHashRing a(4, 64);
  ConsistentHashRing b(4, 64);
  for (std::uint64_t id = 0; id < 500; ++id) {
    const std::uint64_t h = mix64(id);
    EXPECT_EQ(a.worker_for(h), b.worker_for(h));
    EXPECT_LT(a.worker_for(h), 4u);
  }
}

TEST(ConsistentHashRingTest, SingleWorkerOwnsEverything) {
  ConsistentHashRing ring(1, 8);
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(ring.worker_for(mix64(id)), 0u);
  }
}

TEST(ConsistentHashRingTest, EveryWorkerGetsTraffic) {
  ConsistentHashRing ring(8, 64);
  std::set<std::size_t> seen;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    seen.insert(ring.worker_for(mix64(id)));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ConsistentHashRingTest, AddingAWorkerMovesOnlySomeKeys) {
  // The consistency property: growing the fleet by one worker must leave
  // most keys on their old worker (only the new worker's arcs move).
  ConsistentHashRing before(4, 64);
  ConsistentHashRing after(5, 64);
  std::size_t moved = 0;
  const std::size_t keys = 2000;
  for (std::uint64_t id = 0; id < keys; ++id) {
    const std::uint64_t h = mix64(id);
    const std::size_t to = after.worker_for(h);
    if (to != before.worker_for(h)) {
      ++moved;
      EXPECT_EQ(to, 4u) << "keys may move only to the new worker";
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, keys / 2);  // ~1/5 expected; far less than a rehash
}

ShardConfig small_shard() {
  ShardConfig cfg;
  cfg.queue_capacity = 4;
  cfg.batch_max = 3;
  cfg.batch_window_us = 1000;
  return cfg;
}

TEST(ShardTest, QueueFullIsAnExplicitRejection) {
  VirtualClock clock;
  Shard shard(small_shard(), clock);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(shard.submit(item_for(i)), SubmitStatus::kQueued);
  }
  EXPECT_EQ(shard.submit(item_for(4)), SubmitStatus::kRejectedQueueFull);
  EXPECT_EQ(shard.depth(), 4u);
  EXPECT_EQ(shard.stats().admission.admitted, 4u);
  EXPECT_EQ(shard.stats().admission.rejected, 1u);
}

TEST(ShardTest, TenantQuotaRejectsBeforeTheQueueAndReleasesOnPop) {
  VirtualClock clock;
  ShardConfig cfg = small_shard();
  cfg.tenant_max_queued = 1;
  Shard shard(cfg, clock);
  EXPECT_EQ(shard.submit(item_for(0, /*tenant=*/7)), SubmitStatus::kQueued);
  EXPECT_EQ(shard.submit(item_for(1, /*tenant=*/7)),
            SubmitStatus::kRejectedTenantQuota);
  // A different tenant still fits although tenant 7 is at quota.
  EXPECT_EQ(shard.submit(item_for(2, /*tenant=*/8)), SubmitStatus::kQueued);
  EXPECT_EQ(shard.stats().quota_rejected, 1u);

  std::vector<WorkItem> batch;
  ASSERT_TRUE(shard.form_batch(batch, /*force=*/true).has_value());
  // Popping released the charge: tenant 7 can queue again.
  EXPECT_EQ(shard.submit(item_for(3, /*tenant=*/7)), SubmitStatus::kQueued);
}

TEST(ShardTest, BatchReleasesOnWindowOrSize) {
  VirtualClock clock;
  Shard shard(small_shard(), clock);  // batch_max 3, window 1000us
  std::vector<WorkItem> batch;

  EXPECT_FALSE(shard.batch_ready_us().has_value());  // empty queue
  shard.submit(item_for(0));
  ASSERT_TRUE(shard.batch_ready_us().has_value());
  EXPECT_EQ(*shard.batch_ready_us(), clock.now_us() + 1000);
  EXPECT_FALSE(shard.form_batch(batch).has_value());  // window not elapsed

  clock.advance(1000);  // oldest item has waited the full window
  auto formed = shard.form_batch(batch);
  ASSERT_TRUE(formed.has_value());
  EXPECT_EQ(formed->items, 1u);
  EXPECT_EQ(batch.size(), 1u);

  // A full batch is due immediately, window or not.
  batch.clear();
  for (std::uint64_t i = 1; i <= 3; ++i) shard.submit(item_for(i));
  EXPECT_EQ(*shard.batch_ready_us(), clock.now_us());
  formed = shard.form_batch(batch);
  ASSERT_TRUE(formed.has_value());
  EXPECT_EQ(formed->items, 3u);
  EXPECT_EQ(batch[0].request_id, 1u);  // FIFO within the batch
  EXPECT_EQ(batch[2].request_id, 3u);

  const ShardStats stats = shard.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_items, 4u);
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_batch(), 2.0);
}

TEST(ShardTest, ExpiredItemsAreFlaggedAndExcludedFromQueueMeans) {
  VirtualClock clock;
  clock.advance(1000);
  Shard shard(small_shard(), clock);
  shard.submit(item_for(0, 0, /*deadline_at_us=*/clock.now_us() + 500));
  shard.submit(item_for(1, 0, /*deadline_at_us=*/clock.now_us() + 50'000));
  clock.advance(2000);  // request 0 expired; request 1 still live

  std::vector<WorkItem> batch;
  const auto formed = shard.form_batch(batch, /*force=*/true);
  ASSERT_TRUE(formed.has_value());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch[0].expired_in_queue);
  EXPECT_FALSE(batch[1].expired_in_queue);

  const ShardStats stats = shard.stats();
  EXPECT_EQ(stats.admission.expired, 1u);
  EXPECT_EQ(stats.admission.dequeued, 1u);  // only the live item
  EXPECT_EQ(stats.admission.total_queue_us, 2000u);
  EXPECT_DOUBLE_EQ(stats.admission.mean_queue_us(), 2000.0);
}

TEST(ShardTest, BreakerRoutesDegradedThenSingleItemProbe) {
  VirtualClock clock;
  ShardConfig cfg = small_shard();
  cfg.breaker = BreakerConfig{/*failure_threshold=*/2,
                              /*cooldown_us=*/10'000,
                              /*half_open_successes=*/1};
  Shard shard(cfg, clock);

  // Trip the breaker with two hard failures.
  shard.record(TrialOutcome::kHardFailure, "correlate");
  shard.record(TrialOutcome::kHardFailure, "correlate");
  ASSERT_NE(shard.breaker(), nullptr);
  EXPECT_EQ(shard.breaker()->state(), BreakerState::kOpen);

  // While open: batches form degraded.
  for (std::uint64_t i = 0; i < 3; ++i) shard.submit(item_for(i));
  std::vector<WorkItem> batch;
  auto formed = shard.form_batch(batch, /*force=*/true);
  ASSERT_TRUE(formed.has_value());
  EXPECT_TRUE(formed->degraded);
  EXPECT_FALSE(formed->probe);
  EXPECT_EQ(formed->items, 3u);

  // After the cooldown: a single-item probe batch, even with more queued.
  clock.advance(10'000);
  for (std::uint64_t i = 3; i < 6; ++i) shard.submit(item_for(i));
  batch.clear();
  formed = shard.form_batch(batch, /*force=*/true);
  ASSERT_TRUE(formed.has_value());
  EXPECT_TRUE(formed->probe);
  EXPECT_FALSE(formed->degraded);
  EXPECT_EQ(formed->items, 1u);

  // While the probe is outstanding the rest keeps draining degraded.
  batch.clear();
  formed = shard.form_batch(batch, /*force=*/true);
  ASSERT_TRUE(formed.has_value());
  EXPECT_TRUE(formed->degraded);
  EXPECT_EQ(formed->items, 2u);

  // Probe success closes the breaker: back to primary batches.
  shard.record(TrialOutcome::kSuccess, "");
  EXPECT_EQ(shard.breaker()->state(), BreakerState::kClosed);
  shard.submit(item_for(6));
  batch.clear();
  formed = shard.form_batch(batch, /*force=*/true);
  ASSERT_TRUE(formed.has_value());
  EXPECT_FALSE(formed->degraded);
  EXPECT_FALSE(formed->probe);
  EXPECT_EQ(shard.stats().probes, 1u);
}

TEST(ShardTest, ConcurrentSubmitsAccountExactly) {
  // MPMC smoke: hammer submit from several threads; every call must be
  // either a counted admission or a counted rejection, and the queue depth
  // must equal the admissions.
  VirtualClock clock;
  ShardConfig cfg;
  cfg.queue_capacity = 64;
  cfg.batch_max = 8;
  Shard shard(cfg, clock);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shard, t] {
      for (int i = 0; i < kPerThread; ++i) {
        shard.submit(item_for(static_cast<std::uint64_t>(t * kPerThread + i),
                              static_cast<std::uint32_t>(t)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const ShardStats stats = shard.stats();
  EXPECT_EQ(stats.admission.admitted + stats.admission.rejected,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.admission.admitted, 64u);  // bounded by capacity
  EXPECT_EQ(shard.depth(), 64u);

  // Drain everything; items arrive exactly once.
  std::vector<WorkItem> drained;
  while (shard.form_batch(drained, /*force=*/true).has_value()) {
  }
  EXPECT_EQ(drained.size(), 64u);
  std::set<std::uint64_t> ids;
  for (const WorkItem& item : drained) ids.insert(item.request_id);
  EXPECT_EQ(ids.size(), drained.size());
}

}  // namespace
}  // namespace vibguard::serving
