#include "serving/server.hpp"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "attacks/attack.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::serving {
namespace {

/// A small fixed population of rendered trials the determinism tests
/// replay through every sharding configuration. Rendered once per process
/// (the signals are borrowed by in-flight requests, so the fixture keeps
/// them alive for the whole test).
struct Population {
  struct Trial {
    eval::TrialRecordings recordings;
    std::unique_ptr<core::OracleSegmenter> segmenter;
  };
  std::vector<Trial> trials;

  static const Population& instance() {
    static Population* pop = [] {
      auto* p = new Population;
      eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 77);
      Rng rng(78);
      const auto user = speech::sample_speaker(speech::Sex::kFemale, rng);
      const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
      const auto& cmd = speech::command_by_text("unlock the front door");
      for (int i = 0; i < 6; ++i) {
        Trial trial;
        trial.recordings =
            i % 2 == 0 ? sim.legitimate_trial(cmd, user)
                       : sim.attack_trial(attacks::AttackType::kReplay, cmd,
                                          user, adv);
        trial.segmenter = std::make_unique<core::OracleSegmenter>(
            trial.recordings.alignment, eval::reference_sensitive_set());
        p->trials.push_back(std::move(trial));
      }
      return p;
    }();
    return *pop;
  }
};

/// Submits the whole population (request i → session i mod 3, each request
/// scoring from its own fork of a fixed base rng), drains, and returns the
/// request_id → score map.
std::map<std::uint64_t, double> serve_population(ServerConfig config) {
  const Population& pop = Population::instance();
  VirtualClock clock;
  Server server(config, clock);

  std::vector<std::uint64_t> session_ids = {501, 502, 503};
  std::vector<SessionHandle> handles;
  for (std::size_t s = 0; s < session_ids.size(); ++s) {
    handles.push_back(server.open_session(
        session_ids[s], static_cast<std::uint32_t>(s % 2)));
  }

  Rng base(99);
  for (std::size_t i = 0; i < pop.trials.size(); ++i) {
    const auto& trial = pop.trials[i];
    ServerRequest request;
    request.va = &trial.recordings.va;
    request.wearable = &trial.recordings.wearable;
    request.segmenter = trial.segmenter.get();
    request.rng = base.fork(i);
    request.request_id = i;
    const std::size_t s = i % session_ids.size();
    EXPECT_EQ(server.submit(session_ids[s], handles[s], request),
              SubmitStatus::kQueued);
    clock.advance(1000);  // stagger arrivals across the batch window
  }

  std::vector<ServedResult> results;
  server.drain(results);
  EXPECT_EQ(results.size(), pop.trials.size());

  std::map<std::uint64_t, double> scores;
  for (const ServedResult& r : results) {
    EXPECT_FALSE(r.expired_in_queue);
    EXPECT_EQ(r.outcome.status, core::ScoreStatus::kOk)
        << "request " << r.request_id << ": " << r.outcome.reason;
    scores[r.request_id] = r.outcome.score;
  }
  return scores;
}

TEST(ServerDeterminismTest, ScoresAreBitIdenticalAcrossShardingConfigs) {
  // The fleet determinism contract: for a fixed seed, every request's
  // score is bit-identical no matter how many workers serve the fleet,
  // how wide the micro-batch window is, or how large the batches are —
  // because each request scores from its own owned rng fork.
  ServerConfig reference_config;
  reference_config.workers = 1;
  reference_config.shard.batch_max = 1;
  reference_config.shard.batch_window_us = 0;
  const auto reference = serve_population(reference_config);
  ASSERT_EQ(reference.size(), 6u);

  for (const std::size_t workers : {2u, 3u, 5u}) {
    for (const std::uint64_t window_us : {std::uint64_t{0},
                                          std::uint64_t{10'000}}) {
      ServerConfig config;
      config.workers = workers;
      config.shard.batch_max = 3;
      config.shard.batch_window_us = window_us;
      const auto scores = serve_population(config);
      ASSERT_EQ(scores.size(), reference.size());
      for (const auto& [id, score] : reference) {
        EXPECT_EQ(scores.at(id), score)
            << "request " << id << " workers=" << workers
            << " window=" << window_us;
      }
    }
  }

  // Batch size alone must not matter either.
  for (const std::size_t batch_max : {1u, 8u}) {
    ServerConfig config;
    config.workers = 2;
    config.shard.batch_max = batch_max;
    const auto scores = serve_population(config);
    for (const auto& [id, score] : reference) {
      EXPECT_EQ(scores.at(id), score)
          << "request " << id << " batch_max=" << batch_max;
    }
  }
}

TEST(ServerTest, SessionLifecycleAndStaleHandles) {
  VirtualClock clock;
  ServerConfig config;
  config.workers = 3;
  Server server(config, clock);

  const SessionHandle a = server.open_session(1, /*tenant=*/4);
  const SessionHandle b = server.open_session(2, /*tenant=*/5);
  EXPECT_EQ(server.sessions(), 2u);
  ASSERT_NE(server.session(1, a), nullptr);
  EXPECT_EQ(server.session(1, a)->tenant, 4u);
  EXPECT_EQ(server.session(2, a), nullptr);  // wrong id for the handle

  EXPECT_TRUE(server.close_session(1, a));
  EXPECT_FALSE(server.close_session(1, a));  // already closed
  EXPECT_EQ(server.sessions(), 1u);
  EXPECT_EQ(server.session(1, a), nullptr);

  // A submit against the closed session is refused, not queued.
  const Population& pop = Population::instance();
  ServerRequest request;
  request.va = &pop.trials[0].recordings.va;
  request.wearable = &pop.trials[0].recordings.wearable;
  request.segmenter = pop.trials[0].segmenter.get();
  request.rng = Rng(1);
  EXPECT_EQ(server.submit(1, a, request), SubmitStatus::kStaleSession);
  EXPECT_TRUE(server.close_session(2, b));
}

TEST(ServerTest, PlacementIsStableAndServedCountsAccumulate) {
  VirtualClock clock;
  ServerConfig config;
  config.workers = 4;
  Server server(config, clock);

  const std::uint64_t session_id = 12345;
  const std::size_t w = server.shard_of(session_id);
  EXPECT_LT(w, 4u);
  EXPECT_EQ(server.shard_of(session_id), w);  // pure function of the id

  const SessionHandle handle = server.open_session(session_id);
  const Population& pop = Population::instance();
  for (std::size_t i = 0; i < 2; ++i) {
    ServerRequest request;
    request.va = &pop.trials[i].recordings.va;
    request.wearable = &pop.trials[i].recordings.wearable;
    request.segmenter = pop.trials[i].segmenter.get();
    request.rng = Rng(5 + i);
    request.request_id = i;
    ASSERT_EQ(server.submit(session_id, handle, request),
              SubmitStatus::kQueued);
  }
  // All of one session's work lands on its one shard.
  EXPECT_EQ(server.shard(w).depth(), 2u);

  std::vector<ServedResult> results;
  server.drain(results);
  ASSERT_EQ(results.size(), 2u);
  for (const ServedResult& r : results) EXPECT_EQ(r.worker, w);
  ASSERT_NE(server.session(session_id, handle), nullptr);
  EXPECT_EQ(server.session(session_id, handle)->served, 2u);
}

TEST(ServerTest, ExpiredInQueueRequestsAreDroppedUnscored) {
  VirtualClock clock;
  ServerConfig config;
  config.workers = 1;
  config.deadline_us = 5'000;
  config.shard.batch_max = 4;
  Server server(config, clock);

  const SessionHandle handle = server.open_session(9);
  const Population& pop = Population::instance();
  for (std::size_t i = 0; i < 2; ++i) {
    ServerRequest request;
    request.va = &pop.trials[i].recordings.va;
    request.wearable = &pop.trials[i].recordings.wearable;
    request.segmenter = pop.trials[i].segmenter.get();
    request.rng = Rng(11 + i);
    request.request_id = i;
    ASSERT_EQ(server.submit(9, handle, request), SubmitStatus::kQueued);
  }
  clock.advance(60'000);  // both deadlines long gone

  std::vector<ServedResult> results;
  server.drain(results);
  ASSERT_EQ(results.size(), 2u);
  for (const ServedResult& r : results) {
    EXPECT_TRUE(r.expired_in_queue);
    EXPECT_EQ(r.outcome.status, core::ScoreStatus::kDeadlineExceeded);
    EXPECT_STREQ(r.outcome.reason, "deadline_expired_in_queue");
    EXPECT_EQ(r.queue_us, 60'000u);
  }
  const ShardStats stats = server.shard(0).stats();
  EXPECT_EQ(stats.admission.expired, 2u);
  EXPECT_EQ(stats.admission.dequeued, 0u);
  EXPECT_DOUBLE_EQ(stats.admission.mean_queue_us(), 0.0);
  // Expired drops never update the session's served count.
  EXPECT_EQ(server.session(9, handle)->served, 0u);
}

TEST(ServerTest, DeadlineOverrideCancellationTripsBreakerAndDegrades) {
  VirtualClock clock;
  ServerConfig config;
  config.workers = 1;
  config.shard.batch_max = 1;
  config.shard.breaker = BreakerConfig{/*failure_threshold=*/1,
                                       /*cooldown_us=*/1'000'000,
                                       /*half_open_successes=*/1};
  Server server(config, clock);

  const SessionHandle handle = server.open_session(3);
  const Population& pop = Population::instance();
  auto submit_one = [&](std::uint64_t id) {
    ServerRequest request;
    request.va = &pop.trials[0].recordings.va;
    request.wearable = &pop.trials[0].recordings.wearable;
    request.segmenter = pop.trials[0].segmenter.get();
    request.rng = Rng(21 + id);
    request.request_id = id;
    ASSERT_EQ(server.submit(3, handle, request), SubmitStatus::kQueued);
  };

  // First request: the simulator decides (via the override) that its
  // deadline passes mid-flight — the pipeline cancels, which is a hard
  // failure on the primary route and trips the threshold-1 breaker.
  submit_one(0);
  ASSERT_TRUE(server.form_batch(0, /*force=*/true).has_value());
  std::vector<ServedResult> results;
  const std::uint64_t expired_now[] = {clock.now_us()};
  server.complete_batch(0, results, expired_now);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].outcome.status, core::ScoreStatus::kDeadlineExceeded);
  EXPECT_FALSE(results[0].degraded);
  ASSERT_NE(server.shard(0).breaker(), nullptr);
  EXPECT_EQ(server.shard(0).breaker()->state(), BreakerState::kOpen);

  // Second request: the open breaker routes its batch onto the cheap
  // degraded pipeline, which completes normally.
  submit_one(1);
  const auto planned = server.form_batch(0, /*force=*/true);
  ASSERT_TRUE(planned.has_value());
  EXPECT_TRUE(planned->degraded);
  server.complete_batch(0, results);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[1].degraded);
  EXPECT_EQ(results[1].outcome.status, core::ScoreStatus::kOk);
}

TEST(ServerTest, ConcurrentSubmitsAllServeExactlyOnce) {
  VirtualClock clock;
  ServerConfig config;
  config.workers = 4;
  config.shard.queue_capacity = 64;
  Server server(config, clock);

  constexpr std::size_t kSessions = 8;
  std::vector<std::uint64_t> session_ids;
  std::vector<SessionHandle> handles;
  for (std::size_t s = 0; s < kSessions; ++s) {
    session_ids.push_back(700 + s);
    handles.push_back(server.open_session(session_ids[s]));
  }

  const Population& pop = Population::instance();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::size_t id =
            static_cast<std::size_t>(t * kPerThread + i);
        const auto& trial = pop.trials[id % pop.trials.size()];
        ServerRequest request;
        request.va = &trial.recordings.va;
        request.wearable = &trial.recordings.wearable;
        request.segmenter = trial.segmenter.get();
        request.rng = Rng(id);
        request.request_id = id;
        const std::size_t s = id % kSessions;
        EXPECT_EQ(server.submit(session_ids[s], handles[s], request),
                  SubmitStatus::kQueued);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<ServedResult> results;
  server.drain(results);
  ASSERT_EQ(results.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  std::map<std::uint64_t, std::size_t> seen;
  for (const ServedResult& r : results) {
    ++seen[r.request_id];
    EXPECT_EQ(r.outcome.status, core::ScoreStatus::kOk);
  }
  EXPECT_EQ(seen.size(), results.size());  // every id exactly once
  EXPECT_EQ(server.sessions(), kSessions);
}

}  // namespace
}  // namespace vibguard::serving
