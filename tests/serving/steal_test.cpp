// Work stealing at the shard level: steal_batch pops the FIFO head under
// the victim's lock with enqueued_us preserved and tenant charges
// released, expired items are flagged and accounted (never handed to the
// thief), parked batch items are untouchable, and steal_in enforces the
// thief's tenant quota — stealing is an optimization and must never let
// a tenant overfill a shard it was never placed on.
#include "serving/shard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/clock.hpp"

namespace vibguard::serving {
namespace {

ShardConfig small_shard() {
  ShardConfig config;
  config.queue_capacity = 8;
  config.batch_max = 4;
  config.batch_window_us = 0;
  return config;
}

WorkItem item(std::uint64_t request_id, std::uint32_t tenant = 0,
              std::uint64_t deadline_at_us = kNoDeadline) {
  WorkItem it;
  it.session_id = 100 + request_id;
  it.request_id = request_id;
  it.tenant = tenant;
  it.deadline_at_us = deadline_at_us;
  return it;
}

TEST(StealTest, StealBatchTakesTheOldestItemsAndPreservesEnqueue) {
  VirtualClock clock;
  Shard victim(small_shard(), clock);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(victim.submit(item(i, /*tenant=*/3)), SubmitStatus::kQueued);
    clock.advance(10);
  }
  ASSERT_EQ(victim.quotas().queued(3), 4u);

  std::vector<WorkItem> stolen;
  std::vector<WorkItem> expired;
  EXPECT_EQ(victim.steal_batch(stolen, expired, 2), 2u);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_TRUE(expired.empty());

  // FIFO head first — the items most at risk of expiring — with their
  // original admission stamps intact (queue-time accounting spans the
  // steal).
  EXPECT_EQ(stolen[0].request_id, 0u);
  EXPECT_EQ(stolen[1].request_id, 1u);
  EXPECT_EQ(stolen[0].enqueued_us, 0u);
  EXPECT_EQ(stolen[1].enqueued_us, 10u);

  // Victim accounting: depth and tenant charges down by two, the steal
  // tallied on the admission ledger and the shard counter.
  EXPECT_EQ(victim.depth(), 2u);
  EXPECT_EQ(victim.quotas().queued(3), 2u);
  EXPECT_EQ(victim.stats().admission.stolen, 2u);
  EXPECT_EQ(victim.stats().steals_out, 1u);
}

TEST(StealTest, ExpiredItemsAreFlaggedAndAccountedNotStolen) {
  VirtualClock clock;
  Shard victim(small_shard(), clock);
  ASSERT_EQ(victim.submit(item(0, 0, /*deadline_at_us=*/50)),
            SubmitStatus::kQueued);
  ASSERT_EQ(victim.submit(item(1, 0, /*deadline_at_us=*/50)),
            SubmitStatus::kQueued);
  ASSERT_EQ(victim.submit(item(2)), SubmitStatus::kQueued);
  clock.advance(100);  // both deadlines long gone

  std::vector<WorkItem> stolen;
  std::vector<WorkItem> expired;
  // max_items = 1: the two expired head items do not count against it.
  EXPECT_EQ(victim.steal_batch(stolen, expired, 1), 1u);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_TRUE(expired[0].expired_in_queue);
  EXPECT_TRUE(expired[1].expired_in_queue);
  ASSERT_EQ(stolen.size(), 1u);
  EXPECT_EQ(stolen[0].request_id, 2u);
  // Expired in the admission ledger (like form_batch), never "stolen".
  EXPECT_EQ(victim.stats().admission.expired, 2u);
  EXPECT_EQ(victim.stats().admission.stolen, 1u);
  EXPECT_EQ(victim.depth(), 0u);
}

TEST(StealTest, ParkedBatchItemsAreNeverStealable) {
  VirtualClock clock;
  Shard victim(small_shard(), clock);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_EQ(victim.submit(item(i)), SubmitStatus::kQueued);
  }
  std::vector<WorkItem> batch;
  ASSERT_TRUE(victim.form_batch(batch, /*force=*/true).has_value());
  ASSERT_EQ(batch.size(), 3u);

  // The batch is formed (out of the queue) but not yet completed; a steal
  // pass right now must find nothing — in-flight work cannot move.
  std::vector<WorkItem> stolen;
  std::vector<WorkItem> expired;
  EXPECT_EQ(victim.steal_batch(stolen, expired, 8), 0u);
  EXPECT_TRUE(stolen.empty());
  EXPECT_TRUE(expired.empty());
}

TEST(StealTest, StealInEnforcesTheThiefTenantQuota) {
  VirtualClock clock;
  ShardConfig config = small_shard();
  config.tenant_max_queued = 1;
  Shard thief(config, clock);

  WorkItem first = item(0, /*tenant=*/7);
  first.enqueued_us = 123;  // as stamped by the victim's original admit
  first.stolen = true;
  EXPECT_TRUE(thief.steal_in(first));
  EXPECT_EQ(thief.quotas().queued(7), 1u);
  EXPECT_EQ(thief.stats().items_stolen_in, 1u);

  WorkItem second = item(1, /*tenant=*/7);
  second.stolen = true;
  EXPECT_FALSE(thief.steal_in(second));  // at quota: refused, not charged
  EXPECT_EQ(thief.quotas().queued(7), 1u);
  EXPECT_EQ(thief.depth(), 1u);
  EXPECT_EQ(thief.stats().items_stolen_in, 1u);

  // The accepted item keeps its original enqueue stamp across the move.
  std::vector<WorkItem> batch;
  ASSERT_TRUE(thief.form_batch(batch, /*force=*/true).has_value());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].enqueued_us, 123u);
  EXPECT_TRUE(batch[0].stolen);
}

TEST(StealTest, ClosedShardRefusesStolenItems) {
  VirtualClock clock;
  Shard thief(small_shard(), clock);
  thief.close();
  const WorkItem it = item(0, /*tenant=*/2);
  EXPECT_FALSE(thief.steal_in(it));
  EXPECT_EQ(thief.depth(), 0u);
  // The refused charge was rolled back, not leaked.
  EXPECT_EQ(thief.quotas().queued(2), 0u);
}

}  // namespace
}  // namespace vibguard::serving
