#include "common/clock.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace vibguard {
namespace {

TEST(VirtualClockTest, StartsAtConfiguredTimeAndAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.now_us(), 100u);
  clock.advance(50);
  EXPECT_EQ(clock.now_us(), 150u);
  clock.sleep_us(25);  // sleeping on a virtual clock advances it
  EXPECT_EQ(clock.now_us(), 175u);
  clock.set(1000);
  EXPECT_EQ(clock.now_us(), 1000u);
  clock.set(1000);  // equal time is allowed
  EXPECT_EQ(clock.now_us(), 1000u);
}

TEST(VirtualClockTest, RefusesToMoveBackwards) {
  VirtualClock clock(10);
  EXPECT_THROW(clock.set(9), Error);
}

TEST(SteadyClockTest, IsMonotonic) {
  const SteadyClock& clock = SteadyClock::instance();
  const std::uint64_t a = clock.now_us();
  const std::uint64_t b = clock.now_us();
  EXPECT_LE(a, b);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline none;
  EXPECT_FALSE(none.bounded());
  EXPECT_FALSE(none.expired());
  EXPECT_EQ(none.remaining_us(), std::numeric_limits<std::uint64_t>::max());
}

TEST(DeadlineTest, ExpiresWhenClockReachesBudget) {
  VirtualClock clock;
  const Deadline dl = Deadline::after(clock, 100);
  EXPECT_TRUE(dl.bounded());
  EXPECT_FALSE(dl.expired());
  EXPECT_EQ(dl.remaining_us(), 100u);
  clock.advance(99);
  EXPECT_FALSE(dl.expired());
  EXPECT_EQ(dl.remaining_us(), 1u);
  clock.advance(1);  // expiry is inclusive: now == expires_at is expired
  EXPECT_TRUE(dl.expired());
  EXPECT_EQ(dl.remaining_us(), 0u);
  clock.advance(1000);
  EXPECT_TRUE(dl.expired());
  EXPECT_EQ(dl.remaining_us(), 0u);
}

TEST(DeadlineTest, ZeroBudgetIsImmediatelyExpired) {
  VirtualClock clock(5);
  const Deadline dl = Deadline::after(clock, 0);
  EXPECT_TRUE(dl.expired());
}

}  // namespace
}  // namespace vibguard
