#include "serving/session_slab.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vibguard::serving {
namespace {

SessionRecord record(std::uint64_t id, std::uint32_t tenant = 0) {
  SessionRecord r;
  r.session_id = id;
  r.tenant = tenant;
  return r;
}

TEST(SessionSlabTest, DefaultHandleIsNull) {
  SessionHandle handle;
  EXPECT_TRUE(handle.is_null());
  SessionSlab slab;
  EXPECT_EQ(slab.get(handle), nullptr);
  EXPECT_FALSE(slab.erase(handle));
}

TEST(SessionSlabTest, InsertLookupRoundTrip) {
  SessionSlab slab;
  const SessionHandle a = slab.insert(record(100, 1));
  const SessionHandle b = slab.insert(record(200, 2));
  EXPECT_FALSE(a.is_null());
  EXPECT_NE(a, b);
  EXPECT_EQ(slab.size(), 2u);

  SessionRecord* ra = slab.get(a);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->session_id, 100u);
  EXPECT_EQ(ra->tenant, 1u);
  ra->served = 7;  // mutable through the handle
  EXPECT_EQ(slab.get(a)->served, 7u);

  const SessionSlab& cslab = slab;
  const SessionRecord* rb = cslab.get(b);
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->session_id, 200u);
}

TEST(SessionSlabTest, EraseInvalidatesEveryOutstandingHandle) {
  SessionSlab slab;
  const SessionHandle a = slab.insert(record(100));
  const SessionHandle copy = a;  // handles are value types
  EXPECT_TRUE(slab.erase(a));
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.get(a), nullptr);
  EXPECT_EQ(slab.get(copy), nullptr);
  EXPECT_FALSE(slab.erase(a));  // double-erase is a clean no-op
}

TEST(SessionSlabTest, RecycledSlotDoesNotAliasStaleHandle) {
  SessionSlab slab;
  const SessionHandle old = slab.insert(record(100));
  ASSERT_TRUE(slab.erase(old));
  // LIFO recycling: the next insert reuses the freed slot...
  const SessionHandle fresh = slab.insert(record(999));
  EXPECT_EQ(fresh.index, old.index);
  EXPECT_NE(fresh.generation, old.generation);
  // ...and the stale handle must see nothing, not the new occupant.
  EXPECT_EQ(slab.get(old), nullptr);
  ASSERT_NE(slab.get(fresh), nullptr);
  EXPECT_EQ(slab.get(fresh)->session_id, 999u);
  EXPECT_EQ(slab.size(), 1u);
}

TEST(SessionSlabTest, GrowsAndSurvivesChurn) {
  SessionSlab slab;
  std::vector<SessionHandle> handles;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    handles.push_back(slab.insert(record(i, static_cast<std::uint32_t>(i % 7))));
  }
  EXPECT_EQ(slab.size(), 1000u);
  EXPECT_GE(slab.capacity(), 1000u);
  // Erase the even ids, reinsert as fresh sessions, verify nothing aliases.
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    ASSERT_TRUE(slab.erase(handles[i]));
  }
  EXPECT_EQ(slab.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    slab.insert(record(10'000 + i));
  }
  EXPECT_EQ(slab.size(), 1000u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const SessionRecord* r = slab.get(handles[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(r, nullptr) << i;
    } else {
      ASSERT_NE(r, nullptr) << i;
      EXPECT_EQ(r->session_id, i);
    }
  }
}

TEST(SessionSlabTest, ClearInvalidatesAllHandlesAndKeepsCapacity) {
  SessionSlab slab;
  std::vector<SessionHandle> handles;
  for (std::uint64_t i = 0; i < 16; ++i) handles.push_back(slab.insert(record(i)));
  const std::size_t capacity = slab.capacity();
  slab.clear();
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.capacity(), capacity);
  for (const SessionHandle& h : handles) {
    EXPECT_EQ(slab.get(h), nullptr);
  }
  // Still usable after clear.
  const SessionHandle fresh = slab.insert(record(42));
  ASSERT_NE(slab.get(fresh), nullptr);
  EXPECT_EQ(slab.get(fresh)->session_id, 42u);
}

}  // namespace
}  // namespace vibguard::serving
