#include "serving/session_slab.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace vibguard::serving {
namespace {

SessionRecord record(std::uint64_t id, std::uint32_t tenant = 0) {
  SessionRecord r;
  r.session_id = id;
  r.tenant = tenant;
  return r;
}

TEST(SessionSlabTest, DefaultHandleIsNull) {
  SessionHandle handle;
  EXPECT_TRUE(handle.is_null());
  SessionSlab slab;
  EXPECT_EQ(slab.get(handle), nullptr);
  EXPECT_FALSE(slab.erase(handle));
}

TEST(SessionSlabTest, InsertLookupRoundTrip) {
  SessionSlab slab;
  const SessionHandle a = slab.insert(record(100, 1));
  const SessionHandle b = slab.insert(record(200, 2));
  EXPECT_FALSE(a.is_null());
  EXPECT_NE(a, b);
  EXPECT_EQ(slab.size(), 2u);

  SessionRecord* ra = slab.get(a);
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->session_id, 100u);
  EXPECT_EQ(ra->tenant, 1u);
  ra->served = 7;  // mutable through the handle
  EXPECT_EQ(slab.get(a)->served, 7u);

  const SessionSlab& cslab = slab;
  const SessionRecord* rb = cslab.get(b);
  ASSERT_NE(rb, nullptr);
  EXPECT_EQ(rb->session_id, 200u);
}

TEST(SessionSlabTest, EraseInvalidatesEveryOutstandingHandle) {
  SessionSlab slab;
  const SessionHandle a = slab.insert(record(100));
  const SessionHandle copy = a;  // handles are value types
  EXPECT_TRUE(slab.erase(a));
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.get(a), nullptr);
  EXPECT_EQ(slab.get(copy), nullptr);
  EXPECT_FALSE(slab.erase(a));  // double-erase is a clean no-op
}

TEST(SessionSlabTest, RecycledSlotDoesNotAliasStaleHandle) {
  SessionSlab slab;
  const SessionHandle old = slab.insert(record(100));
  ASSERT_TRUE(slab.erase(old));
  // LIFO recycling: the next insert reuses the freed slot...
  const SessionHandle fresh = slab.insert(record(999));
  EXPECT_EQ(fresh.index, old.index);
  EXPECT_NE(fresh.generation, old.generation);
  // ...and the stale handle must see nothing, not the new occupant.
  EXPECT_EQ(slab.get(old), nullptr);
  ASSERT_NE(slab.get(fresh), nullptr);
  EXPECT_EQ(slab.get(fresh)->session_id, 999u);
  EXPECT_EQ(slab.size(), 1u);
}

TEST(SessionSlabTest, GrowsAndSurvivesChurn) {
  SessionSlab slab;
  std::vector<SessionHandle> handles;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    handles.push_back(slab.insert(record(i, static_cast<std::uint32_t>(i % 7))));
  }
  EXPECT_EQ(slab.size(), 1000u);
  EXPECT_GE(slab.capacity(), 1000u);
  // Erase the even ids, reinsert as fresh sessions, verify nothing aliases.
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    ASSERT_TRUE(slab.erase(handles[i]));
  }
  EXPECT_EQ(slab.size(), 500u);
  for (std::uint64_t i = 0; i < 500; ++i) {
    slab.insert(record(10'000 + i));
  }
  EXPECT_EQ(slab.size(), 1000u);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const SessionRecord* r = slab.get(handles[i]);
    if (i % 2 == 0) {
      EXPECT_EQ(r, nullptr) << i;
    } else {
      ASSERT_NE(r, nullptr) << i;
      EXPECT_EQ(r->session_id, i);
    }
  }
}

TEST(SessionSlabTest, GenerationWraparoundRetiresSlotInsteadOfAliasing) {
  SessionSlab slab;
  // Seed slot 0, then jump its generation to the maximum odd value — the
  // state it would reach after 2^31 - 1 insert/erase reuses.
  SessionHandle h = slab.insert(record(100));
  h = slab.set_generation_for_test(h, UINT32_MAX);
  ASSERT_NE(slab.get(h), nullptr);
  EXPECT_EQ(slab.get(h)->session_id, 100u);

  // Without the guard, erase would wrap the generation to 0 and the next
  // insert in the slot would mint generation 1 — the *first* generation
  // the slot ever handed out, resurrecting any ancient handle that kept
  // it. The guard retires the slot instead.
  EXPECT_TRUE(slab.erase(h));
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.get(h), nullptr);

  const SessionHandle ancient{h.index, 1};  // a hypothetical gen-1 survivor
  const SessionHandle fresh = slab.insert(record(200));
  EXPECT_NE(fresh.index, h.index) << "retired slot must never be recycled";
  EXPECT_EQ(slab.get(ancient), nullptr)
      << "wraparound resurrected a first-generation handle";
  EXPECT_EQ(slab.get(h), nullptr);
  ASSERT_NE(slab.get(fresh), nullptr);
  EXPECT_EQ(slab.get(fresh)->session_id, 200u);
}

TEST(SessionSlabTest, ClearRetiresWrappedSlotsToo) {
  SessionSlab slab;
  SessionHandle wrapped = slab.insert(record(1));
  const SessionHandle normal = slab.insert(record(2));
  wrapped = slab.set_generation_for_test(wrapped, UINT32_MAX);
  slab.clear();
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.get(wrapped), nullptr);
  EXPECT_EQ(slab.get(normal), nullptr);
  // The normal slot recycles; the wrapped slot never comes back.
  const SessionHandle a = slab.insert(record(10));
  const SessionHandle b = slab.insert(record(11));
  EXPECT_NE(a.index, wrapped.index);
  EXPECT_NE(b.index, wrapped.index);
  const SessionHandle ancient{wrapped.index, 1};
  EXPECT_EQ(slab.get(ancient), nullptr);
}

TEST(SessionSlabTest, HandlesEnumeratesLiveSlotsInSlotOrder) {
  SessionSlab slab;
  const SessionHandle a = slab.insert(record(10));
  const SessionHandle b = slab.insert(record(20));
  const SessionHandle c = slab.insert(record(30));
  ASSERT_TRUE(slab.erase(b));
  const std::vector<SessionHandle> live = slab.handles();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], a);
  EXPECT_EQ(live[1], c);
}

TEST(SessionSlabTest, ClearInvalidatesAllHandlesAndKeepsCapacity) {
  SessionSlab slab;
  std::vector<SessionHandle> handles;
  for (std::uint64_t i = 0; i < 16; ++i) handles.push_back(slab.insert(record(i)));
  const std::size_t capacity = slab.capacity();
  slab.clear();
  EXPECT_EQ(slab.size(), 0u);
  EXPECT_EQ(slab.capacity(), capacity);
  for (const SessionHandle& h : handles) {
    EXPECT_EQ(slab.get(h), nullptr);
  }
  // Still usable after clear.
  const SessionHandle fresh = slab.insert(record(42));
  ASSERT_NE(slab.get(fresh), nullptr);
  EXPECT_EQ(slab.get(fresh)->session_id, 42u);
}

}  // namespace
}  // namespace vibguard::serving
