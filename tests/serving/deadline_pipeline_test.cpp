// Cooperative deadline cancellation in the staged pipeline: expiry is
// observed at stage boundaries only, an expired trial ends as a structured
// kDeadlineExceeded outcome (never mid-stage), and supplying a deadline
// that never fires leaves every score bit-identical to the no-deadline run.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/clock.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

/// Clock whose time advances by a fixed step on every query, so a deadline
/// mid-way through the budget expires after a predictable number of
/// stage-boundary checks — without any real sleeping.
class TickingClock final : public Clock {
 public:
  explicit TickingClock(std::uint64_t step_us) : step_us_(step_us) {}
  std::uint64_t now_us() const override { return now_us_ += step_us_; }
  void sleep_us(std::uint64_t us) const override { now_us_ += us; }

 private:
  std::uint64_t step_us_;
  mutable std::uint64_t now_us_ = 0;
};

struct Fixture {
  eval::ScenarioSimulator sim{eval::ScenarioConfig{}, 17};
  eval::TrialRecordings trial;
  OracleSegmenter segmenter;

  Fixture()
      : trial(sim.legitimate_trial(
            speech::command_by_text("turn on the lights"),
            [] {
              Rng rng(18);
              return speech::sample_speaker(speech::Sex::kFemale, rng);
            }())),
        segmenter(trial.alignment, eval::reference_sensitive_set()) {}
};

TEST(DeadlinePipelineTest, PreExpiredDeadlineEndsBeforeAnyStage) {
  Fixture fx;
  const DefenseSystem system{DefenseConfig{}};
  VirtualClock clock(10);
  const Deadline dl(clock, 10);  // now >= expires_at: already expired
  Workspace ws;
  PipelineTrace trace;
  Rng rng(1);
  const ScoreOutcome outcome = system.try_score(
      fx.trial.va, fx.trial.wearable, &fx.segmenter, rng, ws, &trace, &dl);
  EXPECT_EQ(outcome.status, ScoreStatus::kDeadlineExceeded);
  EXPECT_STREQ(outcome.reason, "deadline_exceeded");
  EXPECT_EQ(outcome.score, kIndeterminateScore);
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(trace.stages.empty());  // cancelled at the first boundary
}

TEST(DeadlinePipelineTest, MidRunExpiryStopsAtAStageBoundary) {
  Fixture fx;
  const DefenseSystem system{DefenseConfig{}};
  // Every deadline check advances time by one tick and the budget is worth
  // three ticks, so the run is cancelled part-way through the stage
  // sequence: some stages have executed, the rest never run.
  TickingClock clock(10);
  const Deadline dl = Deadline::after(clock, 25);
  Workspace ws;
  PipelineTrace trace;
  Rng rng(2);
  const ScoreOutcome outcome = system.try_score(
      fx.trial.va, fx.trial.wearable, &fx.segmenter, rng, ws, &trace, &dl);
  EXPECT_EQ(outcome.status, ScoreStatus::kDeadlineExceeded);
  const std::size_t full_stages = [&] {
    Workspace ws2;
    PipelineTrace full;
    Rng rng2(2);
    system.try_score(fx.trial.va, fx.trial.wearable, &fx.segmenter, rng2, ws2,
                     &full);
    return full.stages.size();
  }();
  EXPECT_GT(trace.stages.size(), 0u);
  EXPECT_LT(trace.stages.size(), full_stages);
}

TEST(DeadlinePipelineTest, GenerousDeadlineIsBitIdenticalToNone) {
  Fixture fx;
  const DefenseSystem system{DefenseConfig{}};
  Workspace ws;
  Rng rng_plain(3);
  const double plain = system.score(fx.trial.va, fx.trial.wearable,
                                    &fx.segmenter, rng_plain, ws);

  VirtualClock clock;
  const Deadline dl = Deadline::after(clock, 1'000'000'000);
  Rng rng_dl(3);
  const double bounded = system.score(fx.trial.va, fx.trial.wearable,
                                      &fx.segmenter, rng_dl, ws, nullptr, &dl);
  EXPECT_DOUBLE_EQ(plain, bounded);
}

TEST(DeadlinePipelineTest, PlainScoreApiReturnsSentinelOnExpiry) {
  Fixture fx;
  const DefenseSystem system{DefenseConfig{}};
  VirtualClock clock(1);
  const Deadline dl(clock, 0);
  Workspace ws;
  Rng rng(4);
  const double s = system.score(fx.trial.va, fx.trial.wearable, &fx.segmenter,
                                rng, ws, nullptr, &dl);
  EXPECT_TRUE(is_indeterminate_score(s));
}

TEST(DeadlinePipelineTest, BatchHonorsPerRequestDeadlines) {
  Fixture fx;
  const DefenseSystem system{DefenseConfig{}};
  VirtualClock clock(5);
  const Deadline expired(clock, 0);

  std::vector<ScoreRequest> requests(3);
  for (auto& req : requests) {
    req.va = &fx.trial.va;
    req.wearable = &fx.trial.wearable;
    req.segmenter = &fx.segmenter;
  }
  requests[0].rng = Rng(5);
  requests[1].rng = Rng(5);
  requests[1].deadline = &expired;
  requests[2].rng = Rng(5);

  std::vector<ScoreOutcome> outcomes(3);
  Workspace ws;
  system.score_batch(requests, std::span<ScoreOutcome>(outcomes), ws);

  EXPECT_EQ(outcomes[0].status, ScoreStatus::kOk);
  EXPECT_EQ(outcomes[1].status, ScoreStatus::kDeadlineExceeded);
  EXPECT_EQ(outcomes[2].status, ScoreStatus::kOk);
  // The expired neighbour does not perturb the healthy requests.
  EXPECT_DOUBLE_EQ(outcomes[0].score, outcomes[2].score);
}

TEST(DeadlinePipelineTest, ExpiryDoesNotLeakIntoFollowingRuns) {
  Fixture fx;
  const DefenseSystem system{DefenseConfig{}};
  VirtualClock clock(1);
  const Deadline expired(clock, 0);
  Workspace ws;
  Rng r1(6);
  const ScoreOutcome cancelled =
      system.try_score(fx.trial.va, fx.trial.wearable, &fx.segmenter, r1, ws,
                       nullptr, &expired);
  ASSERT_EQ(cancelled.status, ScoreStatus::kDeadlineExceeded);
  // Reusing the same workspace without any deadline must score normally:
  // the expiry flag belongs to the run, not the workspace's lifetime.
  Rng r2(6);
  const ScoreOutcome healthy = system.try_score(
      fx.trial.va, fx.trial.wearable, &fx.segmenter, r2, ws);
  EXPECT_EQ(healthy.status, ScoreStatus::kOk);
}

}  // namespace
}  // namespace vibguard::core
