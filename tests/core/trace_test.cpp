#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

eval::TrialRecordings make_trial(std::uint64_t seed) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
  Rng rng(seed + 1);
  const auto spk = speech::sample_speaker(speech::Sex::kMale, rng);
  return sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), spk);
}

std::vector<std::string> stage_names(const PipelineTrace& trace) {
  std::vector<std::string> names;
  for (const StageTrace& st : trace.stages) names.emplace_back(st.name);
  return names;
}

TEST(TraceTest, StagesRecordedInAllModes) {
  struct Case {
    DefenseMode mode;
    bool needs_segmenter;
    std::vector<std::string> expected;
  };
  const std::vector<Case> cases = {
      {DefenseMode::kFull, true,
       {"quality", "sync", "segment", "vib_capture", "features",
        "correlate"}},
      {DefenseMode::kVibrationBaseline, false,
       {"quality", "sync", "vib_capture", "features", "correlate"}},
      {DefenseMode::kAudioBaseline, false,
       {"quality", "sync", "audio_features", "correlate"}},
  };
  const auto t = make_trial(61);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  for (const Case& c : cases) {
    DefenseConfig cfg;
    cfg.mode = c.mode;
    DefenseSystem sys(cfg);
    Rng rng(62);
    PipelineTrace trace;
    sys.score(t.va, t.wearable, c.needs_segmenter ? &seg : nullptr, rng,
              &trace);
    EXPECT_EQ(stage_names(trace), c.expected) << mode_name(c.mode);
  }
}

TEST(TraceTest, StageTimingsAreMonotone) {
  const auto t = make_trial(63);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  DefenseSystem sys{DefenseConfig{}};
  Rng rng(64);
  PipelineTrace trace;
  sys.score(t.va, t.wearable, &seg, rng, &trace);
  ASSERT_EQ(trace.stages.size(), 6u);
  for (std::size_t i = 0; i + 1 < trace.stages.size(); ++i) {
    // Each stage begins only after the previous one ended.
    EXPECT_LE(trace.stages[i].start_us + trace.stages[i].wall_us,
              trace.stages[i + 1].start_us)
        << trace.stages[i].name;
  }
}

TEST(TraceTest, SampleCountsChainAcrossStages) {
  const auto t = make_trial(65);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  DefenseSystem sys{DefenseConfig{}};
  Rng rng(66);
  PipelineTrace trace;
  sys.score(t.va, t.wearable, &seg, rng, &trace);
  ASSERT_EQ(trace.stages.size(), 6u);
  // The first stage (the pass-through quality gate) sees both raw
  // recordings; after that every stage consumes exactly what its
  // predecessor produced.
  EXPECT_EQ(trace.stages[0].samples_in, t.va.size() + t.wearable.size());
  EXPECT_EQ(trace.stages[0].samples_out, t.va.size() + t.wearable.size());
  for (std::size_t i = 0; i + 1 < trace.stages.size(); ++i) {
    EXPECT_EQ(trace.stages[i + 1].samples_in, trace.stages[i].samples_out)
        << trace.stages[i].name;
  }
  // The segment stage's output covers both channels of the reported
  // segment duration (equal lengths after synchronization).
  ASSERT_GT(trace.num_ranges, 0u);
  const auto segment_samples = static_cast<std::size_t>(
      std::llround(trace.segment_seconds * t.va.sample_rate()));
  EXPECT_EQ(trace.stages[2].samples_out, 2 * segment_samples);
  // Correlation reduces everything to a single score.
  EXPECT_EQ(trace.stages.back().samples_out, 1u);
}

TEST(TraceTest, WarmWorkspaceRunsAllocationFree) {
  const auto t = make_trial(67);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  DefenseSystem sys{DefenseConfig{}};
  Workspace workspace;
  PipelineTrace trace;
  Rng r1(68);
  const double first = sys.score(t.va, t.wearable, &seg, r1, workspace,
                                 &trace);
  // Second run through the warm workspace: bit-identical score, zero heap
  // allocations in every stage (the tentpole steady-state guarantee).
  Rng r2(68);
  const double second = sys.score(t.va, t.wearable, &seg, r2, workspace,
                                  &trace);
  EXPECT_EQ(first, second);
  for (const StageTrace& st : trace.stages) {
    EXPECT_EQ(st.allocations, 0u) << st.name;
  }
}

TEST(TraceTest, TraceResetsBetweenRuns) {
  const auto t = make_trial(69);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  PipelineTrace trace;
  {
    DefenseSystem sys{DefenseConfig{}};
    Rng rng(70);
    sys.score(t.va, t.wearable, &seg, rng, &trace);
    EXPECT_EQ(trace.stages.size(), 6u);
    EXPECT_GT(trace.num_ranges, 0u);
  }
  {
    DefenseConfig cfg;
    cfg.mode = DefenseMode::kAudioBaseline;
    DefenseSystem sys(cfg);
    Rng rng(71);
    sys.score(t.va, t.wearable, nullptr, rng, &trace);
    // Records are replaced, not appended, and full-mode scalars are reset.
    EXPECT_EQ(trace.stages.size(), 4u);
    EXPECT_EQ(trace.num_ranges, 0u);
  }
}

TEST(TraceTest, StatsAggregateAddMergeClear) {
  PipelineTrace trace;
  trace.stages.push_back(StageTrace{"sync", 0, 10, 8, 8, 2});
  trace.stages.push_back(StageTrace{"correlate", 10, 4, 8, 1, 0});

  PipelineStats stats;
  stats.add(trace);
  stats.add(trace);
  EXPECT_EQ(stats.commands, 2u);
  ASSERT_EQ(stats.stages.size(), 2u);
  EXPECT_EQ(stats.stages[0].name, "sync");
  EXPECT_EQ(stats.stages[0].calls, 2u);
  EXPECT_EQ(stats.stages[0].total_wall_us, 20u);
  EXPECT_EQ(stats.stages[0].max_wall_us, 10u);
  EXPECT_EQ(stats.stages[0].total_allocations, 4u);
  EXPECT_DOUBLE_EQ(stats.stages[0].mean_wall_us(), 10.0);

  PipelineStats other;
  other.add(trace);
  stats.merge(other);
  EXPECT_EQ(stats.commands, 3u);
  EXPECT_EQ(stats.stages[0].calls, 3u);
  EXPECT_EQ(stats.stages[1].total_wall_us, 12u);

  const std::string summary = stats.summary();
  EXPECT_NE(summary.find("3 command(s)"), std::string::npos);
  EXPECT_NE(summary.find("sync"), std::string::npos);
  EXPECT_NE(summary.find("correlate"), std::string::npos);

  stats.clear();
  EXPECT_EQ(stats.commands, 0u);
  EXPECT_TRUE(stats.stages.empty());
}

TEST(TraceTest, StatsPopulatedInAllModes) {
  const auto t = make_trial(72);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  for (DefenseMode mode :
       {DefenseMode::kFull, DefenseMode::kVibrationBaseline,
        DefenseMode::kAudioBaseline}) {
    DefenseConfig cfg;
    cfg.mode = mode;
    DefenseSystem sys(cfg);
    Rng rng(73);
    PipelineTrace trace;
    sys.score(t.va, t.wearable,
              mode == DefenseMode::kFull ? &seg : nullptr, rng, &trace);
    PipelineStats stats;
    stats.add(trace);
    EXPECT_EQ(stats.commands, 1u) << mode_name(mode);
    EXPECT_EQ(stats.stages.size(), trace.stages.size()) << mode_name(mode);
  }
}

}  // namespace
}  // namespace vibguard::core
