#include "core/segmentation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "eval/experiment.hpp"

namespace vibguard::core {
namespace {

speech::Utterance make_utterance(const char* text, std::uint64_t seed) {
  speech::UtteranceBuilder builder;
  Rng rng(seed);
  auto spk = speech::sample_speaker(speech::Sex::kMale, rng);
  return builder.build(speech::command_by_text(text), spk, rng);
}

TEST(RangeUtilsTest, NormalizeMergesOverlaps) {
  auto merged = normalize_ranges({{10, 20}, {15, 30}, {40, 50}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].begin, 10u);
  EXPECT_EQ(merged[0].end, 30u);
  EXPECT_EQ(merged[1].begin, 40u);
}

TEST(RangeUtilsTest, NormalizeSortsAndDropsEmpty) {
  auto merged = normalize_ranges({{40, 50}, {10, 20}, {30, 30}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].begin, 10u);
}

TEST(RangeUtilsTest, MinLengthFilter) {
  auto merged = normalize_ranges({{0, 5}, {10, 100}}, 10);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].begin, 10u);
}

TEST(RangeUtilsTest, AdjacentRangesMerge) {
  auto merged = normalize_ranges({{0, 10}, {10, 20}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].end, 20u);
}

TEST(ExtractRangesTest, ConcatenatesSelectedContent) {
  Signal s({0.0, 1.0, 2.0, 3.0, 4.0, 5.0}, 10.0);
  const std::vector<SampleRange> ranges = {{1, 3}, {4, 6}};
  const Signal out = extract_ranges(s, ranges);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(ExtractRangesTest, ClampsOutOfBounds) {
  Signal s({0.0, 1.0}, 10.0);
  const std::vector<SampleRange> ranges = {{1, 99}};
  EXPECT_EQ(extract_ranges(s, ranges).size(), 1u);
}

TEST(ExtractRangesTest, EmptyRangesGiveEmptySignal) {
  Signal s({0.0, 1.0}, 10.0);
  const Signal out = extract_ranges(s, {});
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(out.sample_rate(), 10.0);
}

TEST(OracleSegmenterTest, SelectsOnlySensitiveSpans) {
  const auto utt = make_utterance("turn on the lights", 1);
  // "turn on the lights": t er n aa n dh ah l ay t s; /aa/ and /n/ are not
  // in the reference sensitive set.
  OracleSegmenter seg(utt.alignment, eval::reference_sensitive_set());
  const auto ranges = seg.segment(utt.audio, 0);
  std::size_t covered = 0;
  for (const auto& r : ranges) covered += r.end - r.begin;
  // Sensitive coverage is strictly partial.
  EXPECT_GT(covered, 0u);
  EXPECT_LT(covered, utt.audio.size());
}

TEST(OracleSegmenterTest, TimelineOffsetShiftsRanges) {
  const auto utt = make_utterance("turn on the lights", 2);
  OracleSegmenter seg(utt.alignment, eval::reference_sensitive_set());
  const auto base = seg.segment(utt.audio, 0);
  const std::size_t offset = 800;
  const auto shifted = seg.segment(utt.audio.slice(offset, utt.audio.size()),
                                   offset);
  ASSERT_FALSE(base.empty());
  ASSERT_FALSE(shifted.empty());
  // First sensitive span begins at least `offset` later in base timeline.
  EXPECT_LE(shifted[0].begin + offset,
            base[0].begin + offset + utt.audio.size());
  for (const auto& r : shifted) {
    EXPECT_LE(r.end, utt.audio.size() - offset);
  }
}

TEST(OracleSegmenterTest, EmptySensitiveSetGivesNoRanges) {
  const auto utt = make_utterance("stop", 3);
  OracleSegmenter seg(utt.alignment, {});
  EXPECT_TRUE(seg.segment(utt.audio, 0).empty());
}

TEST(BrnnSegmenterTest, MakeSequenceLabelsSensitiveFrames) {
  const auto utt = make_utterance("turn on the lights", 4);
  BrnnSegmenter::Config cfg;
  BrnnSegmenter seg(cfg, 1);
  const auto data =
      seg.make_sequence(utt.audio, utt.alignment,
                        eval::reference_sensitive_set());
  ASSERT_EQ(data.features.size(), data.labels.size());
  ASSERT_FALSE(data.features.empty());
  // Both classes present for this command.
  bool has0 = false, has1 = false;
  for (auto l : data.labels) {
    has0 |= l == 0;
    has1 |= l == 1;
  }
  EXPECT_TRUE(has0);
  EXPECT_TRUE(has1);
  EXPECT_EQ(data.features[0].size(), cfg.mfcc.num_coeffs);
}

TEST(BrnnSegmenterTest, TrainingImprovesAccuracy) {
  BrnnSegmenter::Config cfg;
  cfg.brnn.hidden_dim = 16;
  cfg.brnn.adam.learning_rate = 5e-3;
  BrnnSegmenter seg(cfg, 2);

  // Small training set from several utterances.
  std::vector<nn::LabeledSequence> data;
  const char* cmds[] = {"turn on the lights", "stop", "call mom",
                        "play some music", "set an alarm"};
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto utt = make_utterance(cmds[i % 5], 100 + i);
    data.push_back(seg.make_sequence(utt.audio, utt.alignment,
                                     eval::reference_sensitive_set()));
  }
  const double before = seg.evaluate(data);
  Rng rng(3);
  for (int e = 0; e < 12; ++e) seg.train_epoch(data, 4, rng);
  const double after = seg.evaluate(data);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.75);
}

TEST(BrnnSegmenterTest, SegmentReturnsMergedFrameRuns) {
  BrnnSegmenter::Config cfg;
  BrnnSegmenter seg(cfg, 3);
  const auto utt = make_utterance("what time is it", 5);
  const auto ranges = seg.segment(utt.audio, 0);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].begin, ranges[i - 1].end);
  }
}

TEST(BrnnSegmenterTest, RejectsMismatchedDims) {
  BrnnSegmenter::Config cfg;
  cfg.brnn.in_dim = 10;  // mfcc.num_coeffs is 14
  EXPECT_THROW(BrnnSegmenter(cfg, 1), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::core
