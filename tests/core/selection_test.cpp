#include "core/phoneme_selection.hpp"

#include <gtest/gtest.h>

#include "acoustics/material.hpp"
#include "common/error.hpp"

namespace vibguard::core {
namespace {

/// Shared across tests: selection is the most expensive offline step, so run
/// it once on a reduced (but statistically meaningful) corpus.
const SelectionResult& reference_run() {
  static const SelectionResult result = [] {
    speech::CorpusConfig ccfg;
    ccfg.segments_per_phoneme = 20;
    speech::PhonemeCorpus corpus(ccfg, 42);
    PhonemeSelector selector(SelectionConfig{}, device::Wearable{});
    acoustics::Barrier barrier(acoustics::glass_window());
    Rng rng(7);
    return selector.select(corpus, barrier, rng);
  }();
  return result;
}

TEST(PhonemeSelectionTest, CoversAllCommonPhonemes) {
  const auto& r = reference_run();
  EXPECT_EQ(r.phonemes.size(), 37u);
}

TEST(PhonemeSelectionTest, SelectsMajorityOfPhonemes) {
  // Paper: 31 of 37. Our physics selects 29; accept the same ballpark.
  const auto& r = reference_run();
  EXPECT_GE(r.sensitive.size(), 26u);
  EXPECT_LE(r.sensitive.size(), 33u);
}

TEST(PhonemeSelectionTest, LoudLowVowelsFailCriterion1) {
  // The paper's named exclusions: /aa/ and /ao/ still trigger the
  // accelerometer through the barrier.
  const auto& r = reference_run();
  EXPECT_FALSE(r.info("aa").passes_criterion1);
  EXPECT_FALSE(r.info("ao").passes_criterion1);
  EXPECT_FALSE(r.is_sensitive("aa"));
  EXPECT_FALSE(r.is_sensitive("ao"));
}

TEST(PhonemeSelectionTest, WeakCouplingSonorantsFailCriterion2) {
  const auto& r = reference_run();
  for (const char* sym : {"iy", "w", "y", "m", "n", "ng"}) {
    EXPECT_FALSE(r.info(sym).passes_criterion2) << sym;
  }
}

TEST(PhonemeSelectionTest, StrongObstruentsSelected) {
  const auto& r = reference_run();
  for (const char* sym : {"t", "d", "k", "s", "sh", "ch"}) {
    EXPECT_TRUE(r.is_sensitive(sym)) << sym;
  }
}

TEST(PhonemeSelectionTest, MidVowelsSelected) {
  const auto& r = reference_run();
  for (const char* sym : {"ae", "eh", "ih", "er"}) {
    EXPECT_TRUE(r.is_sensitive(sym)) << sym;
  }
}

TEST(PhonemeSelectionTest, Criterion1MeasuresBarrierResidual) {
  // Thru-barrier Q3 of the loud vowels must exceed that of fricatives
  // whose energy the barrier absorbs completely.
  const auto& r = reference_run();
  EXPECT_GT(r.info("aa").max_q3_with_barrier,
            1.5 * r.info("s").max_q3_with_barrier);
}

TEST(PhonemeSelectionTest, Criterion2MeasuresDirectResponse) {
  const auto& r = reference_run();
  EXPECT_GT(r.info("t").min_q3_without_barrier,
            3.0 * r.info("m").min_q3_without_barrier);
}

TEST(PhonemeSelectionTest, SpectraBinCountConsistent) {
  const auto& r = reference_run();
  for (const auto& p : r.phonemes) {
    EXPECT_EQ(p.q3_with_barrier.size(), p.q3_without_barrier.size());
    EXPECT_FALSE(p.q3_with_barrier.empty());
  }
  EXPECT_GT(r.bin_hz, 0.0);
}

TEST(PhonemeSelectionTest, SelectedEqualsBothCriteria) {
  const auto& r = reference_run();
  for (const auto& p : r.phonemes) {
    EXPECT_EQ(p.selected, p.passes_criterion1 && p.passes_criterion2)
        << p.symbol;
    EXPECT_EQ(r.is_sensitive(p.symbol), p.selected) << p.symbol;
  }
}

TEST(PhonemeSelectionTest, CalibratedThresholdBelowAlpha) {
  // The noise-floor calibration must land below the operating threshold
  // (otherwise silence would "trigger" the accelerometer).
  PhonemeSelector selector(SelectionConfig{}, device::Wearable{});
  Rng rng(11);
  const double cal = selector.calibrate_threshold(rng);
  EXPECT_GT(cal, 0.0);
  EXPECT_LT(cal, SelectionConfig{}.alpha);
}

TEST(PhonemeSelectionTest, InfoLookupRejectsUnknown) {
  const auto& r = reference_run();
  EXPECT_THROW(r.info("zz"), vibguard::InvalidArgument);
}

TEST(PhonemeSelectionTest, RejectsBadConfig) {
  SelectionConfig cfg;
  cfg.alpha = 0.0;
  EXPECT_THROW(PhonemeSelector(cfg, device::Wearable{}),
               vibguard::InvalidArgument);
  SelectionConfig cfg2;
  cfg2.spl_levels.clear();
  EXPECT_THROW(PhonemeSelector(cfg2, device::Wearable{}),
               vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::core
