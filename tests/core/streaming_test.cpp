#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "attacks/attack.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "core/quality.hpp"
#include "core/segmentation.hpp"
#include "core/trace.hpp"
#include "dsp/generate.hpp"
#include "dsp/stft.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

eval::TrialRecordings make_trial(std::uint64_t seed, bool attack) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
  Rng rng(seed + 1);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto cmd = speech::command_by_text("turn on the lights");
  if (!attack) return sim.legitimate_trial(cmd, user);
  const auto adv = speech::sample_speaker(speech::Sex::kFemale, rng);
  return sim.attack_trial(attacks::AttackType::kReplay, cmd, user, adv);
}

/// Streams `trial` through `pipeline` with va frames of `va_frame` samples
/// and wearable frames of `wear_frame` samples (0 = push the whole channel
/// in one call), then finalizes.
StreamOutcome stream_with_schedule(StreamingPipeline& pipeline,
                                   const eval::TrialRecordings& trial,
                                   const Segmenter* segmenter, const Rng& rng,
                                   std::size_t va_frame,
                                   std::size_t wear_frame) {
  pipeline.begin(trial.va.sample_rate(), segmenter, rng);
  const auto frame_of = [](const Signal& s, std::size_t offset,
                           std::size_t frame) {
    const std::size_t begin = std::min(offset, s.size());
    const std::size_t end =
        frame == 0 ? s.size() : std::min(offset + frame, s.size());
    return s.samples().subspan(begin, end > begin ? end - begin : 0);
  };
  std::size_t va_off = 0;
  std::size_t wear_off = 0;
  while (va_off < trial.va.size() || wear_off < trial.wearable.size()) {
    const auto va = frame_of(trial.va, va_off, va_frame);
    const auto wear = frame_of(trial.wearable, wear_off, wear_frame);
    pipeline.push(va, wear);
    va_off += va.size();
    wear_off += wear.size();
    if (va.empty() && wear.empty()) break;
  }
  return pipeline.finalize();
}

class StreamingBitIdentityTest : public ::testing::TestWithParam<bool> {};

TEST_P(StreamingBitIdentityTest, MatchesBatchForAnyPushSchedule) {
  const bool attack = GetParam();
  const auto trial = make_trial(attack ? 101 : 100, attack);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));

  Workspace workspace;
  Rng batch_rng(7);
  const ScoreOutcome batch = system.try_score(trial.va, trial.wearable, &seg,
                                              batch_rng, workspace);
  ASSERT_TRUE(batch.ok());

  StreamingPipeline pipeline(system);
  const struct {
    std::size_t va_frame;
    std::size_t wear_frame;
  } schedules[] = {
      {0, 0},       // both channels in one push
      {512, 512},   // equal mid-size frames
      {997, 1501},  // ragged, unequal frame sizes
      {1, 4096},    // single-sample va pushes against large wearable frames
  };
  for (const auto& s : schedules) {
    const StreamOutcome out = stream_with_schedule(
        pipeline, trial, &seg, Rng(7), s.va_frame, s.wear_frame);
    EXPECT_EQ(out.verdict, StreamVerdict::kCompleted);
    EXPECT_FALSE(out.early_exit);
    ASSERT_TRUE(out.outcome.ok());
    // Bitwise identity, not closeness: the exact finalize pass re-runs the
    // batch pipeline on the accumulated buffers with an untouched copy of
    // the begin()-time rng.
    EXPECT_EQ(out.outcome.score, batch.score)
        << "va_frame=" << s.va_frame << " wear_frame=" << s.wear_frame;
  }
}

INSTANTIATE_TEST_SUITE_P(LegitAndAttack, StreamingBitIdentityTest,
                         ::testing::Values(false, true));

TEST(StreamingPipelineTest, BaselineModesMatchBatchToo) {
  const auto trial = make_trial(102, false);
  for (const DefenseMode mode :
       {DefenseMode::kVibrationBaseline, DefenseMode::kAudioBaseline}) {
    DefenseConfig cfg;
    cfg.mode = mode;
    DefenseSystem system(cfg);
    Workspace workspace;
    Rng batch_rng(9);
    const ScoreOutcome batch = system.try_score(
        trial.va, trial.wearable, nullptr, batch_rng, workspace);
    ASSERT_TRUE(batch.ok());

    StreamingPipeline pipeline(system);
    const StreamOutcome out =
        stream_with_schedule(pipeline, trial, nullptr, Rng(9), 773, 2048);
    ASSERT_TRUE(out.outcome.ok()) << mode_name(mode);
    EXPECT_EQ(out.outcome.score, batch.score) << mode_name(mode);
  }
}

TEST(StreamingPipelineTest, ReusedPipelineStreamsBitIdentical) {
  const auto trial = make_trial(103, true);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  StreamingPipeline pipeline(system);

  const StreamOutcome first =
      stream_with_schedule(pipeline, trial, &seg, Rng(11), 640, 640);
  const StreamOutcome second =
      stream_with_schedule(pipeline, trial, &seg, Rng(11), 640, 640);
  ASSERT_TRUE(first.outcome.ok());
  EXPECT_EQ(first.outcome.score, second.outcome.score);
  EXPECT_EQ(first.provisional_score, second.provisional_score);
  EXPECT_EQ(first.coarse_score, second.coarse_score);
}

TEST(StreamingPipelineTest, ProvisionalScoresInvariantToPushSchedule) {
  const auto trial = make_trial(104, false);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  StreamingConfig cfg;
  cfg.finalize = StreamingConfig::Finalize::kProvisional;
  StreamingPipeline pipeline(system, cfg);

  const StreamOutcome whole =
      stream_with_schedule(pipeline, trial, &seg, Rng(13), 0, 0);
  const StreamOutcome ragged =
      stream_with_schedule(pipeline, trial, &seg, Rng(13), 811, 1283);
  // The provisional path consumes a fixed absolute block grid, so the
  // checkpoint scores never depend on how the samples arrived.
  EXPECT_EQ(whole.provisional_score, ragged.provisional_score);
  EXPECT_EQ(whole.coarse_score, ragged.coarse_score);
  EXPECT_EQ(whole.blocks, ragged.blocks);
}

// --- streaming component vs batch counterpart -----------------------------

TEST(StreamingCensusTest, MatchesBatchAssessChannel) {
  Rng rng(21);
  std::vector<double> samples(24000);
  for (double& s : samples) s = rng.gaussian() * 0.1;
  // Defects the census must fold identically: a long zero gap, a stuck
  // (constant, nonzero) run and a couple of non-finite samples.
  for (std::size_t i = 5000; i < 6200; ++i) samples[i] = 0.0;
  for (std::size_t i = 9000; i < 9800; ++i) samples[i] = 0.25;
  samples[15000] = std::numeric_limits<double>::quiet_NaN();
  samples[15001] = std::numeric_limits<double>::infinity();
  const Signal signal(samples, 16000.0);

  const QualityConfig cfg;
  const ChannelQuality batch = assess_channel(signal, cfg);
  const std::size_t gap = min_gap_samples(cfg, signal.sample_rate());

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{640}, samples.size()}) {
    StreamingCensus census;
    for (std::size_t off = 0; off < samples.size(); off += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - off);
      census.update(std::span<const double>(samples).subspan(off, n), gap);
    }
    const ChannelQuality streamed = census.finalize(signal, cfg);
    EXPECT_EQ(streamed.samples, batch.samples) << "chunk=" << chunk;
    EXPECT_EQ(streamed.rms, batch.rms) << "chunk=" << chunk;
    EXPECT_EQ(streamed.peak, batch.peak) << "chunk=" << chunk;
    EXPECT_EQ(streamed.dc_offset, batch.dc_offset) << "chunk=" << chunk;
    EXPECT_EQ(streamed.clip_ratio, batch.clip_ratio) << "chunk=" << chunk;
    EXPECT_EQ(streamed.gap_ratio, batch.gap_ratio) << "chunk=" << chunk;
    EXPECT_EQ(streamed.longest_gap_s, batch.longest_gap_s)
        << "chunk=" << chunk;
    EXPECT_EQ(streamed.stuck_ratio, batch.stuck_ratio) << "chunk=" << chunk;
    EXPECT_EQ(streamed.non_finite, batch.non_finite) << "chunk=" << chunk;
    EXPECT_EQ(streamed.issues, batch.issues) << "chunk=" << chunk;
  }
}

TEST(StreamingStftTest, MatchesBatchPowerSpectrogram) {
  Rng rng(22);
  std::vector<double> samples(4096 + 113);
  for (double& s : samples) s = rng.gaussian();
  const Signal signal(samples, 16000.0);

  dsp::Spectrogram batch;
  dsp::stft_power_into(signal, 64, 16, batch);

  for (const std::size_t chunk :
       {std::size_t{1}, std::size_t{50}, std::size_t{1000}}) {
    dsp::StreamingStft stft;
    stft.reset(64, 16);
    for (std::size_t off = 0; off < samples.size(); off += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - off);
      stft.push(std::span<const double>(samples).subspan(off, n));
    }
    ASSERT_EQ(stft.frames(), batch.frames()) << "chunk=" << chunk;
    ASSERT_EQ(stft.bins(), batch.bins()) << "chunk=" << chunk;
    for (std::size_t f = 0; f < batch.frames(); ++f) {
      for (std::size_t b = 0; b < batch.bins(); ++b) {
        // Each frame is windowed and transformed exactly once, in the same
        // order as the batch transform — bitwise identical.
        ASSERT_EQ(stft.row(f)[b], batch.at(f, b))
            << "chunk=" << chunk << " frame=" << f << " bin=" << b;
      }
    }
  }
}

TEST(StreamingPearsonTest, MatchesCorrelation2d) {
  Rng rng(23);
  const std::size_t frames = 40;
  const std::size_t bins = 33;
  dsp::Spectrogram a(frames, bins, 1.0, 1.0);
  dsp::Spectrogram b(frames, bins, 1.0, 1.0);
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t k = 0; k < bins; ++k) {
      a.at(f, k) = rng.gaussian();
      b.at(f, k) = 0.6 * a.at(f, k) + 0.4 * rng.gaussian();
    }
  }
  const dsp::Correlation2dResult batch = dsp::correlation_2d_ex(a, b);
  ASSERT_FALSE(batch.degenerate);

  dsp::StreamingPearson pearson;
  for (std::size_t f = 0; f < frames; ++f) {
    pearson.add(&a.values()[f * bins], &b.values()[f * bins], bins);
  }
  const dsp::Correlation2dResult streamed = pearson.value();
  ASSERT_FALSE(streamed.degenerate);
  EXPECT_EQ(pearson.count(), frames * bins);
  // Chunked accumulation reorders the moment sums, so equality is to
  // rounding, not bitwise.
  EXPECT_NEAR(streamed.value, batch.value, 1e-9);

  dsp::StreamingPearson empty;
  EXPECT_TRUE(empty.value().degenerate);
}

// --- stopping rule --------------------------------------------------------

/// Constant-posterior model: drives the rule deterministically.
class FixedConfidence final : public ConfidenceModel {
 public:
  explicit FixedConfidence(double p) : p_(p) {}
  double posterior_attack(double) const override { return p_; }

 private:
  double p_;
};

StreamingConfig rule_config(const ConfidenceModel* model) {
  StreamingConfig cfg;
  cfg.stop.enabled = true;
  cfg.stop.confidence = model;
  cfg.stop.coarse_confidence = model;
  cfg.finalize = StreamingConfig::Finalize::kProvisional;
  return cfg;
}

TEST(StoppingRuleTest, ConfidentAttackEvidenceExitsEarly) {
  const auto trial = make_trial(105, true);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  const FixedConfidence always_attack(1.0);
  StreamingPipeline pipeline(system, rule_config(&always_attack));

  pipeline.begin(trial.va.sample_rate(), &seg, Rng(31));
  StreamStatus st;
  std::size_t pushed = 0;
  for (; pushed < trial.va.size(); pushed += 1024) {
    const std::size_t n = std::min<std::size_t>(1024, trial.va.size() - pushed);
    st = pipeline.push(trial.va.samples().subspan(pushed, n),
                       trial.wearable.samples().subspan(
                           pushed, std::min<std::size_t>(
                                       n, trial.wearable.size() - pushed)));
    if (st.verdict != StreamVerdict::kPending) break;
  }
  EXPECT_EQ(st.verdict, StreamVerdict::kAttackEarly);
  EXPECT_LT(pushed, trial.va.size());  // exited before the stream ended
  EXPECT_GE(st.posterior_attack, pipeline.config().stop.attack_confidence);

  const StreamOutcome out = pipeline.finalize();
  EXPECT_TRUE(out.early_exit);
  EXPECT_EQ(out.verdict, StreamVerdict::kAttackEarly);
  // An early exit reports the provisional evidence, not a batch score.
  EXPECT_EQ(out.outcome.score, out.provisional_score);
}

TEST(StoppingRuleTest, ConfidentLegitEvidenceExitsAcceptSide) {
  const auto trial = make_trial(106, false);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  const FixedConfidence never_attack(0.0);
  StreamingPipeline pipeline(system, rule_config(&never_attack));

  const StreamOutcome out =
      stream_with_schedule(pipeline, trial, &seg, Rng(33), 1024, 1024);
  EXPECT_EQ(out.verdict, StreamVerdict::kAcceptEarly);
  EXPECT_TRUE(out.early_exit);
}

TEST(StoppingRuleTest, DisabledRuleNeverExits) {
  const auto trial = make_trial(107, true);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  const FixedConfidence always_attack(1.0);
  StreamingConfig cfg = rule_config(&always_attack);
  cfg.stop.enabled = false;
  StreamingPipeline pipeline(system, cfg);

  const StreamOutcome out =
      stream_with_schedule(pipeline, trial, &seg, Rng(35), 1024, 1024);
  EXPECT_EQ(out.verdict, StreamVerdict::kCompleted);
  EXPECT_FALSE(out.early_exit);
  // The posterior is still tracked for status consumers.
  EXPECT_GE(out.posterior_attack, 0.9);
}

TEST(StoppingRuleTest, MinStreamGateBlocksInstantVerdicts) {
  const auto trial = make_trial(108, true);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  const FixedConfidence always_attack(1.0);
  StreamingConfig cfg = rule_config(&always_attack);
  cfg.stop.min_stream_s = 10.0;  // longer than any trial
  StreamingPipeline pipeline(system, cfg);

  const StreamOutcome out =
      stream_with_schedule(pipeline, trial, &seg, Rng(37), 1024, 1024);
  EXPECT_EQ(out.verdict, StreamVerdict::kCompleted);
  EXPECT_FALSE(out.early_exit);
}

TEST(StreamingPipelineTest, FailsClosedOnNonFiniteSamples) {
  const auto trial = make_trial(109, false);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  StreamingPipeline pipeline(system);

  pipeline.begin(trial.va.sample_rate(), &seg, Rng(41));
  pipeline.push(trial.va.samples().first(4096),
                trial.wearable.samples().first(4096));
  const double bad[3] = {0.1, std::numeric_limits<double>::quiet_NaN(), 0.2};
  const StreamStatus st = pipeline.push(bad, {});
  EXPECT_EQ(st.verdict, StreamVerdict::kFailedClosed);

  const StreamOutcome out = pipeline.finalize();
  EXPECT_EQ(out.verdict, StreamVerdict::kFailedClosed);
  EXPECT_FALSE(out.outcome.ok());
  EXPECT_EQ(out.outcome.status, ScoreStatus::kIndeterminate);
}

// --- instrumentation ------------------------------------------------------

TEST(StreamingPipelineTest, SecondFinalizeIsIdempotent) {
  const auto trial = make_trial(111, false);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  StreamingPipeline pipeline(system);

  PipelineTrace trace;
  pipeline.begin(trial.va.sample_rate(), &seg, Rng(51), &trace);
  pipeline.push(trial.va.samples(), trial.wearable.samples());
  const StreamOutcome first = pipeline.finalize();
  ASSERT_TRUE(first.outcome.ok());
  const std::size_t stages_after_first = trace.stages.size();

  // A second finalize() before the next begin() must return the cached
  // outcome: no batch re-score, no new trace records — so a caller that
  // add()s the trace into PipelineStats counts this trial exactly once.
  const StreamOutcome second = pipeline.finalize();
  EXPECT_EQ(second.outcome.score, first.outcome.score);
  EXPECT_EQ(second.outcome.status, first.outcome.status);
  EXPECT_EQ(second.verdict, first.verdict);
  EXPECT_EQ(second.provisional_score, first.provisional_score);
  EXPECT_EQ(second.pushed_va_samples, first.pushed_va_samples);
  EXPECT_EQ(trace.stages.size(), stages_after_first);

  PipelineStats stats;
  stats.add(trace);
  EXPECT_EQ(stats.commands, 1u);

  // The pipeline stays reusable after the repeated finalize.
  pipeline.begin(trial.va.sample_rate(), &seg, Rng(51));
  pipeline.push(trial.va.samples(), trial.wearable.samples());
  const StreamOutcome again = pipeline.finalize();
  EXPECT_EQ(again.outcome.score, first.outcome.score);
}

TEST(StreamingPipelineTest, ZeroLengthPushIsNoOp) {
  const auto trial = make_trial(112, false);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));

  // Reference stream: no empty pushes.
  StreamingPipeline reference(system);
  const StreamOutcome expected =
      stream_with_schedule(reference, trial, &seg, Rng(53), 2048, 2048);
  ASSERT_TRUE(expected.outcome.ok());

  // Same schedule with empty pushes interleaved everywhere: the empties
  // must not advance any carried census/STFT/pairing state, and must not
  // clobber the evaluated_this_push report of the preceding real push.
  StreamingPipeline pipeline(system);
  pipeline.begin(trial.va.sample_rate(), &seg, Rng(53));
  pipeline.push({}, {});  // before any data
  std::size_t off = 0;
  while (off < trial.va.size() || off < trial.wearable.size()) {
    const auto chunk = [&](const Signal& s) {
      const std::size_t begin = std::min(off, s.size());
      const std::size_t end = std::min(off + 2048, s.size());
      return s.samples().subspan(begin, end - begin);
    };
    const StreamStatus after_real = pipeline.push(chunk(trial.va),
                                                  chunk(trial.wearable));
    const StreamStatus after_empty = pipeline.push({}, {});
    EXPECT_EQ(after_empty.blocks, after_real.blocks);
    EXPECT_EQ(after_empty.paired_frames, after_real.paired_frames);
    EXPECT_EQ(after_empty.coarse_frames, after_real.coarse_frames);
    EXPECT_EQ(after_empty.provisional_score, after_real.provisional_score);
    EXPECT_EQ(after_empty.evaluated_this_push, after_real.evaluated_this_push);
    off += 2048;
  }
  const StreamOutcome out = pipeline.finalize();
  ASSERT_TRUE(out.outcome.ok());
  EXPECT_EQ(out.outcome.score, expected.outcome.score);
  EXPECT_EQ(out.provisional_score, expected.provisional_score);
  EXPECT_EQ(out.pushed_va_samples, expected.pushed_va_samples);
  EXPECT_EQ(out.blocks, expected.blocks);
}

TEST(StreamingTraceTest, TraceAppendConcatenatesStageRecords) {
  PipelineTrace a;
  a.stages.push_back(StageTrace{"x", 0, 5, 10, 10, 0});
  PipelineTrace b;
  b.stages.push_back(StageTrace{"y", 1, 7, 20, 20, 1});
  b.stages.push_back(StageTrace{"z", 2, 9, 30, 30, 2});
  a.append(b);
  ASSERT_EQ(a.stages.size(), 3u);
  EXPECT_STREQ(a.stages[1].name, "y");
  EXPECT_STREQ(a.stages[2].name, "z");
}

TEST(StreamingTraceTest, StatsSeparateCallsFromTrials) {
  const auto trial = make_trial(110, false);
  OracleSegmenter seg(trial.alignment, eval::reference_sensitive_set());
  DefenseSystem system((DefenseConfig()));
  StreamingPipeline pipeline(system);

  PipelineStats stats;
  for (int run = 0; run < 2; ++run) {
    PipelineTrace trace;
    pipeline.begin(trial.va.sample_rate(), &seg, Rng(43), &trace);
    for (std::size_t off = 0; off < trial.va.size(); off += 2048) {
      const std::size_t n =
          std::min<std::size_t>(2048, trial.va.size() - off);
      pipeline.push(trial.va.samples().subspan(off, n),
                    trial.wearable.samples().subspan(
                        off, std::min<std::size_t>(
                                 n, trial.wearable.size() - off)));
    }
    pipeline.finalize();
    stats.add(trace);
  }

  EXPECT_EQ(stats.commands, 2u);
  const PipelineStats::StageStats* ingest = nullptr;
  for (const auto& s : stats.stages) {
    if (s.name == "stream_ingest") ingest = &s;
  }
  ASSERT_NE(ingest, nullptr);
  // The ingest stage ran once per push — many calls, but exactly one trial
  // per add()ed trace. Before the calls/trials split, per-stage means were
  // diluted by the call count.
  EXPECT_EQ(ingest->trials, 2u);
  EXPECT_GT(ingest->calls, ingest->trials);
  EXPECT_GT(ingest->mean_calls_per_trial(), 1.0);

  PipelineStats other = stats;
  other.merge(stats);
  for (const auto& s : other.stages) {
    if (s.name == "stream_ingest") {
      EXPECT_EQ(s.trials, 4u);
      EXPECT_EQ(s.calls, 2 * ingest->calls);
    }
  }
}

}  // namespace
}  // namespace vibguard::core
