#include "core/detector.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/vibration_features.hpp"
#include "dsp/generate.hpp"

namespace vibguard::core {
namespace {

dsp::Spectrogram features_of(const Signal& vib) {
  return VibrationFeatureExtractor{}.extract(vib);
}

TEST(DetectorTest, IdenticalFeaturesScoreOne) {
  Rng rng(1);
  const Signal vib = dsp::white_noise(2.0, 200.0, 0.01, rng);
  const auto f = features_of(vib);
  CorrelationDetector det;
  EXPECT_NEAR(det.score(f, f), 1.0, 1e-9);
  EXPECT_FALSE(det.detect(f, f).is_attack);
}

TEST(DetectorTest, IndependentNoiseDetectedAsAttack) {
  Rng rng(2);
  const Signal v1 = dsp::white_noise(5.0, 200.0, 0.01, rng);
  const Signal v2 = dsp::white_noise(5.0, 200.0, 0.01, rng);
  CorrelationDetector det(0.35);
  const auto result = det.detect(features_of(v1), features_of(v2));
  EXPECT_LT(result.score, 0.35);
  EXPECT_TRUE(result.is_attack);
}

TEST(DetectorTest, SharedSignalWithSmallNoiseAccepted) {
  Rng rng(3);
  const Signal base = dsp::tone(30.0, 5.0, 200.0, 0.05);
  Signal v1 = base, v2 = base;
  for (std::size_t i = 0; i < v1.size(); ++i) {
    v1[i] += rng.gaussian(0.0, 0.002);
    v2[i] += rng.gaussian(0.0, 0.002);
  }
  CorrelationDetector det(0.35);
  const auto result = det.detect(features_of(v1), features_of(v2));
  EXPECT_GT(result.score, 0.7);
  EXPECT_FALSE(result.is_attack);
}

TEST(DetectorTest, ThresholdBoundaryBehaviour) {
  CorrelationDetector det(0.5);
  EXPECT_DOUBLE_EQ(det.threshold(), 0.5);
  dsp::Spectrogram a(2, 3, 1.0, 0.1), b(2, 3, 1.0, 0.1);
  // Zero-variance spectrograms -> score 0 -> attack at any threshold > 0.
  EXPECT_TRUE(det.detect(a, b).is_attack);
}

TEST(DetectorTest, RejectsInvalidThreshold) {
  EXPECT_THROW(CorrelationDetector(1.5), vibguard::InvalidArgument);
  EXPECT_THROW(CorrelationDetector(-1.5), vibguard::InvalidArgument);
}

TEST(DetectorTest, ScoreSymmetry) {
  Rng rng(4);
  const auto a = features_of(dsp::white_noise(3.0, 200.0, 0.01, rng));
  const auto b = features_of(dsp::white_noise(3.0, 200.0, 0.01, rng));
  CorrelationDetector det;
  EXPECT_NEAR(det.score(a, b), det.score(b, a), 1e-12);
}

}  // namespace
}  // namespace vibguard::core
