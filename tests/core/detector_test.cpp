#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/vibration_features.hpp"
#include "dsp/generate.hpp"

namespace vibguard::core {
namespace {

dsp::Spectrogram features_of(const Signal& vib) {
  return VibrationFeatureExtractor{}.extract(vib);
}

TEST(DetectorTest, IdenticalFeaturesScoreOne) {
  Rng rng(1);
  const Signal vib = dsp::white_noise(2.0, 200.0, 0.01, rng);
  const auto f = features_of(vib);
  CorrelationDetector det;
  EXPECT_NEAR(det.score(f, f), 1.0, 1e-9);
  EXPECT_FALSE(det.detect(f, f).is_attack);
}

TEST(DetectorTest, IndependentNoiseDetectedAsAttack) {
  Rng rng(2);
  const Signal v1 = dsp::white_noise(5.0, 200.0, 0.01, rng);
  const Signal v2 = dsp::white_noise(5.0, 200.0, 0.01, rng);
  CorrelationDetector det(0.35);
  const auto result = det.detect(features_of(v1), features_of(v2));
  EXPECT_LT(result.score, 0.35);
  EXPECT_TRUE(result.is_attack);
}

TEST(DetectorTest, SharedSignalWithSmallNoiseAccepted) {
  Rng rng(3);
  const Signal base = dsp::tone(30.0, 5.0, 200.0, 0.05);
  Signal v1 = base, v2 = base;
  for (std::size_t i = 0; i < v1.size(); ++i) {
    v1[i] += rng.gaussian(0.0, 0.002);
    v2[i] += rng.gaussian(0.0, 0.002);
  }
  CorrelationDetector det(0.35);
  const auto result = det.detect(features_of(v1), features_of(v2));
  EXPECT_GT(result.score, 0.7);
  EXPECT_FALSE(result.is_attack);
}

TEST(DetectorTest, ThresholdBoundaryBehaviour) {
  CorrelationDetector det(0.5);
  EXPECT_DOUBLE_EQ(det.threshold(), 0.5);
  dsp::Spectrogram a(2, 3, 1.0, 0.1), b(2, 3, 1.0, 0.1);
  // Zero-variance spectrograms -> sentinel score -> fails closed as an
  // attack at any threshold.
  EXPECT_TRUE(det.detect(a, b).is_attack);
}

TEST(DetectorTest, DegenerateFeaturesReturnSentinel) {
  CorrelationDetector det;
  // Zero variance: every cell identical.
  dsp::Spectrogram flat_a(4, 3, 1.0, 0.1), flat_b(4, 3, 1.0, 0.1);
  for (double& v : flat_a.values()) v = 0.7;
  for (double& v : flat_b.values()) v = 0.7;
  EXPECT_EQ(det.score(flat_a, flat_b), kIndeterminateScore);

  // Empty overlap: no frames at all.
  dsp::Spectrogram empty(0, 3, 1.0, 0.1);
  EXPECT_EQ(det.score(empty, empty), kIndeterminateScore);

  // NaN contamination: one poisoned cell corrupts the accumulators.
  Rng rng(5);
  dsp::Spectrogram noisy_a(8, 4, 1.0, 0.1), noisy_b(8, 4, 1.0, 0.1);
  for (double& v : noisy_a.values()) v = rng.gaussian();
  for (double& v : noisy_b.values()) v = rng.gaussian();
  noisy_a.values()[5] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(det.score(noisy_a, noisy_b), kIndeterminateScore);

  // All sentinel results fail closed under detect().
  EXPECT_TRUE(det.detect(flat_a, flat_b).is_attack);
  EXPECT_TRUE(det.detect(noisy_a, noisy_b).is_attack);
}

TEST(DetectorTest, IndeterminateScorePredicate) {
  EXPECT_TRUE(is_indeterminate_score(kIndeterminateScore));
  EXPECT_TRUE(
      is_indeterminate_score(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(
      is_indeterminate_score(std::numeric_limits<double>::infinity()));
  // The sentinel sits strictly below every valid correlation and every
  // valid threshold, so naive comparisons fail closed.
  EXPECT_LT(kIndeterminateScore, -1.0);
  // Real correlations are never flagged — including values rounding just
  // past the mathematical range (deliberately not a range check).
  EXPECT_FALSE(is_indeterminate_score(0.0));
  EXPECT_FALSE(is_indeterminate_score(1.0));
  EXPECT_FALSE(is_indeterminate_score(-1.0));
  EXPECT_FALSE(is_indeterminate_score(1.0 + 1e-12));
  EXPECT_FALSE(is_indeterminate_score(-1.0 - 1e-12));
}

TEST(DetectorTest, RejectsInvalidThreshold) {
  EXPECT_THROW(CorrelationDetector(1.5), vibguard::InvalidArgument);
  EXPECT_THROW(CorrelationDetector(-1.5), vibguard::InvalidArgument);
}

TEST(DetectorTest, ScoreSymmetry) {
  Rng rng(4);
  const auto a = features_of(dsp::white_noise(3.0, 200.0, 0.01, rng));
  const auto b = features_of(dsp::white_noise(3.0, 200.0, 0.01, rng));
  CorrelationDetector det;
  EXPECT_NEAR(det.score(a, b), det.score(b, a), 1e-12);
}

}  // namespace
}  // namespace vibguard::core
