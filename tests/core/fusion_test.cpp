#include "core/fusion.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

struct Fixture {
  eval::ScenarioSimulator sim{eval::ScenarioConfig{}, 21};
  speech::SpeakerProfile user;
  speech::SpeakerProfile adversary;

  Fixture() {
    Rng rng(22);
    user = speech::sample_speaker(speech::Sex::kFemale, rng);
    adversary = speech::sample_speaker(speech::Sex::kMale, rng);
  }
};

TEST(FusionTest, WeightOneEqualsVibrationScore) {
  Fixture fx;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), fx.user);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());

  FusionConfig cfg;
  cfg.vibration_weight = 1.0;
  FusionScorer fusion(cfg);
  DefenseSystem vibration{DefenseConfig{}};
  Rng r1(1), r2(1);
  // Same rng stream: the vibration path consumes identical draws first.
  const double fused = fusion.score(t.va, t.wearable, &seg, r1);
  const double direct = vibration.score(t.va, t.wearable, &seg, r2);
  EXPECT_DOUBLE_EQ(fused, direct);
}

TEST(FusionTest, ScoresBlendBetweenComponents) {
  Fixture fx;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("play some music"), fx.user);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  FusionConfig half;
  half.vibration_weight = 0.5;
  Rng r(2);
  const double s = FusionScorer(half).score(t.va, t.wearable, &seg, r);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

TEST(FusionTest, SeparatesLegitimateFromAttack) {
  Fixture fx;
  FusionScorer fusion;
  const auto legit = fx.sim.legitimate_trial(
      speech::command_by_text("unlock the front door"), fx.user);
  const auto attack = fx.sim.attack_trial(
      attacks::AttackType::kHiddenVoice,
      speech::command_by_text("unlock the front door"), fx.user,
      fx.adversary);
  OracleSegmenter seg_l(legit.alignment, eval::reference_sensitive_set());
  OracleSegmenter seg_a(attack.alignment, eval::reference_sensitive_set());
  Rng r1(3), r2(4);
  const auto ok = fusion.detect(legit.va, legit.wearable, &seg_l, r1);
  const auto bad = fusion.detect(attack.va, attack.wearable, &seg_a, r2);
  EXPECT_FALSE(ok.is_attack);
  EXPECT_TRUE(bad.is_attack);
  EXPECT_GT(ok.score, bad.score);
}

TEST(FusionTest, RejectsBadWeight) {
  FusionConfig cfg;
  cfg.vibration_weight = 1.5;
  EXPECT_THROW(FusionScorer{cfg}, vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::core
