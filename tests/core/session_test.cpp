#include "core/session.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

struct Fixture {
  eval::ScenarioSimulator sim{eval::ScenarioConfig{}, 9};
  speech::SpeakerProfile user;
  speech::SpeakerProfile adversary;

  Fixture() {
    Rng rng(10);
    user = speech::sample_speaker(speech::Sex::kMale, rng);
    adversary = speech::sample_speaker(speech::Sex::kFemale, rng);
  }
};

TEST(SessionTest, VerdictNames) {
  EXPECT_STREQ(verdict_name(Verdict::kAccepted), "accepted");
  EXPECT_STREQ(verdict_name(Verdict::kAttackDetected), "attack_detected");
  EXPECT_STREQ(verdict_name(Verdict::kWearableAbsent), "wearable_absent");
  EXPECT_STREQ(verdict_name(Verdict::kIndeterminate), "indeterminate");
}

TEST(SessionTest, AcceptsLegitimateCommand) {
  Fixture fx;
  DefenseSession session;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), fx.user);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(1);
  const auto event = session.process("lights on", t.va, t.wearable, &seg, rng);
  EXPECT_EQ(event.verdict, Verdict::kAccepted);
  EXPECT_GT(event.score, 0.5);
  EXPECT_EQ(session.stats().accepted, 1u);
}

TEST(SessionTest, BlocksThruBarrierAttack) {
  Fixture fx;
  DefenseSession session;
  // Hidden-voice attacks are the most reliably detected class; replay
  // borderline cases are covered statistically by the eval tests.
  const auto t = fx.sim.attack_trial(
      attacks::AttackType::kHiddenVoice,
      speech::command_by_text("unlock the front door"), fx.user,
      fx.adversary);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(2);
  const auto event = session.process("unlock", t.va, t.wearable, &seg, rng);
  EXPECT_EQ(event.verdict, Verdict::kAttackDetected);
  EXPECT_EQ(session.stats().attacks_detected, 1u);
}

TEST(SessionTest, RejectsWhenWearableAbsent) {
  Fixture fx;
  DefenseSession session;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  Rng rng(3);
  const auto event =
      session.process("stop", t.va, std::nullopt, nullptr, rng);
  EXPECT_EQ(event.verdict, Verdict::kWearableAbsent);
  EXPECT_TRUE(std::isnan(event.score));
  EXPECT_EQ(session.stats().wearable_absent, 1u);
  EXPECT_EQ(session.stats().accepted, 0u);
}

TEST(SessionTest, AuditLogAccumulatesInOrder) {
  Fixture fx;
  DefenseSession session;
  Rng rng(4);
  const auto t1 = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  OracleSegmenter seg1(t1.alignment, eval::reference_sensitive_set());
  session.process("first", t1.va, t1.wearable, &seg1, rng);
  session.process("second", t1.va, std::nullopt, nullptr, rng);
  ASSERT_EQ(session.log().size(), 2u);
  EXPECT_EQ(session.log()[0].index, 0u);
  EXPECT_EQ(session.log()[0].label, "first");
  EXPECT_EQ(session.log()[1].label, "second");
  EXPECT_EQ(session.stats().processed, 2u);
}

TEST(SessionTest, ResetClearsState) {
  Fixture fx;
  DefenseSession session;
  Rng rng(5);
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  session.process("x", t.va, std::nullopt, nullptr, rng);
  session.reset();
  EXPECT_TRUE(session.log().empty());
  EXPECT_EQ(session.stats().processed, 0u);
}

TEST(SessionTest, PipelineStatsTrackScoredCommandsOnly) {
  Fixture fx;
  DefenseSession session;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), fx.user);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng r1(6), r2(7);
  session.process("scored", t.va, t.wearable, &seg, r1);
  session.process("absent", t.va, std::nullopt, nullptr, r2);
  // Wearable-absent commands are rejected without running the pipeline.
  EXPECT_EQ(session.pipeline_stats().commands, 1u);
  EXPECT_FALSE(session.pipeline_stats().stages.empty());
  session.reset();
  EXPECT_EQ(session.pipeline_stats().commands, 0u);
  EXPECT_TRUE(session.pipeline_stats().stages.empty());
}

TEST(SessionTest, ProcessBatchMatchesSequentialProcess) {
  Fixture fx;
  const auto legit = fx.sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), fx.user);
  const auto attack = fx.sim.attack_trial(
      attacks::AttackType::kHiddenVoice,
      speech::command_by_text("unlock the front door"), fx.user,
      fx.adversary);
  OracleSegmenter seg_l(legit.alignment, eval::reference_sensitive_set());
  OracleSegmenter seg_a(attack.alignment, eval::reference_sensitive_set());

  std::vector<SessionRequest> requests;
  requests.push_back(
      SessionRequest{"legit", &legit.va, &legit.wearable, &seg_l, Rng(21)});
  requests.push_back(
      SessionRequest{"absent", &legit.va, nullptr, nullptr, Rng(22)});
  requests.push_back(
      SessionRequest{"attack", &attack.va, &attack.wearable, &seg_a,
                     Rng(23)});

  DefenseSession batched;
  const auto events = batched.process_batch(requests);

  DefenseSession sequential;
  Rng r1(21), r2(22), r3(23);
  const auto e1 =
      sequential.process("legit", legit.va, legit.wearable, &seg_l, r1);
  const auto e2 =
      sequential.process("absent", legit.va, std::nullopt, nullptr, r2);
  const auto e3 =
      sequential.process("attack", attack.va, attack.wearable, &seg_a, r3);

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].verdict, e1.verdict);
  EXPECT_DOUBLE_EQ(events[0].score, e1.score);
  EXPECT_EQ(events[1].verdict, e2.verdict);
  EXPECT_TRUE(std::isnan(events[1].score));
  EXPECT_EQ(events[2].verdict, e3.verdict);
  EXPECT_DOUBLE_EQ(events[2].score, e3.score);

  // Audit log, running stats and pipeline aggregates match the sequential
  // path entry for entry.
  ASSERT_EQ(batched.log().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batched.log()[i].index, i);
    EXPECT_EQ(batched.log()[i].label, sequential.log()[i].label);
    EXPECT_EQ(batched.log()[i].verdict, sequential.log()[i].verdict);
  }
  EXPECT_EQ(batched.stats().processed, 3u);
  EXPECT_EQ(batched.stats().wearable_absent, 1u);
  EXPECT_EQ(batched.stats().accepted, sequential.stats().accepted);
  EXPECT_EQ(batched.stats().attacks_detected,
            sequential.stats().attacks_detected);
  EXPECT_EQ(batched.pipeline_stats().commands,
            sequential.pipeline_stats().commands);
}

TEST(SessionTest, IndeterminateVerdictOnUnscoreableCommand) {
  Fixture fx;
  DefenseSession session;
  EXPECT_EQ(session.policy().max_retries, 1u);
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  // A dead wearable channel is unscoreable on every attempt: the session
  // retries per policy, then settles on kIndeterminate (re-request the
  // command), never on a hostile verdict.
  const Signal dead = Signal::zeros(t.wearable.size(),
                                    t.wearable.sample_rate());
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(31);
  const auto event = session.process("dead wearable", t.va, dead, &seg, rng);
  EXPECT_EQ(event.verdict, Verdict::kIndeterminate);
  EXPECT_TRUE(std::isnan(event.score));
  EXPECT_EQ(event.note, "low_signal");
  EXPECT_EQ(event.attempts, 2u);  // 1 attempt + 1 retry
  EXPECT_EQ(session.stats().indeterminate, 1u);
  EXPECT_EQ(session.stats().retries, 1u);
  EXPECT_EQ(session.stats().accepted, 0u);
  EXPECT_EQ(session.stats().attacks_detected, 0u);
}

TEST(SessionTest, RetryPolicyControlsAttemptCount) {
  Fixture fx;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  const Signal dead = Signal::zeros(t.wearable.size(),
                                    t.wearable.sample_rate());
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  for (std::size_t retries : {std::size_t{0}, std::size_t{3}}) {
    DefenseSession session(DefenseConfig{}, SessionPolicy{retries});
    Rng rng(32);
    const auto event = session.process("dead", t.va, dead, &seg, rng);
    EXPECT_EQ(event.verdict, Verdict::kIndeterminate);
    EXPECT_EQ(event.attempts, retries + 1) << retries << " retries";
    EXPECT_EQ(session.stats().retries, retries);
  }
}

TEST(SessionTest, ErrorNoteNamesFailingStage) {
  Fixture fx;
  DefenseSession session;  // kFull mode needs a segmenter
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  Rng rng(33);
  const auto event =
      session.process("no segmenter", t.va, t.wearable, nullptr, rng);
  EXPECT_EQ(event.verdict, Verdict::kIndeterminate);
  EXPECT_TRUE(std::isnan(event.score));
  EXPECT_NE(event.note.find("error at stage precheck"), std::string::npos)
      << event.note;
  EXPECT_EQ(session.stats().indeterminate, 1u);
}

TEST(SessionTest, BatchMatchesSequentialWithIndeterminateRequests) {
  Fixture fx;
  const auto good = fx.sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), fx.user);
  OracleSegmenter seg(good.alignment, eval::reference_sensitive_set());
  const Signal dead = Signal::zeros(good.wearable.size(),
                                    good.wearable.sample_rate());

  std::vector<SessionRequest> requests;
  requests.push_back(
      SessionRequest{"good", &good.va, &good.wearable, &seg, Rng(41)});
  requests.push_back(
      SessionRequest{"dead", &good.va, &dead, &seg, Rng(42)});
  requests.push_back(
      SessionRequest{"good again", &good.va, &good.wearable, &seg, Rng(43)});

  DefenseSession batched;
  const auto events = batched.process_batch(requests);

  DefenseSession sequential;
  Rng r1(41), r2(42), r3(43);
  const auto e1 =
      sequential.process("good", good.va, good.wearable, &seg, r1);
  const auto e2 = sequential.process("dead", good.va, dead, &seg, r2);
  const auto e3 =
      sequential.process("good again", good.va, good.wearable, &seg, r3);

  ASSERT_EQ(events.size(), 3u);
  const std::vector<SessionEvent> expected = {e1, e2, e3};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].verdict, expected[i].verdict) << "event " << i;
    EXPECT_EQ(events[i].note, expected[i].note) << "event " << i;
    EXPECT_EQ(events[i].attempts, expected[i].attempts) << "event " << i;
    if (std::isnan(expected[i].score)) {
      EXPECT_TRUE(std::isnan(events[i].score)) << "event " << i;
    } else {
      EXPECT_DOUBLE_EQ(events[i].score, expected[i].score) << "event " << i;
    }
  }
  EXPECT_EQ(events[1].verdict, Verdict::kIndeterminate);
  EXPECT_EQ(batched.stats().indeterminate, sequential.stats().indeterminate);
  EXPECT_EQ(batched.stats().retries, sequential.stats().retries);
  EXPECT_EQ(batched.stats().accepted, sequential.stats().accepted);
}

TEST(SessionTest, ProcessBatchRequiresVaSignal) {
  DefenseSession session;
  std::vector<SessionRequest> requests;
  requests.push_back(SessionRequest{"bad", nullptr, nullptr, nullptr, Rng(1)});
  EXPECT_THROW(session.process_batch(requests), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::core
