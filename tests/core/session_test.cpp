#include "core/session.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

struct Fixture {
  eval::ScenarioSimulator sim{eval::ScenarioConfig{}, 9};
  speech::SpeakerProfile user;
  speech::SpeakerProfile adversary;

  Fixture() {
    Rng rng(10);
    user = speech::sample_speaker(speech::Sex::kMale, rng);
    adversary = speech::sample_speaker(speech::Sex::kFemale, rng);
  }
};

TEST(SessionTest, VerdictNames) {
  EXPECT_STREQ(verdict_name(Verdict::kAccepted), "accepted");
  EXPECT_STREQ(verdict_name(Verdict::kAttackDetected), "attack_detected");
  EXPECT_STREQ(verdict_name(Verdict::kWearableAbsent), "wearable_absent");
}

TEST(SessionTest, AcceptsLegitimateCommand) {
  Fixture fx;
  DefenseSession session;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), fx.user);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(1);
  const auto event = session.process("lights on", t.va, t.wearable, &seg, rng);
  EXPECT_EQ(event.verdict, Verdict::kAccepted);
  EXPECT_GT(event.score, 0.5);
  EXPECT_EQ(session.stats().accepted, 1u);
}

TEST(SessionTest, BlocksThruBarrierAttack) {
  Fixture fx;
  DefenseSession session;
  // Hidden-voice attacks are the most reliably detected class; replay
  // borderline cases are covered statistically by the eval tests.
  const auto t = fx.sim.attack_trial(
      attacks::AttackType::kHiddenVoice,
      speech::command_by_text("unlock the front door"), fx.user,
      fx.adversary);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(2);
  const auto event = session.process("unlock", t.va, t.wearable, &seg, rng);
  EXPECT_EQ(event.verdict, Verdict::kAttackDetected);
  EXPECT_EQ(session.stats().attacks_detected, 1u);
}

TEST(SessionTest, RejectsWhenWearableAbsent) {
  Fixture fx;
  DefenseSession session;
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  Rng rng(3);
  const auto event =
      session.process("stop", t.va, std::nullopt, nullptr, rng);
  EXPECT_EQ(event.verdict, Verdict::kWearableAbsent);
  EXPECT_TRUE(std::isnan(event.score));
  EXPECT_EQ(session.stats().wearable_absent, 1u);
  EXPECT_EQ(session.stats().accepted, 0u);
}

TEST(SessionTest, AuditLogAccumulatesInOrder) {
  Fixture fx;
  DefenseSession session;
  Rng rng(4);
  const auto t1 = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  OracleSegmenter seg1(t1.alignment, eval::reference_sensitive_set());
  session.process("first", t1.va, t1.wearable, &seg1, rng);
  session.process("second", t1.va, std::nullopt, nullptr, rng);
  ASSERT_EQ(session.log().size(), 2u);
  EXPECT_EQ(session.log()[0].index, 0u);
  EXPECT_EQ(session.log()[0].label, "first");
  EXPECT_EQ(session.log()[1].label, "second");
  EXPECT_EQ(session.stats().processed, 2u);
}

TEST(SessionTest, ResetClearsState) {
  Fixture fx;
  DefenseSession session;
  Rng rng(5);
  const auto t = fx.sim.legitimate_trial(
      speech::command_by_text("stop"), fx.user);
  session.process("x", t.va, std::nullopt, nullptr, rng);
  session.reset();
  EXPECT_TRUE(session.log().empty());
  EXPECT_EQ(session.stats().processed, 0u);
}

}  // namespace
}  // namespace vibguard::core
