#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "attacks/attack.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

eval::TrialRecordings legit_trial(std::uint64_t seed) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
  Rng rng(seed + 1);
  const auto spk = speech::sample_speaker(speech::Sex::kMale, rng);
  return sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), spk);
}

eval::TrialRecordings attack_trial(std::uint64_t seed) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
  Rng rng(seed + 1);
  const auto victim = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto adv = speech::sample_speaker(speech::Sex::kFemale, rng);
  return sim.attack_trial(attacks::AttackType::kReplay,
                          speech::command_by_text("turn on the lights"),
                          victim, adv);
}

TEST(PipelineTest, ModeNames) {
  EXPECT_STREQ(mode_name(DefenseMode::kFull), "full");
  EXPECT_STREQ(mode_name(DefenseMode::kVibrationBaseline),
               "vibration_baseline");
  EXPECT_STREQ(mode_name(DefenseMode::kAudioBaseline), "audio_baseline");
}

TEST(PipelineTest, FullModeRequiresSegmenter) {
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kFull;
  DefenseSystem sys(cfg);
  const auto t = legit_trial(1);
  Rng rng(2);
  EXPECT_THROW(sys.score(t.va, t.wearable, nullptr, rng),
               vibguard::InvalidArgument);
}

TEST(PipelineTest, LegitimateCommandScoresHigh) {
  DefenseConfig cfg;
  DefenseSystem sys(cfg);
  const auto t = legit_trial(3);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(4);
  PipelineTrace trace;
  const double s = sys.score(t.va, t.wearable, &seg, rng, &trace);
  EXPECT_GT(s, 0.6);
  EXPECT_GT(trace.num_ranges, 0u);
  EXPECT_GT(trace.segment_seconds, 0.0);
}

TEST(PipelineTest, AttackScoresLowAndIsDetected) {
  DefenseConfig cfg;
  DefenseSystem sys(cfg);
  const auto t = attack_trial(5);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(6);
  const auto result = sys.detect(t.va, t.wearable, &seg, rng);
  EXPECT_LT(result.score, 0.6);
}

TEST(PipelineTest, SyncEstimateMatchesInjectedDelay) {
  DefenseConfig cfg;
  DefenseSystem sys(cfg);
  const auto t = legit_trial(7);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(8);
  PipelineTrace trace;
  sys.score(t.va, t.wearable, &seg, rng, &trace);
  EXPECT_NEAR(trace.estimated_delay_s, t.true_delay_s, 0.01);
}

TEST(PipelineTest, BaselineModesIgnoreSegmenter) {
  for (DefenseMode mode :
       {DefenseMode::kVibrationBaseline, DefenseMode::kAudioBaseline}) {
    DefenseConfig cfg;
    cfg.mode = mode;
    DefenseSystem sys(cfg);
    const auto t = legit_trial(9);
    Rng rng(10);
    EXPECT_NO_THROW(sys.score(t.va, t.wearable, nullptr, rng));
  }
}

TEST(PipelineTest, SeparationExistsInVibrationModes) {
  // Average over a few trials: legit must outscore attack in both vibration
  // modes (the core claim of the system).
  for (DefenseMode mode : {DefenseMode::kFull,
                           DefenseMode::kVibrationBaseline}) {
    DefenseConfig cfg;
    cfg.mode = mode;
    DefenseSystem sys(cfg);
    double legit_acc = 0.0, attack_acc = 0.0;
    for (std::uint64_t i = 0; i < 3; ++i) {
      const auto lt = legit_trial(20 + i);
      const auto at = attack_trial(30 + i);
      OracleSegmenter seg_l(lt.alignment, eval::reference_sensitive_set());
      OracleSegmenter seg_a(at.alignment, eval::reference_sensitive_set());
      Rng r1(40 + i), r2(50 + i);
      legit_acc += sys.score(lt.va, lt.wearable, &seg_l, r1);
      attack_acc += sys.score(at.va, at.wearable, &seg_a, r2);
    }
    EXPECT_GT(legit_acc, attack_acc + 0.5) << mode_name(mode);
  }
}

TEST(PipelineTest, ShortSegmentsFallBackToWholeCommand) {
  DefenseConfig cfg;
  cfg.min_segment_seconds = 100.0;  // force fallback
  DefenseSystem sys(cfg);
  const auto t = legit_trial(11);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng rng(12);
  PipelineTrace trace;
  sys.score(t.va, t.wearable, &seg, rng, &trace);
  // Fallback scores the full synchronized command.
  EXPECT_GT(trace.segment_seconds, 0.8);
}

TEST(PipelineTest, RejectsEmptyRecordings) {
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kVibrationBaseline;
  DefenseSystem sys(cfg);
  Rng rng(13);
  EXPECT_THROW(
      sys.score(Signal({}, 16000.0), Signal({1.0}, 16000.0), nullptr, rng),
      vibguard::InvalidArgument);
}

TEST(PipelineTest, WorkspaceReuseGivesBitIdenticalScores) {
  DefenseSystem sys{DefenseConfig{}};
  const auto t = legit_trial(16);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng r1(17);
  const double fresh = sys.score(t.va, t.wearable, &seg, r1);
  Workspace workspace;
  for (int pass = 0; pass < 3; ++pass) {
    Rng r(17);
    EXPECT_EQ(sys.score(t.va, t.wearable, &seg, r, workspace), fresh);
  }
}

TEST(PipelineTest, ScoreBatchMatchesSingleShotAtEveryThreadCount) {
  DefenseSystem sys{DefenseConfig{}};
  std::vector<eval::TrialRecordings> trials;
  std::vector<OracleSegmenter> segmenters;
  for (std::uint64_t i = 0; i < 4; ++i) {
    trials.push_back(i % 2 == 0 ? legit_trial(80 + i) : attack_trial(80 + i));
    segmenters.emplace_back(trials.back().alignment,
                            eval::reference_sensitive_set());
  }
  std::vector<ScoreRequest> requests;
  std::vector<double> expected;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    requests.push_back(ScoreRequest{&trials[i].va, &trials[i].wearable,
                                    &segmenters[i], Rng(90 + i)});
    Rng rng(90 + i);
    expected.push_back(
        sys.score(trials[i].va, trials[i].wearable, &segmenters[i], rng));
  }

  // Serial batch through one workspace.
  Workspace workspace;
  std::vector<double> scores(requests.size());
  sys.score_batch(requests, scores, workspace);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(scores[i], expected[i]) << "serial trial " << i;
  }

  // Parallel batch with one warm workspace per worker, at several thread
  // counts: scheduling must never change a score.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<Workspace> workspaces(
        std::max<std::size_t>(1, pool.num_threads()));
    std::vector<double> parallel(requests.size(), 0.0);
    sys.score_batch(requests, parallel, pool, workspaces);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel[i], expected[i])
          << "trial " << i << " with " << threads << " threads";
    }
  }
}

TEST(PipelineTest, ScoreBatchCollectsStats) {
  DefenseSystem sys{DefenseConfig{}};
  const auto t = legit_trial(18);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  std::vector<ScoreRequest> requests(
      3, ScoreRequest{&t.va, &t.wearable, &seg, Rng(19)});
  Workspace workspace;
  std::vector<double> scores(requests.size());
  PipelineStats stats;
  sys.score_batch(requests, scores, workspace, nullptr, &stats);
  EXPECT_EQ(stats.commands, 3u);
  ASSERT_FALSE(stats.stages.empty());
  EXPECT_EQ(stats.stages.front().calls, 3u);
  // Identical requests (same rng seed) must score identically.
  EXPECT_DOUBLE_EQ(scores[0], scores[1]);
  EXPECT_DOUBLE_EQ(scores[1], scores[2]);
}

TEST(PipelineTest, TraceExposesFeatures) {
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kVibrationBaseline;
  DefenseSystem sys(cfg);
  const auto t = legit_trial(14);
  Rng rng(15);
  PipelineTrace trace;
  sys.score(t.va, t.wearable, nullptr, rng, &trace);
  EXPECT_GT(trace.features_va.frames(), 0u);
  EXPECT_EQ(trace.features_va.bins(), trace.features_wearable.bins());
}

}  // namespace
}  // namespace vibguard::core
