#include "core/quality.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::core {
namespace {

Signal tone_1s() { return dsp::tone(50.0, 1.0, 1000.0, 0.2); }

TEST(QualityTest, IssueNamesFormatting) {
  EXPECT_EQ(quality_issue_names(0), "none");
  EXPECT_EQ(quality_issue_names(kIssueClipping), "clipping");
  EXPECT_EQ(quality_issue_names(kIssueNonFinite | kIssueGaps),
            "non_finite+gaps");
  // Priority table order, not bit order.
  EXPECT_EQ(quality_issue_names(kIssueDcOffset | kIssueTooShort),
            "too_short+dc_offset");
}

TEST(QualityTest, CleanToneRaisesNoIssues) {
  const Signal s = tone_1s();
  const auto q = assess_channel(s, QualityConfig{});
  EXPECT_EQ(q.issues, 0u);
  EXPECT_EQ(q.samples, s.size());
  EXPECT_DOUBLE_EQ(q.duration_s, s.duration());
  EXPECT_NEAR(q.rms, 0.2 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(q.peak, 0.2, 1e-6);
  EXPECT_NEAR(q.dc_offset, 0.0, 1e-6);
  EXPECT_EQ(q.non_finite, 0u);
}

TEST(QualityTest, EmptyChannelIsTooShortAndDead) {
  const auto q = assess_channel(Signal({}, 1000.0), QualityConfig{});
  EXPECT_EQ(q.issues, kIssueTooShort | kIssueLowSignal);
  EXPECT_EQ(q.samples, 0u);
}

TEST(QualityTest, NonFiniteSamplesCountedAndFlagged) {
  Signal s = tone_1s();
  s[10] = std::numeric_limits<double>::quiet_NaN();
  s[20] = std::numeric_limits<double>::infinity();
  s[30] = -std::numeric_limits<double>::infinity();
  const auto q = assess_channel(s, QualityConfig{});
  EXPECT_EQ(q.non_finite, 3u);
  EXPECT_TRUE(q.issues & kIssueNonFinite);
  // The moments are still computed over the finite samples.
  EXPECT_GT(q.rms, 0.0);
  EXPECT_TRUE(std::isfinite(q.rms));
  EXPECT_TRUE(std::isfinite(q.peak));
}

TEST(QualityTest, ClippingCensusAgainstPeak) {
  // Square-ish wave: nearly every sample sits at the rails.
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i % 2 == 0) ? 0.5 : -0.5;
  const auto q = assess_channel(Signal(std::move(v), 1000.0), QualityConfig{});
  EXPECT_TRUE(q.issues & kIssueClipping);
  EXPECT_DOUBLE_EQ(q.clip_ratio, 1.0);
  // A clean tone spends only its crests near the peak.
  const auto clean = assess_channel(tone_1s(), QualityConfig{});
  EXPECT_LT(clean.clip_ratio, 0.20);
}

TEST(QualityTest, GapCensusCountsOnlyLongZeroRuns) {
  QualityConfig cfg;  // min_gap_s 0.005 -> 5 samples at 1 kHz
  std::vector<double> v(1000, 0.1);
  // One 400-sample gap (counts) and one 3-sample blip (does not).
  for (std::size_t i = 100; i < 500; ++i) v[i] = 0.0;
  for (std::size_t i = 700; i < 703; ++i) v[i] = 0.0;
  const auto q = assess_channel(Signal(std::move(v), 1000.0), cfg);
  EXPECT_TRUE(q.issues & kIssueGaps);
  EXPECT_DOUBLE_EQ(q.gap_ratio, 0.4);
  EXPECT_DOUBLE_EQ(q.longest_gap_s, 0.4);
}

TEST(QualityTest, DcOffsetFlaggedWhenMeanDominates) {
  Signal s = tone_1s();
  for (std::size_t i = 0; i < s.size(); ++i) s[i] += 0.5;
  const auto q = assess_channel(s, QualityConfig{});
  EXPECT_TRUE(q.issues & kIssueDcOffset);
  EXPECT_NEAR(q.dc_offset, 0.5, 1e-3);
}

TEST(QualityTest, StuckSensorFlaggedOnLongConstantRun) {
  Signal s = tone_1s();
  // Hold 40% of the capture at one nonzero reading.
  for (std::size_t i = 100; i < 500; ++i) s[i] = 0.123;
  const auto q = assess_channel(s, QualityConfig{});
  EXPECT_TRUE(q.issues & kIssueStuck);
  EXPECT_GE(q.stuck_ratio, 0.4);
  // A long run of exact zeros is a gap, not a stuck sensor.
  Signal gappy = tone_1s();
  for (std::size_t i = 0; i < 400; ++i) gappy[i] = 0.0;
  const auto gap = assess_channel(gappy, QualityConfig{});
  EXPECT_TRUE(gap.issues & kIssueGaps);
  EXPECT_FALSE(gap.issues & kIssueStuck);
}

TEST(QualityTest, DeadAndShortChannelsFlagged) {
  const auto dead =
      assess_channel(Signal::zeros(1000, 1000.0), QualityConfig{});
  EXPECT_TRUE(dead.issues & kIssueLowSignal);
  const auto brief = assess_channel(dsp::tone(50.0, 0.02, 1000.0, 0.2),
                                    QualityConfig{});
  EXPECT_TRUE(brief.issues & kIssueTooShort);
  EXPECT_FALSE(brief.issues & kIssueLowSignal);
}

TEST(QualityTest, FatalMasksPerGate) {
  EXPECT_EQ(fatal_issue_mask(QualityConfig::Gate::kOff), 0u);
  EXPECT_EQ(fatal_issue_mask(QualityConfig::Gate::kPermissive),
            kIssueNonFinite | kIssueTooShort | kIssueLowSignal);
  EXPECT_EQ(fatal_issue_mask(QualityConfig::Gate::kStrict),
            ~std::uint32_t{0});
}

TEST(QualityTest, GateModesControlScoreability) {
  QualityReport report;
  report.issues = kIssueClipping | kIssueDcOffset;
  QualityConfig cfg;

  cfg.gate = QualityConfig::Gate::kOff;
  apply_gate(cfg, report);
  EXPECT_TRUE(report.scoreable);
  EXPECT_STREQ(report.reason, "ok");

  cfg.gate = QualityConfig::Gate::kPermissive;
  apply_gate(cfg, report);
  EXPECT_TRUE(report.scoreable);  // cosmetic issues stay non-fatal

  cfg.gate = QualityConfig::Gate::kStrict;
  apply_gate(cfg, report);
  EXPECT_FALSE(report.scoreable);
  EXPECT_EQ(report.fatal, report.issues);
  EXPECT_STREQ(report.reason, "clipping");  // priority order
}

TEST(QualityTest, ReasonFollowsPriorityOrder) {
  QualityReport report;
  report.issues = kIssueNonFinite | kIssueClipping | kIssueGaps;
  QualityConfig cfg;
  cfg.gate = QualityConfig::Gate::kStrict;
  apply_gate(cfg, report);
  EXPECT_STREQ(report.reason, "non_finite_samples");
}

TEST(QualityTest, AssessPairUnionsChannelIssues) {
  Signal bad_va = tone_1s();
  bad_va[0] = std::numeric_limits<double>::quiet_NaN();
  const Signal dead_wear = Signal::zeros(1000, 200.0);
  QualityReport report;
  assess_pair(bad_va, dead_wear, QualityConfig{}, report);
  EXPECT_TRUE(report.va.issues & kIssueNonFinite);
  EXPECT_TRUE(report.wearable.issues & kIssueLowSignal);
  EXPECT_EQ(report.issues, report.va.issues | report.wearable.issues);
  EXPECT_FALSE(report.scoreable);
  // non_finite outranks low_signal in the reason table.
  EXPECT_STREQ(report.reason, "non_finite_samples");
}

TEST(QualityTest, AssessmentDoesNotMutateInput) {
  const Signal original = tone_1s();
  Signal copy = original;
  (void)assess_channel(copy, QualityConfig{});
  ASSERT_EQ(copy.size(), original.size());
  for (std::size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy[i], original[i]) << "sample " << i;
  }
}

TEST(QualityTest, AssessmentIsDeterministic) {
  const Signal s = tone_1s();
  const auto a = assess_channel(s, QualityConfig{});
  const auto b = assess_channel(s, QualityConfig{});
  EXPECT_EQ(a.issues, b.issues);
  EXPECT_EQ(a.rms, b.rms);
  EXPECT_EQ(a.clip_ratio, b.clip_ratio);
  EXPECT_EQ(a.gap_ratio, b.gap_ratio);
}

TEST(QualityTest, ReportClearAndSummary) {
  QualityReport report;
  assess_pair(Signal({}, 1000.0), Signal({}, 200.0), QualityConfig{}, report);
  EXPECT_FALSE(report.scoreable);
  EXPECT_NE(report.summary().find("too_short"), std::string::npos);

  report.clear();
  EXPECT_TRUE(report.scoreable);
  EXPECT_EQ(report.issues, 0u);
  EXPECT_EQ(report.fatal, 0u);
  EXPECT_STREQ(report.reason, "ok");
  EXPECT_NE(report.summary().find("scoreable"), std::string::npos);
}

}  // namespace
}  // namespace vibguard::core
