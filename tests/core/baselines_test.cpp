#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include "acoustics/barrier.hpp"
#include "acoustics/propagation.hpp"
#include "common/db.hpp"
#include "common/error.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard::core {
namespace {

TEST(WearIdTest, CloseSpeechVerifies) {
  // The user speaks 25 cm from the wearable: direct vibration is strong and
  // consistent with the VA recording.
  WearIdVerifier verifier;
  speech::UtteranceBuilder builder;
  Rng rng(1);
  const auto spk = speech::sample_speaker(speech::Sex::kMale, rng);
  auto utt = builder.build(speech::command_by_text("turn on the lights"),
                           spk, rng);
  Signal source = utt.audio.scaled_to_rms(spl_to_rms(72.0));
  const Signal at_wearable = acoustics::propagate(source, 0.25);
  const Signal at_va = acoustics::propagate(source, 2.0);
  Rng r(2);
  EXPECT_GT(verifier.score(at_wearable, at_va, r), 0.4);
}

TEST(WearIdTest, DistantSpeechFailsToVerify) {
  // WearID's documented limitation (paper Sec. VIII): beyond ~30 cm the
  // airborne sound cannot shake the accelerometer, so verification fails
  // even for the legitimate user.
  WearIdVerifier verifier;
  speech::UtteranceBuilder builder;
  Rng rng(3);
  const auto spk = speech::sample_speaker(speech::Sex::kFemale, rng);
  auto utt = builder.build(speech::command_by_text("turn on the lights"),
                           spk, rng);
  Signal source = utt.audio.scaled_to_rms(spl_to_rms(70.0));
  const Signal at_wearable = acoustics::propagate(source, 2.5);
  const Signal at_va = acoustics::propagate(source, 2.0);
  Rng r_near(4), r_far(4);
  const Signal near_field = acoustics::propagate(source, 0.25);
  const double close_score = verifier.score(near_field, at_va, r_near);
  const double far_score = verifier.score(at_wearable, at_va, r_far);
  EXPECT_LT(far_score, close_score);
}

TEST(TwoMicTest, ExpectedGeometryScoresHigh) {
  TwoMicVerifier verifier;
  // Wearable 14 dB louder than VA -> matches the expected user geometry.
  Signal wearable({0.5, -0.5, 0.5, -0.5}, 16000.0);
  Signal va = wearable;
  va.scale(db_to_amplitude(-14.0));
  EXPECT_GT(verifier.score(wearable, va), 0.95);
}

TEST(TwoMicTest, EqualLevelsScoreLow) {
  // Thru-barrier attack: both devices hear roughly the same level.
  TwoMicVerifier verifier;
  Signal a({0.5, -0.5, 0.5, -0.5}, 16000.0);
  EXPECT_LT(verifier.score(a, a), 0.1);
}

TEST(TwoMicTest, FooledByGeometryMimicry) {
  // An attacker much closer to the wearable than to the VA reproduces the
  // expected level ratio — 2MA's structural weakness.
  TwoMicVerifier verifier;
  Signal wearable({0.5, -0.5, 0.5, -0.5}, 16000.0);
  Signal va = wearable;
  va.scale(db_to_amplitude(-14.0));  // attacker-side geometry mimicry
  EXPECT_GT(verifier.score(wearable, va), 0.9);
}

TEST(TwoMicTest, SilenceScoresZero) {
  TwoMicVerifier verifier;
  const Signal silence = Signal::zeros(16, 16000.0);
  const Signal speech({0.1, -0.1}, 16000.0);
  EXPECT_DOUBLE_EQ(verifier.score(silence, speech), 0.0);
}

TEST(TwoMicTest, RejectsBadTolerance) {
  TwoMicVerifier::Config cfg;
  cfg.tolerance_db = 0.0;
  EXPECT_THROW(TwoMicVerifier{cfg}, vibguard::InvalidArgument);
}

TEST(ThresholdCalibratorTest, PicksBelowScoreMass) {
  ThresholdCalibrator cal(0.05, 0.05);
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(0.7 + 0.002 * i);
  const double theta = cal.calibrate(scores);
  EXPECT_LT(theta, 0.71);
  EXPECT_GT(theta, 0.55);
}

TEST(ThresholdCalibratorTest, RejectsTooFewScores) {
  ThresholdCalibrator cal;
  EXPECT_THROW(cal.calibrate({0.5, 0.6}), vibguard::InvalidArgument);
}

TEST(ThresholdCalibratorTest, RejectsBadQuantile) {
  EXPECT_THROW(ThresholdCalibrator(0.0, 0.0), vibguard::InvalidArgument);
  EXPECT_THROW(ThresholdCalibrator(1.0, 0.0), vibguard::InvalidArgument);
  EXPECT_THROW(ThresholdCalibrator(0.5, -0.1), vibguard::InvalidArgument);
}

TEST(ThresholdCalibratorTest, CalibratedThresholdWorksInPipeline) {
  // Enrollment: legit-only scores from the simulator; the calibrated
  // threshold should then separate a fresh attack.
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 5);
  Rng rng(6);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto adversary = speech::sample_speaker(speech::Sex::kFemale, rng);
  DefenseSystem system{DefenseConfig{}};

  std::vector<double> enroll;
  const auto lexicon = speech::command_lexicon();
  for (int i = 0; i < 8; ++i) {
    const auto t = sim.legitimate_trial(lexicon[i], user);
    OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
    Rng r(100 + i);
    enroll.push_back(system.score(t.va, t.wearable, &seg, r));
  }
  const double theta = ThresholdCalibrator(0.1, 0.05).calibrate(enroll);
  EXPECT_GT(theta, 0.2);
  EXPECT_LT(theta, 0.9);

  const auto attack = sim.attack_trial(attacks::AttackType::kReplay,
                                       lexicon[0], user, adversary);
  OracleSegmenter seg(attack.alignment, eval::reference_sensitive_set());
  Rng r(200);
  EXPECT_LT(system.score(attack.va, attack.wearable, &seg, r), theta);
}

}  // namespace
}  // namespace vibguard::core
