#include "core/vibration_features.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::core {
namespace {

Signal vibration_with_tone(double f, double amp, double duration) {
  return dsp::tone(f, duration, 200.0, amp);
}

TEST(VibrationFeaturesTest, OutputNormalizedToUnitMax) {
  VibrationFeatureExtractor ex;
  Rng rng(1);
  Signal vib = dsp::white_noise(2.0, 200.0, 0.01, rng);
  const auto spec = ex.extract(vib);
  EXPECT_NEAR(spec.max_value(), 1.0, 1e-9);
}

TEST(VibrationFeaturesTest, CropRemovesSub5HzBins) {
  VibrationFeatureExtractor ex;
  const auto spec = ex.extract(vibration_with_tone(30.0, 0.01, 2.0));
  // 33 raw bins at 3.125 Hz spacing; bins 0 and 1 (0, 3.125 Hz) cropped.
  EXPECT_EQ(spec.bins(), 31u);
}

TEST(VibrationFeaturesTest, BodyMotionRemoved) {
  // A 1 Hz body-motion component must not dominate the features.
  VibrationFeatureExtractor ex;
  Signal vib = vibration_with_tone(40.0, 0.005, 3.0);
  const Signal motion = vibration_with_tone(1.0, 0.1, 3.0);
  for (std::size_t i = 0; i < vib.size(); ++i) vib[i] += motion[i];
  const auto spec = ex.extract(vib);
  // Strongest bin should be the 40 Hz tone, not residual body motion.
  // 40 Hz -> raw bin 12.8 -> cropped bin index ~10-11.
  std::size_t best = 0;
  double best_v = -1.0;
  for (std::size_t b = 0; b < spec.bins(); ++b) {
    double col = 0.0;
    for (std::size_t f = 0; f < spec.frames(); ++f) col += spec.at(f, b);
    if (col > best_v) {
      best_v = col;
      best = b;
    }
  }
  EXPECT_NEAR(static_cast<double>(best), 11.0, 2.0);
}

TEST(VibrationFeaturesTest, DistanceInvarianceViaNormalization) {
  VibrationFeatureExtractor ex;
  Signal near = vibration_with_tone(35.0, 0.1, 2.0);
  Signal far = vibration_with_tone(35.0, 0.001, 2.0);
  const auto a = ex.extract(near);
  const auto b = ex.extract(far);
  ASSERT_EQ(a.frames(), b.frames());
  for (std::size_t f = 0; f < a.frames(); ++f) {
    for (std::size_t k = 0; k < a.bins(); ++k) {
      EXPECT_NEAR(a.at(f, k), b.at(f, k), 1e-6);
    }
  }
}

TEST(VibrationFeaturesTest, ConfigurableWithoutNormalization) {
  VibrationFeatureConfig cfg;
  cfg.normalize = false;
  VibrationFeatureExtractor ex(cfg);
  const auto spec = ex.extract(vibration_with_tone(30.0, 0.01, 2.0));
  EXPECT_LT(spec.max_value(), 1.0);  // raw power of a 0.01-amplitude tone
}

TEST(VibrationFeaturesTest, ShortVibrationStillProducesOneFrame) {
  VibrationFeatureExtractor ex;
  const auto spec = ex.extract(vibration_with_tone(30.0, 0.01, 0.1));
  EXPECT_EQ(spec.frames(), 1u);
}

TEST(VibrationFeaturesTest, PaperParametersAreDefaults) {
  VibrationFeatureConfig cfg;
  EXPECT_EQ(cfg.window_size, 64u);   // 64-point window == FFT (Sec. VI-B)
  EXPECT_DOUBLE_EQ(cfg.crop_below_hz, 5.0);  // 0-5 Hz artifact crop
  EXPECT_TRUE(cfg.normalize);        // max-normalization (Sec. VI-C)
}

}  // namespace
}  // namespace vibguard::core
