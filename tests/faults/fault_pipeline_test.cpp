// Graceful-degradation contract of the quality-aware scoring API: corrupted
// captures end as structured outcomes (never exceptions), bad trials cannot
// poison batch neighbours, and healthy trials stay bit-identical to the
// plain scoring path at any thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"
#include "faults/fault.hpp"
#include "faults/injectors.hpp"

namespace vibguard::core {
namespace {

eval::TrialRecordings legit_trial(std::uint64_t seed) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
  Rng rng(seed + 1);
  const auto spk = speech::sample_speaker(speech::Sex::kMale, rng);
  return sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), spk);
}

TEST(FaultPipelineTest, TryScoreHealthyMatchesPlainScore) {
  DefenseSystem sys{DefenseConfig{}};
  const auto t = legit_trial(201);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Rng r1(202);
  const double plain = sys.score(t.va, t.wearable, &seg, r1);

  Workspace workspace;
  Rng r2(202);
  const auto outcome = sys.try_score(t.va, t.wearable, &seg, r2, workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kOk);
  EXPECT_TRUE(outcome.ok());
  EXPECT_DOUBLE_EQ(outcome.score, plain);
  EXPECT_STREQ(outcome.reason, "");
  EXPECT_TRUE(outcome.error.empty());
  EXPECT_TRUE(outcome.quality.scoreable);
}

TEST(FaultPipelineTest, EmptyInputIsIndeterminateNotAnException) {
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kVibrationBaseline;
  DefenseSystem sys(cfg);
  Workspace workspace;
  Rng rng(203);
  const auto outcome = sys.try_score(Signal({}, 16000.0),
                                     Signal({1.0}, 200.0), nullptr, rng,
                                     workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kIndeterminate);
  EXPECT_STREQ(outcome.reason, "empty_input");
  EXPECT_TRUE(is_indeterminate_score(outcome.score));
  EXPECT_FALSE(outcome.quality.scoreable);
}

TEST(FaultPipelineTest, NonFiniteContaminationIsGated) {
  DefenseSystem sys{DefenseConfig{}};
  const auto t = legit_trial(204);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Signal va = t.va;
  Rng fault_rng(1);
  faults::NonFiniteInjector(0.01).apply(va, fault_rng);

  Workspace workspace;
  Rng rng(205);
  const auto outcome = sys.try_score(va, t.wearable, &seg, rng, workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kIndeterminate);
  EXPECT_STREQ(outcome.reason, "non_finite_samples");
  EXPECT_EQ(outcome.score, kIndeterminateScore);
  EXPECT_GT(outcome.quality.va.non_finite, 0u);
}

TEST(FaultPipelineTest, TruncatedCaptureIsTooShort) {
  DefenseSystem sys{DefenseConfig{}};
  const auto t = legit_trial(206);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  const Signal va = t.va.slice(0, static_cast<std::size_t>(
                                      0.01 * t.va.sample_rate()));
  Workspace workspace;
  Rng rng(207);
  const auto outcome = sys.try_score(va, t.wearable, &seg, rng, workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kIndeterminate);
  EXPECT_STREQ(outcome.reason, "too_short");
}

TEST(FaultPipelineTest, DeadChannelIsLowSignal) {
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kVibrationBaseline;
  DefenseSystem sys(cfg);
  const auto t = legit_trial(208);
  const Signal dead = Signal::zeros(t.wearable.size(),
                                    t.wearable.sample_rate());
  Workspace workspace;
  Rng rng(209);
  const auto outcome = sys.try_score(t.va, dead, nullptr, rng, workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kIndeterminate);
  EXPECT_STREQ(outcome.reason, "low_signal");
}

TEST(FaultPipelineTest, DegenerateFeaturesReportedWhenGateIsOff) {
  // With the gate off, silence flows through the whole pipeline; the
  // zero-variance spectrograms make the correlation degenerate, and
  // try_score still reports a structured indeterminate outcome instead of
  // a garbage score. The audio baseline correlates the raw spectrograms
  // directly (no capture-noise stage), so silence stays exactly silent.
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kAudioBaseline;
  cfg.quality.gate = QualityConfig::Gate::kOff;
  DefenseSystem sys(cfg);
  const auto t = legit_trial(210);
  const Signal dead_va = Signal::zeros(t.va.size(), t.va.sample_rate());
  const Signal dead_wear = Signal::zeros(t.wearable.size(),
                                         t.wearable.sample_rate());
  Workspace workspace;
  Rng rng(211);
  const auto outcome =
      sys.try_score(dead_va, dead_wear, nullptr, rng, workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kIndeterminate);
  EXPECT_STREQ(outcome.reason, "degenerate_features");
  // The gate was off, so the report flags the issue without being fatal.
  EXPECT_TRUE(outcome.quality.scoreable);
  EXPECT_TRUE(outcome.quality.issues & kIssueLowSignal);
}

TEST(FaultPipelineTest, StageErrorsAreCapturedPerTrial) {
  DefenseSystem sys{DefenseConfig{}};  // kFull requires a segmenter
  const auto t = legit_trial(212);
  Workspace workspace;
  Rng rng(213);
  const auto outcome =
      sys.try_score(t.va, t.wearable, nullptr, rng, workspace);
  EXPECT_EQ(outcome.status, ScoreStatus::kError);
  EXPECT_FALSE(outcome.ok());
  EXPECT_STREQ(outcome.reason, "precheck");
  EXPECT_FALSE(outcome.error.empty());
  EXPECT_TRUE(is_indeterminate_score(outcome.score));
}

TEST(FaultPipelineTest, OutcomeBatchIsolatesBadTrialsAtEveryThreadCount) {
  DefenseSystem sys{DefenseConfig{}};
  const auto healthy_a = legit_trial(214);
  const auto healthy_b = legit_trial(215);
  OracleSegmenter seg_a(healthy_a.alignment, eval::reference_sensitive_set());
  OracleSegmenter seg_b(healthy_b.alignment, eval::reference_sensitive_set());

  Signal poisoned = healthy_a.va;
  Rng fault_rng(2);
  faults::NonFiniteInjector(0.01).apply(poisoned, fault_rng);
  const Signal empty({}, 16000.0);

  std::vector<ScoreRequest> requests;
  requests.push_back(ScoreRequest{&healthy_a.va, &healthy_a.wearable, &seg_a,
                                  Rng(301)});
  requests.push_back(ScoreRequest{&poisoned, &healthy_a.wearable, &seg_a,
                                  Rng(302)});
  requests.push_back(ScoreRequest{&healthy_b.va, &healthy_b.wearable, nullptr,
                                  Rng(303)});  // precheck error
  requests.push_back(ScoreRequest{&empty, &healthy_a.wearable, &seg_a,
                                  Rng(304)});
  requests.push_back(ScoreRequest{&healthy_b.va, &healthy_b.wearable, &seg_b,
                                  Rng(305)});

  // Expected: one isolated try_score per request.
  std::vector<ScoreOutcome> expected;
  for (const ScoreRequest& req : requests) {
    Workspace workspace;
    Rng rng = req.rng;
    expected.push_back(sys.try_score(*req.va, *req.wearable, req.segmenter,
                                     rng, workspace));
  }
  EXPECT_EQ(expected[0].status, ScoreStatus::kOk);
  EXPECT_EQ(expected[1].status, ScoreStatus::kIndeterminate);
  EXPECT_EQ(expected[2].status, ScoreStatus::kError);
  EXPECT_EQ(expected[3].status, ScoreStatus::kIndeterminate);
  EXPECT_EQ(expected[4].status, ScoreStatus::kOk);

  auto expect_same = [&](const std::vector<ScoreOutcome>& got,
                         const std::string& label) {
    ASSERT_EQ(got.size(), expected.size()) << label;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].status, expected[i].status) << label << " trial " << i;
      EXPECT_STREQ(got[i].reason, expected[i].reason)
          << label << " trial " << i;
      EXPECT_EQ(got[i].error, expected[i].error) << label << " trial " << i;
      // Bit-identical scores, including the sentinel.
      EXPECT_DOUBLE_EQ(got[i].score, expected[i].score)
          << label << " trial " << i;
      EXPECT_EQ(got[i].quality.scoreable, expected[i].quality.scoreable)
          << label << " trial " << i;
    }
  };

  Workspace workspace;
  std::vector<ScoreOutcome> serial(requests.size());
  sys.score_batch(requests, serial, workspace);
  expect_same(serial, "serial");

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<Workspace> workspaces(
        std::max<std::size_t>(1, pool.num_threads()));
    std::vector<ScoreOutcome> parallel(requests.size());
    sys.score_batch(requests, parallel, pool, workspaces);
    expect_same(parallel, std::to_string(threads) + " threads");
  }
}

TEST(FaultPipelineTest, EveryFaultKindAtFullSeverityEndsStructured) {
  DefenseSystem sys{DefenseConfig{}};
  const auto t = legit_trial(216);
  OracleSegmenter seg(t.alignment, eval::reference_sensitive_set());
  Workspace workspace;
  for (faults::FaultKind kind : faults::all_fault_kinds()) {
    Signal va = t.va, wear = t.wearable;
    Rng fault_rng(400 + static_cast<std::uint64_t>(kind));
    const auto plan = faults::severity_plan(kind, 1.0);
    plan.apply(va, fault_rng);
    plan.apply(wear, fault_rng);
    Rng rng(217);
    ScoreOutcome outcome;
    ASSERT_NO_THROW(outcome = sys.try_score(va, wear, &seg, rng, workspace))
        << faults::fault_name(kind);
    // Whatever the corruption did, the outcome is one of the three
    // documented shapes with a finite-or-sentinel score.
    if (outcome.ok()) {
      EXPECT_TRUE(std::isfinite(outcome.score)) << faults::fault_name(kind);
    } else {
      EXPECT_TRUE(is_indeterminate_score(outcome.score))
          << faults::fault_name(kind);
    }
  }
}

TEST(FaultPipelineTest, RandomFaultComboSoakNeverThrows) {
  DefenseConfig cfg;
  cfg.mode = DefenseMode::kVibrationBaseline;  // widest reachable surface
  DefenseSystem sys(cfg);
  const auto t = legit_trial(218);
  Workspace workspace;
  Rng pick(219);
  const auto kinds = faults::all_fault_kinds();
  for (int iter = 0; iter < 12; ++iter) {
    // 1-3 random fault kinds at random severities, stacked in order on
    // both channels.
    Signal va = t.va, wear = t.wearable;
    Rng fault_rng(500 + static_cast<std::uint64_t>(iter));
    const auto count = static_cast<std::size_t>(pick.uniform_int(1, 3));
    for (std::size_t k = 0; k < count; ++k) {
      const auto kind = kinds[static_cast<std::size_t>(
          pick.uniform_int(0, static_cast<std::int64_t>(kinds.size()) - 1))];
      const auto plan = faults::severity_plan(kind, pick.uniform(0.1, 1.0));
      plan.apply(va, fault_rng);
      plan.apply(wear, fault_rng);
    }
    Rng rng(220);
    ScoreOutcome outcome;
    ASSERT_NO_THROW(outcome = sys.try_score(va, wear, nullptr, rng,
                                            workspace))
        << "iteration " << iter;
    EXPECT_TRUE(outcome.status == ScoreStatus::kOk ||
                outcome.status == ScoreStatus::kIndeterminate ||
                outcome.status == ScoreStatus::kError)
        << "iteration " << iter;
  }
}

}  // namespace
}  // namespace vibguard::core
