#include "faults/injectors.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::faults {
namespace {

Signal test_tone() { return dsp::tone(50.0, 1.0, 1000.0, 0.5); }

bool identical(const Signal& a, const Signal& b) {
  if (a.size() != b.size() || a.sample_rate() != b.sample_rate()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const bool both_nan = std::isnan(a[i]) && std::isnan(b[i]);
    if (!both_nan && a[i] != b[i]) return false;
  }
  return true;
}

TEST(FaultsTest, NamesRoundTripForEveryKind) {
  const auto kinds = all_fault_kinds();
  EXPECT_EQ(kinds.size(), 7u);
  for (FaultKind kind : kinds) {
    EXPECT_EQ(fault_by_name(fault_name(kind)), kind) << fault_name(kind);
  }
  EXPECT_THROW(fault_by_name("cosmic_rays"), vibguard::InvalidArgument);
}

TEST(FaultsTest, PlanComposesAndDescribes) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.describe(), "none");
  // An empty plan is the identity.
  Signal s = test_tone();
  const Signal before = s;
  Rng rng(1);
  plan.apply(s, rng);
  EXPECT_TRUE(identical(s, before));

  plan.add(std::make_shared<TruncationInjector>(0.5))
      .add(std::make_shared<ClippingInjector>(0.5));
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.describe(), "truncation+clipping");
  EXPECT_THROW(plan.add(nullptr), vibguard::InvalidArgument);
}

TEST(FaultsTest, EveryInjectorIsSeedDeterministic) {
  for (FaultKind kind : all_fault_kinds()) {
    const FaultPlan plan = severity_plan(kind, 0.7);
    ASSERT_FALSE(plan.empty()) << fault_name(kind);
    Signal a = test_tone(), b = test_tone();
    Rng ra(99), rb(99);
    plan.apply(a, ra);
    plan.apply(b, rb);
    EXPECT_TRUE(identical(a, b)) << fault_name(kind);
  }
}

TEST(FaultsTest, SeverityPlanZeroIsBaselineAndClampsAbove) {
  EXPECT_TRUE(severity_plan(FaultKind::kDropout, 0.0).empty());
  EXPECT_TRUE(severity_plan(FaultKind::kBurst, -1.0).empty());
  // Severity clamps to 1: the same seed gives the same corruption at 1 and 5.
  Signal a = test_tone(), b = test_tone();
  Rng ra(3), rb(3);
  severity_plan(FaultKind::kClipping, 1.0).apply(a, ra);
  severity_plan(FaultKind::kClipping, 5.0).apply(b, rb);
  EXPECT_TRUE(identical(a, b));
}

TEST(FaultsTest, DropoutZeroFillCreatesGaps) {
  Signal s = dsp::tone(50.0, 2.0, 1000.0, 0.5);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] += 1.0;  // no natural zeros
  Rng rng(7);
  DropoutInjector(20.0, 0.05).apply(s, rng);
  const std::size_t zeros = static_cast<std::size_t>(
      std::count(s.begin(), s.end(), 0.0));
  EXPECT_GT(zeros, 0u);
  EXPECT_LT(zeros, s.size());  // some signal survives
}

TEST(FaultsTest, DropoutHoldFillRepeatsLastGoodSample) {
  // On a strictly increasing ramp, a held gap shows up as repeated values;
  // zero-fill would introduce values outside the ramp's range.
  std::vector<double> ramp(2000);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = 1.0 + static_cast<double>(i) * 1e-3;
  }
  Signal s(std::move(ramp), 1000.0);
  Rng rng(8);
  DropoutInjector(10.0, 0.05, DropoutInjector::Fill::kHold).apply(s, rng);
  std::size_t repeats = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_GE(s[i - 1], 1.0);  // hold never writes zeros
    if (s[i] == s[i - 1]) ++repeats;
  }
  EXPECT_GT(repeats, 0u);
}

TEST(FaultsTest, ClippingClampsToFractionOfPeak) {
  Signal s = test_tone();
  Rng rng(9);
  ClippingInjector(0.4).apply(s, rng);
  double peak = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    peak = std::max(peak, std::abs(s[i]));
  }
  EXPECT_NEAR(peak, 0.4 * 0.5, 1e-12);

  // level_fraction >= 1 and silence are no-ops.
  Signal t = test_tone();
  const Signal before = t;
  ClippingInjector(1.0).apply(t, rng);
  EXPECT_TRUE(identical(t, before));
  Signal silent = Signal::zeros(100, 1000.0);
  ClippingInjector(0.1).apply(silent, rng);
  for (std::size_t i = 0; i < silent.size(); ++i) EXPECT_EQ(silent[i], 0.0);
}

TEST(FaultsTest, StuckAtHoldsOneReading) {
  // The start position is uniform, so any single seed may clamp the stuck
  // stretch at the end of the capture; over several seeds the full 300
  // samples (0.3 s at 1 kHz) must show up, and never more than 300 + 1.
  std::size_t best = 1;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Signal s = test_tone();
    Rng rng(seed);
    StuckAtInjector(0.3).apply(s, rng);
    std::size_t longest = 1, run = 1;
    for (std::size_t i = 1; i < s.size(); ++i) {
      run = (s[i] == s[i - 1]) ? run + 1 : 1;
      longest = std::max(longest, run);
    }
    EXPECT_GT(longest, 1u) << "seed " << seed;
    EXPECT_LE(longest, 301u) << "seed " << seed;
    best = std::max(best, longest);
  }
  EXPECT_GE(best, 300u);
}

TEST(FaultsTest, ClockDriftShortensCaptureKeepsRateLabel) {
  const Signal before = test_tone();
  Signal s = before;
  Rng rng(11);
  ClockDriftInjector(20000.0).apply(s, rng);  // 2% fast clock
  EXPECT_LT(s.size(), before.size());
  EXPECT_GE(s.size(), before.size() - before.size() / 40);
  EXPECT_DOUBLE_EQ(s.sample_rate(), before.sample_rate());

  // Zero drift, zero jitter resamples onto the identity grid.
  Signal id = before;
  ClockDriftInjector(0.0).apply(id, rng);
  EXPECT_TRUE(identical(id, before));
}

TEST(FaultsTest, BurstAddsInterferenceEnergy) {
  const Signal before = test_tone();
  Signal s = before;
  Rng rng(12);
  BurstInjector(8.0, 0.05, 2.0).apply(s, rng);
  ASSERT_EQ(s.size(), before.size());
  double diff_energy = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const double d = s[i] - before[i];
    diff_energy += d * d;
  }
  EXPECT_GT(diff_energy, 0.0);
}

TEST(FaultsTest, TruncationKeepsLeadingFraction) {
  const Signal before = test_tone();
  Signal s = before;
  Rng rng(13);
  TruncationInjector(0.25).apply(s, rng);
  ASSERT_EQ(s.size(), before.size() / 4);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i], before[i]) << "sample " << i;
  }
  Signal gone = before;
  TruncationInjector(0.0).apply(gone, rng);
  EXPECT_TRUE(gone.empty());
}

TEST(FaultsTest, NonFiniteContaminatesAtConfiguredRate) {
  Signal s = dsp::tone(50.0, 10.0, 1000.0, 0.5);
  Rng rng(14);
  NonFiniteInjector(0.1, 0.5).apply(s, rng);
  std::size_t nans = 0, infs = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (std::isnan(s[i])) ++nans;
    if (std::isinf(s[i])) ++infs;
  }
  EXPECT_GT(nans, 0u);
  EXPECT_GT(infs, 0u);
  // ~10% of 10000 samples; a loose band catches rate bugs, not rng drift.
  EXPECT_NEAR(static_cast<double>(nans + infs), 1000.0, 300.0);

  Signal clean = test_tone();
  const Signal before = clean;
  NonFiniteInjector(0.0).apply(clean, rng);
  EXPECT_TRUE(identical(clean, before));
}

TEST(FaultsTest, ConstructorsRejectInvalidParameters) {
  EXPECT_THROW(DropoutInjector(-1.0, 0.1), vibguard::InvalidArgument);
  EXPECT_THROW(DropoutInjector(1.0, -0.1), vibguard::InvalidArgument);
  EXPECT_THROW(ClippingInjector(-0.5), vibguard::InvalidArgument);
  EXPECT_THROW(StuckAtInjector(-1.0), vibguard::InvalidArgument);
  EXPECT_THROW(ClockDriftInjector(1.0, -1.0), vibguard::InvalidArgument);
  EXPECT_THROW(BurstInjector(-1.0, 0.1, 1.0), vibguard::InvalidArgument);
  EXPECT_THROW(TruncationInjector(-0.1), vibguard::InvalidArgument);
  EXPECT_THROW(TruncationInjector(1.5), vibguard::InvalidArgument);
  EXPECT_THROW(NonFiniteInjector(2.0), vibguard::InvalidArgument);
  EXPECT_THROW(NonFiniteInjector(0.5, 2.0), vibguard::InvalidArgument);
}

TEST(FaultsTest, InjectorsAreSafeOnEmptySignals) {
  for (FaultKind kind : all_fault_kinds()) {
    Signal empty({}, 1000.0);
    Rng rng(15);
    EXPECT_NO_THROW(severity_plan(kind, 1.0).apply(empty, rng))
        << fault_name(kind);
  }
}

TEST(FaultsTest, SeverityPlanBoundariesForEveryKind) {
  // The full boundary contract, per kind: severity <= 0 and NaN are the
  // empty (identity) plan, any positive severity builds a non-empty one,
  // and severities above 1 clamp (same corruption as exactly 1).
  for (FaultKind kind : all_fault_kinds()) {
    EXPECT_TRUE(severity_plan(kind, 0.0).empty()) << fault_name(kind);
    EXPECT_TRUE(severity_plan(kind, -0.0).empty()) << fault_name(kind);
    EXPECT_TRUE(severity_plan(kind, -3.0).empty()) << fault_name(kind);
    EXPECT_TRUE(severity_plan(kind, std::nan("")).empty())
        << fault_name(kind);
    EXPECT_FALSE(severity_plan(kind, 1e-9).empty()) << fault_name(kind);
    EXPECT_FALSE(severity_plan(kind, 1.0).empty()) << fault_name(kind);

    Signal at_one = test_tone(), clamped = test_tone();
    Rng ra(21), rb(21);
    severity_plan(kind, 1.0).apply(at_one, ra);
    severity_plan(kind, 1e9).apply(clamped, rb);
    EXPECT_TRUE(identical(at_one, clamped)) << fault_name(kind);
  }
}

}  // namespace
}  // namespace vibguard::faults
