// Serving-domain fault injection: plan construction/validation, the
// severity parameterization (incl. NaN and out-of-range clamping), and
// the ChaosController's determinism guarantees — same plan + seed means
// the same stalls, crashes, slowdowns and lost replies, independent of
// query order.
#include "faults/serving_faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace vibguard::faults {
namespace {

constexpr std::uint64_t kHorizon = 1'000'000;  // 1 s

TEST(ServingFaultsTest, NamesRoundTrip) {
  for (WorkerFaultKind kind : all_worker_fault_kinds()) {
    EXPECT_EQ(worker_fault_by_name(worker_fault_name(kind)), kind);
  }
  EXPECT_THROW(worker_fault_by_name("meteor"), InvalidArgument);
}

TEST(ServingFaultsTest, PlanValidatesWindowsAndParameters) {
  ChaosPlan plan;
  EXPECT_THROW(plan.stall(0, 100, 100), InvalidArgument);  // empty window
  EXPECT_THROW(plan.stall(0, 200, 100), InvalidArgument);  // inverted
  EXPECT_THROW(plan.slow(0, 0, 100, 0.5), InvalidArgument);  // factor < 1
  EXPECT_THROW(plan.lossy(0, 0, 100, -0.1), InvalidArgument);
  EXPECT_THROW(plan.lossy(0, 0, 100, 1.1), InvalidArgument);
  EXPECT_TRUE(plan.empty());  // failed adders left nothing behind

  plan.stall(1, 0, 100).crash(2, 50).slow(3, 0, 100, 4.0).lossy(4, 0, 100,
                                                                0.25);
  EXPECT_EQ(plan.size(), 4u);
}

TEST(ServingFaultsTest, DescribeSummarizesPlan) {
  EXPECT_EQ(ChaosPlan{}.describe(), "none");
  ChaosPlan plan;
  plan.crash(1, 40'000).slow(2, 0, 10'000, 3.0);
  EXPECT_EQ(plan.describe(), "crash(w1@40.0ms)+slow(w2,x3.0)");
}

TEST(ServingFaultsTest, SeverityPlanBoundariesForEveryKind) {
  for (WorkerFaultKind kind : all_worker_fault_kinds()) {
    // Zero, negative, and NaN severities are all empty plans.
    EXPECT_TRUE(worker_severity_plan(kind, 0.0, 1, 0, kHorizon).empty());
    EXPECT_TRUE(worker_severity_plan(kind, -0.5, 1, 0, kHorizon).empty());
    EXPECT_TRUE(worker_severity_plan(
                    kind, std::numeric_limits<double>::quiet_NaN(), 1, 0,
                    kHorizon)
                    .empty());

    // Any positive severity yields exactly one fault of the right kind on
    // the right worker, inside [from, horizon).
    for (double severity : {1e-9, 0.5, 1.0, 7.0}) {  // 7.0 clamps to 1
      const ChaosPlan plan =
          worker_severity_plan(kind, severity, 3, 100, kHorizon);
      ASSERT_EQ(plan.size(), 1u) << worker_fault_name(kind) << " s="
                                 << severity;
      const WorkerFault& fault = plan.faults()[0];
      EXPECT_EQ(fault.kind, kind);
      EXPECT_EQ(fault.worker, 3u);
      EXPECT_GE(fault.from_us, 100u);
      if (kind != WorkerFaultKind::kCrash) {
        EXPECT_GT(fault.until_us, fault.from_us);
        EXPECT_LE(fault.until_us, kHorizon);
      } else {
        EXPECT_LE(fault.from_us, kHorizon);
      }
    }

    // Severity above 1 is clamped: identical to severity exactly 1.
    const ChaosPlan at_one = worker_severity_plan(kind, 1.0, 3, 0, kHorizon);
    const ChaosPlan clamped = worker_severity_plan(kind, 42.0, 3, 0, kHorizon);
    ASSERT_EQ(at_one.size(), 1u);
    ASSERT_EQ(clamped.size(), 1u);
    EXPECT_EQ(clamped.faults()[0].from_us, at_one.faults()[0].from_us);
    EXPECT_EQ(clamped.faults()[0].until_us, at_one.faults()[0].until_us);
    EXPECT_EQ(clamped.faults()[0].factor, at_one.faults()[0].factor);
    EXPECT_EQ(clamped.faults()[0].loss, at_one.faults()[0].loss);
  }
}

TEST(ServingFaultsTest, SeverityScalesMonotonically) {
  // Harsher severity: longer stall, earlier crash, bigger slowdown,
  // higher loss.
  const auto stall_lo = worker_severity_plan(WorkerFaultKind::kStall, 0.2,
                                             0, 0, kHorizon);
  const auto stall_hi = worker_severity_plan(WorkerFaultKind::kStall, 0.9,
                                             0, 0, kHorizon);
  EXPECT_LT(stall_lo.faults()[0].until_us, stall_hi.faults()[0].until_us);

  const auto crash_lo = worker_severity_plan(WorkerFaultKind::kCrash, 0.2,
                                             0, 0, kHorizon);
  const auto crash_hi = worker_severity_plan(WorkerFaultKind::kCrash, 0.9,
                                             0, 0, kHorizon);
  EXPECT_GT(crash_lo.faults()[0].from_us, crash_hi.faults()[0].from_us);

  const auto slow_lo = worker_severity_plan(WorkerFaultKind::kSlow, 0.2, 0,
                                            0, kHorizon);
  const auto slow_hi = worker_severity_plan(WorkerFaultKind::kSlow, 0.9, 0,
                                            0, kHorizon);
  EXPECT_LT(slow_lo.faults()[0].factor, slow_hi.faults()[0].factor);

  const auto lossy_lo = worker_severity_plan(WorkerFaultKind::kLossy, 0.2,
                                             0, 0, kHorizon);
  const auto lossy_hi = worker_severity_plan(WorkerFaultKind::kLossy, 0.9,
                                             0, 0, kHorizon);
  EXPECT_LT(lossy_lo.faults()[0].loss, lossy_hi.faults()[0].loss);
}

TEST(ServingFaultsTest, StallWindowIsHalfOpenAndPerWorker) {
  ChaosPlan plan;
  plan.stall(1, 100, 200);
  ChaosController chaos(plan, 7);
  EXPECT_FALSE(chaos.stalled(1, 99));
  EXPECT_TRUE(chaos.stalled(1, 100));   // inclusive start
  EXPECT_TRUE(chaos.stalled(1, 199));
  EXPECT_FALSE(chaos.stalled(1, 200));  // exclusive end
  EXPECT_FALSE(chaos.stalled(0, 150));  // other workers untouched
  EXPECT_TRUE(chaos.alive(1, 99));
  EXPECT_FALSE(chaos.alive(1, 150));
  EXPECT_TRUE(chaos.alive(1, 200));
}

TEST(ServingFaultsTest, CrashIsPermanentAndShadowsStall) {
  ChaosPlan plan;
  plan.crash(2, 500).stall(2, 400, 1'000);
  ChaosController chaos(plan, 7);
  EXPECT_EQ(chaos.crash_at_us(2), 500u);
  EXPECT_EQ(chaos.crash_at_us(0), UINT64_MAX);
  EXPECT_FALSE(chaos.crashed(2, 499));
  EXPECT_TRUE(chaos.crashed(2, 500));
  EXPECT_TRUE(chaos.crashed(2, UINT64_MAX));  // never comes back
  // Inside the stall window but after the crash: dead, not "stalled".
  EXPECT_TRUE(chaos.stalled(2, 450));
  EXPECT_FALSE(chaos.stalled(2, 600));
  EXPECT_FALSE(chaos.alive(2, 600));
}

TEST(ServingFaultsTest, EarliestCrashWins) {
  ChaosPlan plan;
  plan.crash(0, 900).crash(0, 300);
  ChaosController chaos(plan, 7);
  EXPECT_EQ(chaos.crash_at_us(0), 300u);
}

TEST(ServingFaultsTest, OverlappingSlowWindowsMultiply) {
  ChaosPlan plan;
  plan.slow(0, 0, 1'000, 2.0).slow(0, 500, 1'500, 3.0);
  ChaosController chaos(plan, 7);
  EXPECT_DOUBLE_EQ(chaos.slowdown(0, 100), 2.0);
  EXPECT_DOUBLE_EQ(chaos.slowdown(0, 700), 6.0);   // both windows active
  EXPECT_DOUBLE_EQ(chaos.slowdown(0, 1'200), 3.0);
  EXPECT_DOUBLE_EQ(chaos.slowdown(0, 2'000), 1.0);
  EXPECT_DOUBLE_EQ(chaos.slowdown(1, 700), 1.0);   // other worker
}

TEST(ServingFaultsTest, ResultLossIsDeterministicPerRequest) {
  ChaosPlan plan;
  plan.lossy(1, 0, kHorizon, 0.4);
  ChaosController chaos(plan, 0xC4A05);

  // The verdict is a pure function of (seed, worker, request): repeated
  // queries and different times inside the window always agree.
  int lost = 0;
  for (std::uint64_t req = 0; req < 1'000; ++req) {
    const bool first = chaos.result_lost(1, req, 10);
    EXPECT_EQ(chaos.result_lost(1, req, 10), first);
    EXPECT_EQ(chaos.result_lost(1, req, kHorizon - 1), first);
    if (first) ++lost;
  }
  // The draw tracks the configured probability (generous tolerance).
  EXPECT_GT(lost, 300);
  EXPECT_LT(lost, 500);

  // Outside the window, and on other workers, nothing is lost.
  EXPECT_FALSE(chaos.result_lost(1, 0, kHorizon));
  for (std::uint64_t req = 0; req < 100; ++req) {
    EXPECT_FALSE(chaos.result_lost(0, req, 10));
  }

  // A different seed draws a different (but equally deterministic) set.
  ChaosController other(plan, 0xBEEF);
  int disagreements = 0;
  for (std::uint64_t req = 0; req < 1'000; ++req) {
    if (other.result_lost(1, req, 10) != chaos.result_lost(1, req, 10)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 0);
}

TEST(ServingFaultsTest, LossProbabilityEdges) {
  ChaosPlan never;
  never.lossy(0, 0, kHorizon, 0.0);
  ChaosController chaos_never(never, 1);
  for (std::uint64_t req = 0; req < 200; ++req) {
    EXPECT_FALSE(chaos_never.result_lost(0, req, 10));
  }
  ChaosPlan always;
  always.lossy(0, 0, kHorizon, 1.0);
  ChaosController chaos_always(always, 1);
  for (std::uint64_t req = 0; req < 200; ++req) {
    EXPECT_TRUE(chaos_always.result_lost(0, req, 10));
  }
}

}  // namespace
}  // namespace vibguard::faults
