#include "attacks/attack.hpp"

#include <gtest/gtest.h>

#include "dsp/spectral.hpp"

namespace vibguard::attacks {
namespace {

speech::SpeakerProfile victim() {
  Rng rng(10);
  auto p = speech::sample_speaker(speech::Sex::kFemale, rng);
  p.id = "victim";
  return p;
}

speech::SpeakerProfile adversary() {
  Rng rng(20);
  auto p = speech::sample_speaker(speech::Sex::kMale, rng);
  p.id = "adversary";
  return p;
}

class AttackTypeTest : public ::testing::TestWithParam<AttackType> {};

TEST_P(AttackTypeTest, GeneratesNonEmptyAudioWithMetadata) {
  AttackGenerator gen;
  Rng rng(1);
  const auto& cmd = speech::command_by_text("unlock the front door");
  const auto sound = gen.generate(GetParam(), cmd, victim(), adversary(), rng);
  EXPECT_EQ(sound.type, GetParam());
  EXPECT_FALSE(sound.audio.empty());
  EXPECT_GT(sound.audio.rms(), 0.0);
  EXPECT_EQ(sound.command, cmd.text);
}

TEST_P(AttackTypeTest, NameAndKindConsistent) {
  EXPECT_FALSE(attack_name(GetParam()).empty());
  (void)command_kind(GetParam());  // must not throw
}

INSTANTIATE_TEST_SUITE_P(AllTypes, AttackTypeTest,
                         ::testing::ValuesIn(all_attack_types()));

TEST(AttackTest, FourAttackTypes) {
  EXPECT_EQ(all_attack_types().size(), 4u);
  EXPECT_EQ(attack_name(AttackType::kHiddenVoice), "hidden_voice");
}

TEST(AttackTest, SpeechAttacksCarryAlignment) {
  AttackGenerator gen;
  Rng rng(2);
  const auto& cmd = speech::command_by_text("turn on the lights");
  for (AttackType t : {AttackType::kRandom, AttackType::kReplay,
                       AttackType::kSynthesis}) {
    const auto sound = gen.generate(t, cmd, victim(), adversary(), rng);
    EXPECT_EQ(sound.alignment.size(), cmd.phonemes.size())
        << attack_name(t);
  }
}

TEST(AttackTest, HiddenVoiceHasNoAlignment) {
  AttackGenerator gen;
  Rng rng(3);
  const auto sound = gen.hidden_voice_attack("ok google", rng);
  EXPECT_TRUE(sound.alignment.empty());
}

TEST(AttackTest, HiddenVoiceIsWideband) {
  AttackGenerator gen;
  Rng rng(4);
  const auto sound = gen.hidden_voice_attack("ok google", rng, 1.5);
  // Paper Sec. VII-D: hidden commands occupy 0-6 kHz.
  EXPECT_GT(dsp::band_energy_fraction(sound.audio, 0.0, 6200.0), 0.9);
  EXPECT_GT(dsp::band_energy_fraction(sound.audio, 3000.0, 6200.0), 0.2);
}

TEST(AttackTest, HiddenVoiceHasSyllabicEnvelope) {
  AttackGenerator gen;
  Rng rng(5);
  const auto sound = gen.hidden_voice_attack("x", rng, 2.0);
  // Short-window RMS should oscillate (modulated), unlike flat noise.
  const double fs = sound.audio.sample_rate();
  const auto win = static_cast<std::size_t>(fs * 0.02);
  std::vector<double> env;
  for (std::size_t i = 0; i + win < sound.audio.size(); i += win) {
    env.push_back(sound.audio.slice(i, i + win).rms());
  }
  double mx = 0.0, mn = 1e9;
  for (double e : env) {
    mx = std::max(mx, e);
    mn = std::min(mn, e);
  }
  EXPECT_GT(mx, 2.0 * mn);
}

TEST(AttackTest, RandomAttackUsesAdversaryVoice) {
  AttackGenerator gen;
  Rng r1(6), r2(6);
  const auto& cmd = speech::command_by_text("stop");
  const auto a = gen.random_attack(cmd, adversary(), r1);
  const auto b = gen.replay_attack(cmd, victim(), r2);
  // Different speakers (different sex) give different spectral centroids.
  EXPECT_NE(dsp::spectral_centroid(a.audio), dsp::spectral_centroid(b.audio));
}

TEST(AttackTest, SynthesisIsSmootherThanReplay) {
  AttackGenerator gen;
  Rng r1(7), r2(7);
  const auto& cmd = speech::command_by_text("open the garage");
  const auto replay = gen.replay_attack(cmd, victim(), r1);
  const auto synth = gen.synthesis_attack(cmd, victim(), r2);
  // Vocoder shelf cuts the highest band relative to replay.
  const double r_hf = dsp::band_energy_fraction(replay.audio, 7000.0, 8000.0);
  const double s_hf = dsp::band_energy_fraction(synth.audio, 7000.0, 8000.0);
  EXPECT_LE(s_hf, r_hf + 1e-6);
}

TEST(AttackTest, DeterministicGivenSeed) {
  AttackGenerator gen;
  Rng r1(8), r2(8);
  const auto& cmd = speech::command_by_text("stop");
  const auto a = gen.replay_attack(cmd, victim(), r1);
  const auto b = gen.replay_attack(cmd, victim(), r2);
  ASSERT_EQ(a.audio.size(), b.audio.size());
  for (std::size_t i = 0; i < a.audio.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.audio[i], b.audio[i]);
  }
}

}  // namespace
}  // namespace vibguard::attacks
