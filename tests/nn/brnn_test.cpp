#include "nn/brnn.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace vibguard::nn {
namespace {

BrnnConfig tiny_config() {
  BrnnConfig cfg;
  cfg.in_dim = 4;
  cfg.hidden_dim = 12;
  cfg.adam.learning_rate = 5e-3;
  return cfg;
}

/// Task: label a frame 1 when its first feature is positive. Trivially
/// learnable and direction-independent.
LabeledSequence make_threshold_sequence(std::size_t T, Rng& rng) {
  LabeledSequence seq;
  seq.features.resize(T, std::vector<double>(4));
  seq.labels.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    for (double& v : seq.features[t]) v = rng.gaussian();
    seq.labels[t] = seq.features[t][0] > 0.0 ? 1 : 0;
  }
  return seq;
}

/// Task requiring context: label 1 iff the PREVIOUS frame's feature-0 was
/// positive (frame 0 labeled 0). A memoryless classifier scores ~50%.
LabeledSequence make_context_sequence(std::size_t T, Rng& rng) {
  LabeledSequence seq;
  seq.features.resize(T, std::vector<double>(4));
  seq.labels.resize(T);
  for (std::size_t t = 0; t < T; ++t) {
    for (double& v : seq.features[t]) v = rng.gaussian();
    seq.labels[t] =
        t > 0 && seq.features[t - 1][0] > 0.0 ? 1 : 0;
  }
  return seq;
}

TEST(BrnnTest, PredictionShapes) {
  Brnn net(tiny_config(), 1);
  Rng rng(2);
  const auto seq = make_threshold_sequence(9, rng);
  const auto probs = net.predict(seq.features);
  ASSERT_EQ(probs.size(), 9u);
  for (const auto& p : probs) {
    ASSERT_EQ(p.size(), 2u);
    EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  }
  EXPECT_EQ(net.classify(seq.features).size(), 9u);
}

TEST(BrnnTest, EmptyInputEmptyOutput) {
  Brnn net(tiny_config(), 1);
  EXPECT_TRUE(net.predict({}).empty());
}

TEST(BrnnTest, LossDecreasesWithTraining) {
  Brnn net(tiny_config(), 3);
  Rng rng(4);
  std::vector<LabeledSequence> data;
  for (int i = 0; i < 16; ++i) data.push_back(make_threshold_sequence(15, rng));
  const double first = net.train_batch(data);
  double last = first;
  for (int e = 0; e < 30; ++e) last = net.train_batch(data);
  EXPECT_LT(last, 0.6 * first);
}

TEST(BrnnTest, LearnsThresholdTask) {
  Brnn net(tiny_config(), 5);
  Rng rng(6);
  std::vector<LabeledSequence> train;
  for (int i = 0; i < 24; ++i) train.push_back(make_threshold_sequence(20, rng));
  for (int e = 0; e < 60; ++e) net.train_batch(train);
  std::vector<LabeledSequence> test;
  for (int i = 0; i < 8; ++i) test.push_back(make_threshold_sequence(20, rng));
  EXPECT_GT(net.evaluate(test), 0.9);
}

TEST(BrnnTest, LearnsContextDependentTask) {
  // Requires recurrence: memoryless accuracy is 50%.
  BrnnConfig cfg = tiny_config();
  cfg.hidden_dim = 16;
  Brnn net(cfg, 7);
  Rng rng(8);
  std::vector<LabeledSequence> train;
  for (int i = 0; i < 40; ++i) train.push_back(make_context_sequence(16, rng));
  for (int e = 0; e < 120; ++e) net.train_batch(train);
  std::vector<LabeledSequence> test;
  for (int i = 0; i < 10; ++i) test.push_back(make_context_sequence(16, rng));
  EXPECT_GT(net.evaluate(test), 0.8);
}

TEST(BrnnTest, DeterministicGivenSeed) {
  Brnn a(tiny_config(), 42), b(tiny_config(), 42);
  Rng rng(9);
  const auto seq = make_threshold_sequence(6, rng);
  const auto pa = a.predict(seq.features);
  const auto pb = b.predict(seq.features);
  for (std::size_t t = 0; t < pa.size(); ++t) {
    EXPECT_DOUBLE_EQ(pa[t][1], pb[t][1]);
  }
}

TEST(BrnnTest, EvaluateOnEmptyDataIsZero) {
  Brnn net(tiny_config(), 1);
  EXPECT_DOUBLE_EQ(net.evaluate({}), 0.0);
}

}  // namespace
}  // namespace vibguard::nn
