#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard::nn {
namespace {

BrnnConfig tiny_config() {
  BrnnConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden_dim = 5;
  return cfg;
}

std::vector<std::vector<double>> features(std::size_t T, Rng& rng) {
  std::vector<std::vector<double>> out(T, std::vector<double>(3));
  for (auto& f : out) {
    for (double& v : f) v = rng.gaussian();
  }
  return out;
}

TEST(SerializeTest, RoundTripPreservesPredictions) {
  Brnn model(tiny_config(), 42);
  // Train a little so weights are non-trivial.
  Rng rng(1);
  LabeledSequence seq;
  seq.features = features(8, rng);
  seq.labels.assign(8, 1);
  for (int i = 0; i < 5; ++i) model.train_batch({&seq, 1});

  std::stringstream buffer;
  save_brnn(model, buffer);
  Brnn loaded = load_brnn(buffer);

  const auto test_seq = features(10, rng);
  const auto p1 = model.predict(test_seq);
  const auto p2 = loaded.predict(test_seq);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t t = 0; t < p1.size(); ++t) {
    EXPECT_DOUBLE_EQ(p1[t][0], p2[t][0]);
    EXPECT_DOUBLE_EQ(p1[t][1], p2[t][1]);
  }
}

TEST(SerializeTest, RoundTripViaFile) {
  Brnn model(tiny_config(), 7);
  const std::string path = "/tmp/vibguard_brnn_test.model";
  save_brnn(model, path);
  Brnn loaded = load_brnn(path);
  Rng rng(2);
  const auto test_seq = features(4, rng);
  const auto p1 = model.predict(test_seq);
  const auto p2 = loaded.predict(test_seq);
  for (std::size_t t = 0; t < p1.size(); ++t) {
    EXPECT_DOUBLE_EQ(p1[t][1], p2[t][1]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadedConfigMatches) {
  Brnn model(tiny_config(), 3);
  std::stringstream buffer;
  save_brnn(model, buffer);
  Brnn loaded = load_brnn(buffer);
  EXPECT_EQ(loaded.config().in_dim, 3u);
  EXPECT_EQ(loaded.config().hidden_dim, 5u);
  EXPECT_EQ(loaded.config().num_classes, 2u);
}

TEST(SerializeTest, RejectsBadMagic) {
  std::stringstream buffer("not-a-model 1 2 3");
  EXPECT_THROW(load_brnn(buffer), vibguard::Error);
}

TEST(SerializeTest, RejectsTruncatedFile) {
  Brnn model(tiny_config(), 5);
  std::stringstream buffer;
  save_brnn(model, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_brnn(truncated), vibguard::Error);
}

TEST(SerializeTest, ParameterBlockOrderIsStable) {
  Brnn model(tiny_config(), 11);
  const auto blocks = model.parameter_blocks();
  ASSERT_EQ(blocks.size(), 8u);
  // fwd wx (4h*in), fwd wh (4h*h), fwd b (4h), bwd..., head W (h*2), head b.
  EXPECT_EQ(blocks[0]->size(), 4u * 5u * 3u);
  EXPECT_EQ(blocks[1]->size(), 4u * 5u * 5u);
  EXPECT_EQ(blocks[2]->size(), 4u * 5u);
  EXPECT_EQ(blocks[6]->size(), 5u * 2u);
  EXPECT_EQ(blocks[7]->size(), 2u);
}

}  // namespace
}  // namespace vibguard::nn
