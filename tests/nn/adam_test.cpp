#include "nn/adam.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace vibguard::nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, df/dx = 2(x - 3).
  ParamBlock x(1);
  x.value[0] = -5.0;
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  Adam opt(cfg);
  opt.attach(x);
  for (int i = 0; i < 500; ++i) {
    x.grad[0] = 2.0 * (x.value[0] - 3.0);
    opt.step();
  }
  EXPECT_NEAR(x.value[0], 3.0, 0.05);
}

TEST(AdamTest, MinimizesMultiDimensional) {
  ParamBlock x(3);
  x.value = {10.0, -10.0, 5.0};
  const std::vector<double> target = {1.0, 2.0, -3.0};
  Adam opt(AdamConfig{.learning_rate = 0.05});
  opt.attach(x);
  for (int i = 0; i < 2000; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      x.grad[j] = 2.0 * (x.value[j] - target[j]);
    }
    opt.step();
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(x.value[j], target[j], 0.05);
  }
}

TEST(AdamTest, StepClearsGradients) {
  ParamBlock x(2);
  Adam opt;
  opt.attach(x);
  x.grad = {1.0, -1.0};
  opt.step();
  EXPECT_DOUBLE_EQ(x.grad[0], 0.0);
  EXPECT_DOUBLE_EQ(x.grad[1], 0.0);
}

TEST(AdamTest, GradientClippingLimitsUpdateScale) {
  ParamBlock a(1), b(1);
  AdamConfig cfg;
  cfg.grad_clip = 1.0;
  Adam opt(cfg);
  opt.attach(a);
  opt.attach(b);
  a.grad[0] = 1e6;  // clipped to 1
  b.grad[0] = 1.0;
  opt.step();
  // After clipping both see the same effective gradient.
  EXPECT_NEAR(a.value[0], b.value[0], 1e-12);
}

TEST(AdamTest, FirstStepMovesByRoughlyLearningRate) {
  // Bias-corrected Adam's first update magnitude is ~lr regardless of
  // gradient scale.
  ParamBlock x(1);
  Adam opt(AdamConfig{.learning_rate = 0.01, .grad_clip = 0.0});
  opt.attach(x);
  x.grad[0] = 123.0;
  opt.step();
  EXPECT_NEAR(std::abs(x.value[0]), 0.01, 1e-4);
}

TEST(AdamTest, TracksStepCount) {
  ParamBlock x(1);
  Adam opt;
  opt.attach(x);
  EXPECT_EQ(opt.step_count(), 0u);
  opt.step();
  opt.step();
  EXPECT_EQ(opt.step_count(), 2u);
}

TEST(AdamTest, RejectsNonPositiveLearningRate) {
  EXPECT_THROW(Adam(AdamConfig{.learning_rate = 0.0}),
               vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::nn
