#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard::nn {
namespace {

std::vector<std::vector<double>> random_sequence(std::size_t T,
                                                 std::size_t dim, Rng& rng) {
  std::vector<std::vector<double>> seq(T, std::vector<double>(dim));
  for (auto& frame : seq) {
    for (double& v : frame) v = rng.gaussian(0.0, 0.5);
  }
  return seq;
}

TEST(LstmTest, ForwardShapes) {
  Rng rng(1);
  Lstm lstm(3, 5, rng);
  Lstm::Cache cache;
  const auto seq = random_sequence(7, 3, rng);
  const auto h = lstm.forward(seq, cache);
  ASSERT_EQ(h.size(), 7u);
  for (const auto& ht : h) EXPECT_EQ(ht.size(), 5u);
}

TEST(LstmTest, HiddenStatesBounded) {
  Rng rng(2);
  Lstm lstm(2, 4, rng);
  Lstm::Cache cache;
  const auto seq = random_sequence(20, 2, rng);
  const auto h = lstm.forward(seq, cache);
  for (const auto& ht : h) {
    for (double v : ht) {
      EXPECT_LT(std::abs(v), 1.0);  // |o * tanh(c)| < 1
    }
  }
}

TEST(LstmTest, DeterministicForward) {
  Rng r1(3), r2(3);
  Lstm a(2, 3, r1), b(2, 3, r2);
  Rng data(4);
  const auto seq = random_sequence(5, 2, data);
  Lstm::Cache ca, cb;
  const auto ha = a.forward(seq, ca);
  const auto hb = b.forward(seq, cb);
  for (std::size_t t = 0; t < ha.size(); ++t) {
    for (std::size_t j = 0; j < ha[t].size(); ++j) {
      EXPECT_DOUBLE_EQ(ha[t][j], hb[t][j]);
    }
  }
}

TEST(LstmTest, BpttGradientMatchesFiniteDifference) {
  // Scalar loss: L = sum_t v . h_t with fixed random v.
  Rng rng(5);
  const std::size_t T = 4, in = 2, hid = 3;
  Lstm lstm(in, hid, rng);
  const auto seq = random_sequence(T, in, rng);
  std::vector<double> v(hid);
  for (double& x : v) x = rng.gaussian();

  auto loss = [&](Lstm& net) {
    Lstm::Cache c;
    const auto h = net.forward(seq, c);
    double acc = 0.0;
    for (const auto& ht : h) {
      for (std::size_t j = 0; j < hid; ++j) acc += v[j] * ht[j];
    }
    return acc;
  };

  Lstm::Cache cache;
  lstm.forward(seq, cache);
  std::vector<std::vector<double>> dh(T, v);
  lstm.zero_grad();
  const auto dx = lstm.backward(cache, dh);

  const double eps = 1e-6;
  auto check_block = [&](ParamBlock& block, const char* name) {
    for (std::size_t i = 0; i < std::min<std::size_t>(block.size(), 20);
         ++i) {
      Lstm pert = lstm;
      ParamBlock* pb = nullptr;
      if (std::string(name) == "wx") pb = &pert.wx();
      if (std::string(name) == "wh") pb = &pert.wh();
      if (std::string(name) == "b") pb = &pert.bias();
      pb->value[i] += eps;
      const double up = loss(pert);
      pb->value[i] -= 2.0 * eps;
      const double down = loss(pert);
      const double numeric = (up - down) / (2.0 * eps);
      EXPECT_NEAR(block.grad[i], numeric, 1e-5)
          << name << "[" << i << "]";
    }
  };
  check_block(lstm.wx(), "wx");
  check_block(lstm.wh(), "wh");
  check_block(lstm.bias(), "b");

  // Input gradients.
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t i = 0; i < in; ++i) {
      auto seq_p = seq;
      seq_p[t][i] += eps;
      auto seq_m = seq;
      seq_m[t][i] -= eps;
      Lstm::Cache cp, cm;
      const auto hp = lstm.forward(seq_p, cp);
      const auto hm = lstm.forward(seq_m, cm);
      double numeric = 0.0;
      for (std::size_t tt = 0; tt < T; ++tt) {
        for (std::size_t j = 0; j < hid; ++j) {
          numeric += v[j] * (hp[tt][j] - hm[tt][j]);
        }
      }
      numeric /= 2.0 * eps;
      EXPECT_NEAR(dx[t][i], numeric, 1e-5) << "x[" << t << "][" << i << "]";
    }
  }
}

TEST(LstmTest, ForgetBiasInitializedToOne) {
  Rng rng(6);
  Lstm lstm(2, 4, rng);
  for (std::size_t j = 4; j < 8; ++j) {
    EXPECT_DOUBLE_EQ(lstm.bias().value[j], 1.0);
  }
  EXPECT_DOUBLE_EQ(lstm.bias().value[0], 0.0);
}

TEST(LstmTest, RejectsDimensionMismatch) {
  Rng rng(7);
  Lstm lstm(3, 2, rng);
  Lstm::Cache cache;
  std::vector<std::vector<double>> bad = {{1.0, 2.0}};  // dim 2, expect 3
  EXPECT_THROW(lstm.forward(bad, cache), vibguard::InvalidArgument);
  EXPECT_THROW(Lstm(0, 2, rng), vibguard::InvalidArgument);
}

TEST(LstmTest, EmptySequenceGivesEmptyOutput) {
  Rng rng(8);
  Lstm lstm(2, 3, rng);
  Lstm::Cache cache;
  const auto h = lstm.forward({}, cache);
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace vibguard::nn
