#include "nn/dense.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard::nn {
namespace {

TEST(DenseTest, ForwardComputesAffineMap) {
  Rng rng(1);
  Dense layer(2, 2, rng);
  // Overwrite weights with known values.
  layer.weights().value = {1.0, 2.0, 3.0, 4.0};  // row-major 2x2
  layer.bias().value = {10.0, 20.0};
  const auto y = layer.forward(std::vector<double>{1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 27.0);
}

TEST(DenseTest, BackwardGradientMatchesFiniteDifference) {
  Rng rng(2);
  Dense layer(3, 2, rng);
  const std::vector<double> x = {0.5, -1.0, 2.0};
  const std::vector<double> dy = {1.0, -0.5};

  layer.zero_grad();
  const auto dx = layer.backward(x, dy);

  // Loss L = dy . y  =>  dL/dw and dL/dx from backward must match numeric.
  const double eps = 1e-6;
  auto loss = [&](Dense& l) {
    const auto y = l.forward(x);
    return dy[0] * y[0] + dy[1] * y[1];
  };
  for (std::size_t i = 0; i < layer.weights().size(); ++i) {
    Dense pert = layer;
    pert.weights().value[i] += eps;
    Dense pert2 = layer;
    pert2.weights().value[i] -= eps;
    const double numeric = (loss(pert) - loss(pert2)) / (2.0 * eps);
    EXPECT_NEAR(layer.weights().grad[i], numeric, 1e-6) << "w" << i;
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const auto yp = layer.forward(xp);
    const auto ym = layer.forward(xm);
    const double numeric = (dy[0] * (yp[0] - ym[0]) +
                            dy[1] * (yp[1] - ym[1])) /
                           (2.0 * eps);
    EXPECT_NEAR(dx[i], numeric, 1e-6) << "x" << i;
  }
}

TEST(DenseTest, GradientsAccumulateAcrossCalls) {
  Rng rng(3);
  Dense layer(1, 1, rng);
  const std::vector<double> x = {2.0};
  const std::vector<double> dy = {1.0};
  layer.zero_grad();
  layer.backward(x, dy);
  const double once = layer.weights().grad[0];
  layer.backward(x, dy);
  EXPECT_DOUBLE_EQ(layer.weights().grad[0], 2.0 * once);
}

TEST(DenseTest, DimensionChecks) {
  Rng rng(4);
  Dense layer(3, 2, rng);
  EXPECT_THROW(layer.forward(std::vector<double>{1.0}),
               vibguard::InvalidArgument);
  EXPECT_THROW(Dense(0, 2, rng), vibguard::InvalidArgument);
}

TEST(SoftmaxTest, SumsToOneAndOrdersCorrectly) {
  const auto p = softmax(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  const auto p = softmax(std::vector<double>{1000.0, 1001.0});
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(CrossEntropyTest, PerfectPredictionZeroLoss) {
  EXPECT_NEAR(cross_entropy(std::vector<double>{0.0, 1.0}, 1), 0.0, 1e-9);
}

TEST(CrossEntropyTest, WrongConfidentPredictionHighLoss) {
  EXPECT_GT(cross_entropy(std::vector<double>{0.999, 0.001}, 1), 6.0);
}

TEST(CrossEntropyTest, GradientIsProbsMinusOneHot) {
  const std::vector<double> probs = {0.3, 0.7};
  const auto g = cross_entropy_grad(probs, 0);
  EXPECT_DOUBLE_EQ(g[0], -0.7);
  EXPECT_DOUBLE_EQ(g[1], 0.7);
}

TEST(CrossEntropyTest, RejectsOutOfRangeLabel) {
  EXPECT_THROW(cross_entropy(std::vector<double>{1.0}, 3),
               vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::nn
