#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace vibguard {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
}

TEST(RngTest, UniformIntCoversFullRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(RngTest, UniformIntSingleValue) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(23);
  const auto xs = rng.gaussian_vector(200000);
  EXPECT_NEAR(mean(xs), 0.0, 0.01);
  EXPECT_NEAR(stddev(xs), 1.0, 0.01);
}

TEST(RngTest, GaussianScaleAndShift) {
  Rng rng(29);
  std::vector<double> xs(50000);
  for (double& x : xs) x = rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(mean(xs), 10.0, 0.05);
  EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(RngTest, GaussianRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), InvalidArgument);
}

TEST(RngTest, BernoulliFrequencyMatchesProbability) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng parent(41);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  Rng c1_again = parent.fork(1);
  EXPECT_EQ(c1(), c1_again());
  // Distinct labels give distinct streams.
  Rng d1 = parent.fork(1);
  Rng d2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (d1() == d2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng a(43), b(43);
  (void)a.fork(99);
  EXPECT_EQ(a(), b());
}

TEST(RngTest, GaussianVectorLength) {
  Rng rng(47);
  EXPECT_EQ(rng.gaussian_vector(17).size(), 17u);
  EXPECT_TRUE(rng.gaussian_vector(0).empty());
}

}  // namespace
}  // namespace vibguard
