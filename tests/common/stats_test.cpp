#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard {
namespace {

TEST(StatsTest, MeanBasics) {
  std::vector<double> xs = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  std::vector<double> xs = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(StatsTest, VarianceKnownValue) {
  std::vector<double> xs = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(variance(xs), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(stddev(xs), 1.0);
}

TEST(StatsTest, QuantileEndpoints) {
  std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(third_quartile(xs), 7.5);
}

TEST(StatsTest, QuantileRejectsBadInput) {
  std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, 1.5), InvalidArgument);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), InvalidArgument);
}

TEST(StatsTest, ThirdQuartileOfSequence) {
  // 0..99: Q3 = 74.25 under linear interpolation.
  std::vector<double> xs(100);
  for (int i = 0; i < 100; ++i) xs[i] = i;
  EXPECT_NEAR(third_quartile(xs), 74.25, 1e-9);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectAnticorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson(a, b), -1.0, 1e-12);
}

TEST(StatsTest, PearsonZeroVarianceGivesZero) {
  std::vector<double> a = {1.0, 1.0, 1.0};
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(a, b), 0.0);
}

TEST(StatsTest, PearsonIndependentNoiseNearZero) {
  Rng rng(5);
  const auto a = rng.gaussian_vector(20000);
  const auto b = rng.gaussian_vector(20000);
  EXPECT_NEAR(pearson(a, b), 0.0, 0.03);
}

TEST(StatsTest, PearsonRejectsLengthMismatch) {
  std::vector<double> a = {1.0, 2.0};
  std::vector<double> b = {1.0};
  EXPECT_THROW(pearson(a, b), InvalidArgument);
}

TEST(StatsTest, PearsonShiftAndScaleInvariant) {
  Rng rng(9);
  const auto a = rng.gaussian_vector(1000);
  std::vector<double> b(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) b[i] = 5.0 * a[i] - 2.0;
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(StatsTest, MinMaxArgmax) {
  std::vector<double> xs = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_EQ(argmax(xs), 2u);
}

}  // namespace
}  // namespace vibguard
