#include "common/db.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vibguard {
namespace {

TEST(DbTest, ReferencePointRoundTrips) {
  EXPECT_NEAR(spl_to_rms(kReferenceSpl), kReferenceRms, 1e-12);
  EXPECT_NEAR(rms_to_spl(kReferenceRms), kReferenceSpl, 1e-12);
}

TEST(DbTest, TwentyDbIsTenfoldAmplitude) {
  EXPECT_NEAR(spl_to_rms(kReferenceSpl + 20.0), 10.0 * kReferenceRms, 1e-12);
  EXPECT_NEAR(spl_to_rms(kReferenceSpl - 20.0), 0.1 * kReferenceRms, 1e-12);
}

TEST(DbTest, SplRmsInverse) {
  for (double spl = 40.0; spl <= 90.0; spl += 7.0) {
    EXPECT_NEAR(rms_to_spl(spl_to_rms(spl)), spl, 1e-9);
  }
}

TEST(DbTest, ZeroRmsIsNegativeInfinity) {
  EXPECT_TRUE(std::isinf(rms_to_spl(0.0)));
  EXPECT_LT(rms_to_spl(0.0), 0.0);
}

TEST(DbTest, PowerToDb) {
  EXPECT_NEAR(power_to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(power_to_db(100.0), 20.0, 1e-12);
  EXPECT_TRUE(std::isinf(power_to_db(0.0)));
}

TEST(DbTest, AmplitudeToDb) {
  EXPECT_NEAR(amplitude_to_db(10.0), 20.0, 1e-12);
  EXPECT_NEAR(amplitude_to_db(0.5), -6.0206, 1e-3);
}

TEST(DbTest, DbToAmplitudeInverse) {
  for (double db = -40.0; db <= 40.0; db += 5.0) {
    EXPECT_NEAR(amplitude_to_db(db_to_amplitude(db)), db, 1e-9);
  }
}

}  // namespace
}  // namespace vibguard
