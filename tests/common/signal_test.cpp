#include "common/signal.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace vibguard {
namespace {

TEST(SignalTest, ConstructionStoresSamplesAndRate) {
  Signal s({1.0, 2.0, 3.0}, 100.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.sample_rate(), 100.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(SignalTest, RejectsNonPositiveRate) {
  EXPECT_THROW(Signal({1.0}, 0.0), InvalidArgument);
  EXPECT_THROW(Signal({1.0}, -10.0), InvalidArgument);
}

TEST(SignalTest, ZerosFactory) {
  const auto s = Signal::zeros(10, 50.0);
  EXPECT_EQ(s.size(), 10u);
  for (double v : s) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SignalTest, DurationIsSizeOverRate) {
  const auto s = Signal::zeros(200, 100.0);
  EXPECT_DOUBLE_EQ(s.duration(), 2.0);
  EXPECT_DOUBLE_EQ(Signal().duration(), 0.0);
}

TEST(SignalTest, RmsOfConstantSignal) {
  Signal s({3.0, 3.0, 3.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(s.rms(), 3.0);
}

TEST(SignalTest, RmsOfSineIsAmplitudeOverSqrt2) {
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = 2.0 * std::sin(2.0 * M_PI * 10.0 * i / 1000.0);
  }
  Signal s(std::move(v), 1000.0);
  EXPECT_NEAR(s.rms(), 2.0 / std::sqrt(2.0), 1e-6);
}

TEST(SignalTest, PeakIsMaxAbsolute) {
  Signal s({1.0, -5.0, 2.0}, 10.0);
  EXPECT_DOUBLE_EQ(s.peak(), 5.0);
}

TEST(SignalTest, ScaleMultipliesAllSamples) {
  Signal s({1.0, -2.0}, 10.0);
  s.scale(3.0);
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], -6.0);
}

TEST(SignalTest, ScaledToRmsHitsTarget) {
  Signal s({1.0, -1.0, 1.0, -1.0}, 10.0);
  const auto t = s.scaled_to_rms(0.5);
  EXPECT_NEAR(t.rms(), 0.5, 1e-12);
}

TEST(SignalTest, ScaledToRmsOfSilenceStaysSilent) {
  const auto s = Signal::zeros(8, 10.0);
  const auto t = s.scaled_to_rms(1.0);
  EXPECT_DOUBLE_EQ(t.rms(), 0.0);
}

TEST(SignalTest, AddIsElementwise) {
  Signal a({1.0, 2.0}, 10.0);
  Signal b({10.0, 20.0}, 10.0);
  a.add(b);
  EXPECT_DOUBLE_EQ(a[0], 11.0);
  EXPECT_DOUBLE_EQ(a[1], 22.0);
}

TEST(SignalTest, AddRejectsLengthMismatch) {
  Signal a({1.0, 2.0}, 10.0);
  Signal b({1.0}, 10.0);
  EXPECT_THROW(a.add(b), InvalidArgument);
}

TEST(SignalTest, AddRejectsRateMismatch) {
  Signal a({1.0}, 10.0);
  Signal b({1.0}, 20.0);
  EXPECT_THROW(a.add(b), InvalidArgument);
}

TEST(SignalTest, AppendConcatenates) {
  Signal a({1.0}, 10.0);
  Signal b({2.0, 3.0}, 10.0);
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[2], 3.0);
}

TEST(SignalTest, AppendToDefaultAdoptsRate) {
  Signal a;
  a.append(Signal({1.0}, 44100.0));
  EXPECT_DOUBLE_EQ(a.sample_rate(), 44100.0);
}

TEST(SignalTest, SliceReturnsHalfOpenRange) {
  Signal s({0.0, 1.0, 2.0, 3.0}, 10.0);
  const auto t = s.slice(1, 3);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
  EXPECT_DOUBLE_EQ(t[1], 2.0);
}

TEST(SignalTest, SliceRejectsOutOfBounds) {
  Signal s({0.0, 1.0}, 10.0);
  EXPECT_THROW(s.slice(1, 3), InvalidArgument);
  EXPECT_THROW(s.slice(2, 1), InvalidArgument);
}

TEST(SignalTest, ConcatenateJoinsParts) {
  std::vector<Signal> parts = {Signal({1.0}, 10.0), Signal({2.0}, 10.0)};
  const auto s = concatenate(parts);
  EXPECT_EQ(s.size(), 2u);
}

TEST(SignalTest, ConcatenateEmptyGivesEmpty) {
  const auto s = concatenate({});
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace vibguard
