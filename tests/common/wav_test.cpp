#include "common/wav.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(WavTest, RoundTripPreservesSignal) {
  Rng rng(1);
  const Signal original = dsp::white_noise(0.25, 16000.0, 0.1, rng);
  const std::string path = temp_path("vibguard_roundtrip.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 16000.0);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded[i], original[i], 1.0 / 32768.0 + 1e-9);
  }
  std::remove(path.c_str());
}

TEST(WavTest, ClipsOutOfRangeSamples) {
  Signal loud({2.0, -3.0, 0.5}, 8000.0);
  const std::string path = temp_path("vibguard_clip.wav");
  write_wav(path, loud);
  const Signal loaded = read_wav(path);
  EXPECT_NEAR(loaded[0], 1.0, 0.001);
  EXPECT_NEAR(loaded[1], -1.0, 0.001);
  EXPECT_NEAR(loaded[2], 0.5, 0.001);
  std::remove(path.c_str());
}

TEST(WavTest, PreservesSampleRate) {
  const Signal s = Signal::zeros(100, 200.0);
  const std::string path = temp_path("vibguard_rate.wav");
  write_wav(path, s);
  EXPECT_DOUBLE_EQ(read_wav(path).sample_rate(), 200.0);
  std::remove(path.c_str());
}

TEST(WavTest, EmptySignalRoundTrips) {
  const Signal s({}, 16000.0);
  const std::string path = temp_path("vibguard_empty.wav");
  write_wav(path, s);
  EXPECT_TRUE(read_wav(path).empty());
  std::remove(path.c_str());
}

TEST(WavTest, QuantizedValuesRoundTripExactly) {
  // The PR 3 scaling-asymmetry regression: write_wav quantizes by 32767,
  // so values already on the q/32767 grid must survive a round trip
  // bit-exactly. The old read path divided by 32768, biasing every
  // round-tripped amplitude low by a factor 32767/32768.
  const std::vector<int> quants = {-32767, -12345, -1, 0, 1, 777, 32767};
  std::vector<double> samples;
  for (int q : quants) samples.push_back(q / 32767.0);
  const Signal original(std::move(samples), 8000.0);
  const std::string path = temp_path("vibguard_quantized.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], original[i]) << "sample " << i;
  }
  std::remove(path.c_str());
}

TEST(WavTest, FullScaleIsSymmetric) {
  const Signal original({1.0, -1.0}, 8000.0);
  const std::string path = temp_path("vibguard_fullscale.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0], 1.0);
  EXPECT_DOUBLE_EQ(loaded[1], -1.0);
  std::remove(path.c_str());
}

TEST(WavTest, StereoDownmixAveragesChannels) {
  // Hand-built 2-channel PCM file: read_wav must average the channels of
  // each frame, not silently keep channel 0.
  const std::vector<std::pair<std::int16_t, std::int16_t>> frames = {
      {32767, -32767},  // cancels to 0
      {1000, 3000},     // averages to 2000
      {-500, -500},     // equal channels pass through
  };
  std::vector<std::uint8_t> bytes;
  auto u16 = [&bytes](std::uint16_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  auto u32 = [&bytes](std::uint32_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
  };
  auto tag = [&bytes](const std::string& s) {
    bytes.insert(bytes.end(), s.begin(), s.end());
  };
  const auto data_bytes =
      static_cast<std::uint32_t>(frames.size() * 2 * sizeof(std::int16_t));
  tag("RIFF");
  u32(36 + data_bytes);
  tag("WAVEfmt ");
  u32(16);     // fmt chunk size
  u16(1);      // PCM
  u16(2);      // stereo
  u32(8000);   // sample rate
  u32(8000 * 4);
  u16(4);      // block align
  u16(16);     // bits per sample
  tag("data");
  u32(data_bytes);
  for (const auto& [left, right] : frames) {
    u16(static_cast<std::uint16_t>(left));
    u16(static_cast<std::uint16_t>(right));
  }

  const std::string path = temp_path("vibguard_stereo.wav");
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), frames.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 8000.0);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const double want =
        (frames[i].first + frames[i].second) / (2.0 * 32767.0);
    EXPECT_DOUBLE_EQ(loaded[i], want) << "frame " << i;
  }
  std::remove(path.c_str());
}

TEST(WavTest, EncodeDecodeMemoryRoundTrip) {
  Rng rng(2);
  const Signal original = dsp::white_noise(0.1, 8000.0, 0.1, rng);
  const auto bytes = encode_wav(original);
  EXPECT_EQ(bytes.size(), 44 + original.size() * 2);
  const Signal decoded = decode_wav(bytes);
  ASSERT_EQ(decoded.size(), original.size());
  EXPECT_DOUBLE_EQ(decoded.sample_rate(), 8000.0);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(decoded[i], original[i], 1.0 / 32768.0 + 1e-9);
  }
}

TEST(WavTest, TruncatedDataChunkDecodesPresentSamples) {
  // The interrupted-upload case: the data chunk claims more bytes than the
  // stream holds. The decoder keeps the samples actually present and drops
  // a trailing partial frame instead of rejecting the capture.
  const Signal original({0.1, 0.2, 0.3, 0.4, 0.5, 0.6}, 8000.0);
  const auto full = encode_wav(original);
  // Cut mid-way through sample 4 (one of its two bytes survives).
  const std::vector<std::uint8_t> cut(full.begin(),
                                      full.begin() + 44 + 4 * 2 + 1);
  const Signal decoded = decode_wav(cut, "truncated");
  ASSERT_EQ(decoded.size(), 4u);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_NEAR(decoded[i], original[i], 1.0 / 32768.0 + 1e-9);
  }
}

TEST(WavTest, DecodeRejectsMalformedStreams) {
  const Signal tiny({0.25, -0.25}, 8000.0);
  const auto good = encode_wav(tiny);

  // Shorter than any RIFF header.
  EXPECT_THROW(decode_wav(std::vector<std::uint8_t>{'R', 'I', 'F'}), Error);
  // Bad magic in either slot.
  {
    auto bad = good;
    bad[0] = 'X';
    EXPECT_THROW(decode_wav(bad), Error);
  }
  {
    auto bad = good;
    bad[8] = 'X';  // WAVE tag
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // fmt chunk claiming fewer than the 16 load-bearing bytes.
  {
    auto bad = good;
    bad[16] = 8;  // fmt chunk size low byte
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // fmt chunk claiming more bytes than the stream holds.
  {
    auto bad = good;
    bad[19] = 0x7f;  // fmt chunk size high byte -> gigantic claim
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // Non-PCM format code.
  {
    auto bad = good;
    bad[20] = 3;  // IEEE float
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // Zero channels.
  {
    auto bad = good;
    bad[22] = 0;
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // Zero sample rate.
  {
    auto bad = good;
    bad[24] = bad[25] = bad[26] = bad[27] = 0;
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // Unsupported bit depth.
  {
    auto bad = good;
    bad[34] = 8;
    EXPECT_THROW(decode_wav(bad), Error);
  }
  // Header only, no data chunk.
  {
    const std::vector<std::uint8_t> header_only(good.begin(),
                                                good.begin() + 36);
    EXPECT_THROW(decode_wav(header_only), Error);
  }
  // The untouched original still decodes.
  EXPECT_EQ(decode_wav(good).size(), 2u);
}

TEST(WavTest, DecodeSkipsUnknownChunks) {
  // LIST/INFO style metadata between fmt and data must be walked over.
  const Signal original({0.5, -0.5}, 8000.0);
  const auto plain = encode_wav(original);
  std::vector<std::uint8_t> bytes(plain.begin(), plain.begin() + 36);
  const char* junk = "LIST";
  bytes.insert(bytes.end(), junk, junk + 4);
  bytes.push_back(4);  // chunk length 4, little endian
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.push_back(0);
  bytes.insert(bytes.end(), {'I', 'N', 'F', 'O'});
  bytes.insert(bytes.end(), plain.begin() + 36, plain.end());
  // Patch the RIFF size claim (not validated strictly, but keep it honest).
  const auto riff_len = static_cast<std::uint32_t>(bytes.size() - 8);
  bytes[4] = static_cast<std::uint8_t>(riff_len & 0xff);
  bytes[5] = static_cast<std::uint8_t>((riff_len >> 8) & 0xff);
  bytes[6] = static_cast<std::uint8_t>((riff_len >> 16) & 0xff);
  bytes[7] = static_cast<std::uint8_t>((riff_len >> 24) & 0xff);
  const Signal decoded = decode_wav(bytes);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_NEAR(decoded[0], 0.5, 1e-3);
  EXPECT_NEAR(decoded[1], -0.5, 1e-3);
}

TEST(WavTest, ReadRejectsMissingFile) {
  EXPECT_THROW(read_wav("/nonexistent/dir/x.wav"), Error);
}

TEST(WavTest, ReadRejectsGarbage) {
  const std::string path = temp_path("vibguard_garbage.wav");
  {
    std::ofstream f(path);
    f << "this is definitely not a wav file, not even close to 44 bytes..";
  }
  EXPECT_THROW(read_wav(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vibguard
