#include "common/wav.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(WavTest, RoundTripPreservesSignal) {
  Rng rng(1);
  const Signal original = dsp::white_noise(0.25, 16000.0, 0.1, rng);
  const std::string path = temp_path("vibguard_roundtrip.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 16000.0);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded[i], original[i], 1.0 / 32768.0 + 1e-9);
  }
  std::remove(path.c_str());
}

TEST(WavTest, ClipsOutOfRangeSamples) {
  Signal loud({2.0, -3.0, 0.5}, 8000.0);
  const std::string path = temp_path("vibguard_clip.wav");
  write_wav(path, loud);
  const Signal loaded = read_wav(path);
  EXPECT_NEAR(loaded[0], 1.0, 0.001);
  EXPECT_NEAR(loaded[1], -1.0, 0.001);
  EXPECT_NEAR(loaded[2], 0.5, 0.001);
  std::remove(path.c_str());
}

TEST(WavTest, PreservesSampleRate) {
  const Signal s = Signal::zeros(100, 200.0);
  const std::string path = temp_path("vibguard_rate.wav");
  write_wav(path, s);
  EXPECT_DOUBLE_EQ(read_wav(path).sample_rate(), 200.0);
  std::remove(path.c_str());
}

TEST(WavTest, EmptySignalRoundTrips) {
  const Signal s({}, 16000.0);
  const std::string path = temp_path("vibguard_empty.wav");
  write_wav(path, s);
  EXPECT_TRUE(read_wav(path).empty());
  std::remove(path.c_str());
}

TEST(WavTest, QuantizedValuesRoundTripExactly) {
  // The PR 3 scaling-asymmetry regression: write_wav quantizes by 32767,
  // so values already on the q/32767 grid must survive a round trip
  // bit-exactly. The old read path divided by 32768, biasing every
  // round-tripped amplitude low by a factor 32767/32768.
  const std::vector<int> quants = {-32767, -12345, -1, 0, 1, 777, 32767};
  std::vector<double> samples;
  for (int q : quants) samples.push_back(q / 32767.0);
  const Signal original(std::move(samples), 8000.0);
  const std::string path = temp_path("vibguard_quantized.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i], original[i]) << "sample " << i;
  }
  std::remove(path.c_str());
}

TEST(WavTest, FullScaleIsSymmetric) {
  const Signal original({1.0, -1.0}, 8000.0);
  const std::string path = temp_path("vibguard_fullscale.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded[0], 1.0);
  EXPECT_DOUBLE_EQ(loaded[1], -1.0);
  std::remove(path.c_str());
}

TEST(WavTest, StereoDownmixAveragesChannels) {
  // Hand-built 2-channel PCM file: read_wav must average the channels of
  // each frame, not silently keep channel 0.
  const std::vector<std::pair<std::int16_t, std::int16_t>> frames = {
      {32767, -32767},  // cancels to 0
      {1000, 3000},     // averages to 2000
      {-500, -500},     // equal channels pass through
  };
  std::vector<std::uint8_t> bytes;
  auto u16 = [&bytes](std::uint16_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v & 0xff));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  auto u32 = [&bytes](std::uint32_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
    bytes.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
  };
  auto tag = [&bytes](const std::string& s) {
    bytes.insert(bytes.end(), s.begin(), s.end());
  };
  const auto data_bytes =
      static_cast<std::uint32_t>(frames.size() * 2 * sizeof(std::int16_t));
  tag("RIFF");
  u32(36 + data_bytes);
  tag("WAVEfmt ");
  u32(16);     // fmt chunk size
  u16(1);      // PCM
  u16(2);      // stereo
  u32(8000);   // sample rate
  u32(8000 * 4);
  u16(4);      // block align
  u16(16);     // bits per sample
  tag("data");
  u32(data_bytes);
  for (const auto& [left, right] : frames) {
    u16(static_cast<std::uint16_t>(left));
    u16(static_cast<std::uint16_t>(right));
  }

  const std::string path = temp_path("vibguard_stereo.wav");
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), frames.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 8000.0);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const double want =
        (frames[i].first + frames[i].second) / (2.0 * 32767.0);
    EXPECT_DOUBLE_EQ(loaded[i], want) << "frame " << i;
  }
  std::remove(path.c_str());
}

TEST(WavTest, ReadRejectsMissingFile) {
  EXPECT_THROW(read_wav("/nonexistent/dir/x.wav"), Error);
}

TEST(WavTest, ReadRejectsGarbage) {
  const std::string path = temp_path("vibguard_garbage.wav");
  {
    std::ofstream f(path);
    f << "this is definitely not a wav file, not even close to 44 bytes..";
  }
  EXPECT_THROW(read_wav(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vibguard
