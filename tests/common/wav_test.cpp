#include "common/wav.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(WavTest, RoundTripPreservesSignal) {
  Rng rng(1);
  const Signal original = dsp::white_noise(0.25, 16000.0, 0.1, rng);
  const std::string path = temp_path("vibguard_roundtrip.wav");
  write_wav(path, original);
  const Signal loaded = read_wav(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.sample_rate(), 16000.0);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(loaded[i], original[i], 1.0 / 32768.0 + 1e-9);
  }
  std::remove(path.c_str());
}

TEST(WavTest, ClipsOutOfRangeSamples) {
  Signal loud({2.0, -3.0, 0.5}, 8000.0);
  const std::string path = temp_path("vibguard_clip.wav");
  write_wav(path, loud);
  const Signal loaded = read_wav(path);
  EXPECT_NEAR(loaded[0], 1.0, 0.001);
  EXPECT_NEAR(loaded[1], -1.0, 0.001);
  EXPECT_NEAR(loaded[2], 0.5, 0.001);
  std::remove(path.c_str());
}

TEST(WavTest, PreservesSampleRate) {
  const Signal s = Signal::zeros(100, 200.0);
  const std::string path = temp_path("vibguard_rate.wav");
  write_wav(path, s);
  EXPECT_DOUBLE_EQ(read_wav(path).sample_rate(), 200.0);
  std::remove(path.c_str());
}

TEST(WavTest, EmptySignalRoundTrips) {
  const Signal s({}, 16000.0);
  const std::string path = temp_path("vibguard_empty.wav");
  write_wav(path, s);
  EXPECT_TRUE(read_wav(path).empty());
  std::remove(path.c_str());
}

TEST(WavTest, ReadRejectsMissingFile) {
  EXPECT_THROW(read_wav("/nonexistent/dir/x.wav"), Error);
}

TEST(WavTest, ReadRejectsGarbage) {
  const std::string path = temp_path("vibguard_garbage.wav");
  {
    std::ofstream f(path);
    f << "this is definitely not a wav file, not even close to 44 bytes..";
  }
  EXPECT_THROW(read_wav(path), Error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vibguard
