#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vibguard {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SinglethreadedPoolFallsBackToInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 0u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(round + 1, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // 1 + 2 + ... + 10
  EXPECT_EQ(total.load(), 55u);
}

TEST(ThreadPoolTest, ZeroAndSingleIterationCountsWork) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(4);
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // Every non-throwing iteration still ran.
  EXPECT_EQ(completed.load(), 63u);
  // The pool survives an exception and accepts further work.
  std::atomic<int> after{0};
  pool.parallel_for(5, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 5);
}

TEST(ThreadPoolTest, SerialFallbackAlsoDrainsBeforeThrowing) {
  // The single-threaded inline path must give the same guarantee as the
  // threaded one: every iteration is attempted exactly once, then the first
  // exception propagates — a mid-batch throw cannot skip later iterations.
  ThreadPool pool(1);
  ASSERT_EQ(pool.num_threads(), 0u);
  std::vector<int> attempted(16, 0);
  EXPECT_THROW(
      pool.parallel_for(attempted.size(),
                        [&](std::size_t i) {
                          attempted[i] += 1;
                          if (i == 3) throw std::runtime_error("early");
                          if (i == 11) throw std::logic_error("late");
                        }),
      std::runtime_error);  // the first exception wins, not the last
  for (std::size_t i = 0; i < attempted.size(); ++i) {
    EXPECT_EQ(attempted[i], 1) << "index " << i;
  }
  // Still usable afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(3, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 3);
}

TEST(ThreadPoolTest, RecommendedThreadsHonorsEnvOverride) {
  ASSERT_EQ(setenv("VIBGUARD_THREADS", "3", 1), 0);
  EXPECT_EQ(recommended_threads(), 3u);
  ASSERT_EQ(setenv("VIBGUARD_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(recommended_threads(), 1u);  // invalid value falls back to auto
  ASSERT_EQ(unsetenv("VIBGUARD_THREADS"), 0);
  EXPECT_GE(recommended_threads(), 1u);
}

TEST(ThreadPoolTest, RecommendedThreadsIgnoresEveryMalformedEnvShape) {
  const std::size_t fallback = [] {
    unsetenv("VIBGUARD_THREADS");
    return recommended_threads();
  }();
  // None of these may crash, overflow, or be taken at face value — each
  // falls back to the hardware default with a warning.
  for (const char* bad :
       {"", "abc", "4x", "-2", "0", "+", "3 ",
        "99999999999999999999999999", "1e3", "0x10", "5000"}) {
    ASSERT_EQ(setenv("VIBGUARD_THREADS", bad, 1), 0) << bad;
    EXPECT_EQ(recommended_threads(), fallback) << "env='" << bad << "'";
  }
  // Boundary values that are valid stay honored.
  ASSERT_EQ(setenv("VIBGUARD_THREADS", "1", 1), 0);
  EXPECT_EQ(recommended_threads(), 1u);
  ASSERT_EQ(setenv("VIBGUARD_THREADS", "4096", 1), 0);
  EXPECT_EQ(recommended_threads(), 4096u);
  ASSERT_EQ(unsetenv("VIBGUARD_THREADS"), 0);
}

}  // namespace
}  // namespace vibguard
