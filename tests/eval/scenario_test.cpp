#include "eval/scenario.hpp"

#include <gtest/gtest.h>

#include "common/db.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::eval {
namespace {

speech::SpeakerProfile user_profile() {
  Rng rng(55);
  return speech::sample_speaker(speech::Sex::kFemale, rng);
}

TEST(ScenarioTest, LegitimateTrialBasics) {
  ScenarioSimulator sim(ScenarioConfig{}, 1);
  const auto t = sim.legitimate_trial(
      speech::command_by_text("play some music"), user_profile());
  EXPECT_FALSE(t.is_attack);
  EXPECT_FALSE(t.va.empty());
  EXPECT_FALSE(t.wearable.empty());
  EXPECT_EQ(t.command, "play some music");
  EXPECT_FALSE(t.alignment.empty());
  EXPECT_GT(t.true_delay_s, 0.0);
  // Wearable missed the first delay seconds.
  EXPECT_LT(t.wearable.size(), t.va.size());
}

TEST(ScenarioTest, WearableCloserSoLouder) {
  ScenarioSimulator sim(ScenarioConfig{}, 2);
  const auto t = sim.legitimate_trial(
      speech::command_by_text("play some music"), user_profile());
  // User mouth 0.4 m from wearable vs 2 m from VA.
  EXPECT_GT(t.wearable.rms(), 1.5 * t.va.rms());
}

TEST(ScenarioTest, AttackTrialIsQuietAndLowFrequency) {
  ScenarioSimulator sim(ScenarioConfig{}, 3);
  Rng rng(4);
  const auto victim = user_profile();
  const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto t =
      sim.attack_trial(attacks::AttackType::kReplay,
                       speech::command_by_text("play some music"), victim,
                       adv);
  EXPECT_TRUE(t.is_attack);
  EXPECT_EQ(t.attack_type, attacks::AttackType::kReplay);
  // Barrier removes high-frequency content: received sound is dominated by
  // the sub-1kHz band (plus ambient noise).
  EXPECT_GT(dsp::band_energy_fraction(t.va, 0.0, 1000.0), 0.5);
  // And it is much quieter than a legitimate command at the VA.
  const auto legit = sim.legitimate_trial(
      speech::command_by_text("play some music"), victim);
  EXPECT_LT(t.va.rms(), legit.va.rms());
}

TEST(ScenarioTest, HigherAttackSplLouderAtVa) {
  ScenarioConfig quiet_cfg;
  quiet_cfg.attack_spl = 65.0;
  ScenarioConfig loud_cfg;
  loud_cfg.attack_spl = 85.0;
  ScenarioSimulator quiet(quiet_cfg, 5);
  ScenarioSimulator loud(loud_cfg, 5);
  Rng rng(6);
  const auto victim = user_profile();
  const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto& cmd = speech::command_by_text("stop");
  const auto tq =
      quiet.attack_trial(attacks::AttackType::kReplay, cmd, victim, adv);
  const auto tl =
      loud.attack_trial(attacks::AttackType::kReplay, cmd, victim, adv);
  EXPECT_GT(tl.va.rms(), tq.va.rms());
}

TEST(ScenarioTest, DeterministicGivenSeed) {
  ScenarioSimulator s1(ScenarioConfig{}, 7);
  ScenarioSimulator s2(ScenarioConfig{}, 7);
  const auto t1 = s1.legitimate_trial(
      speech::command_by_text("stop"), user_profile());
  const auto t2 = s2.legitimate_trial(
      speech::command_by_text("stop"), user_profile());
  ASSERT_EQ(t1.va.size(), t2.va.size());
  for (std::size_t i = 0; i < t1.va.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.va[i], t2.va[i]);
  }
}

TEST(ScenarioTest, HiddenVoiceAttackHasNoAlignment) {
  ScenarioSimulator sim(ScenarioConfig{}, 8);
  Rng rng(9);
  const auto victim = user_profile();
  const auto adv = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto t = sim.attack_trial(attacks::AttackType::kHiddenVoice,
                                  speech::command_by_text("stop"), victim,
                                  adv);
  EXPECT_TRUE(t.alignment.empty());
  EXPECT_FALSE(t.va.empty());
}

TEST(ScenarioTest, AttackSoundAtVaHonorsLevel) {
  ScenarioSimulator sim(ScenarioConfig{}, 10);
  Rng rng(11);
  const Signal wake =
      speech::UtteranceBuilder{}
          .build(speech::command_by_text("alexa"), user_profile(), rng)
          .audio;
  const Signal at65 = sim.attack_sound_at_va(wake, 65.0);
  const Signal at85 = sim.attack_sound_at_va(wake, 85.0);
  EXPECT_GT(at85.rms(), at65.rms());
}

}  // namespace
}  // namespace vibguard::eval
