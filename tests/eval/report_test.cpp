#include "eval/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace vibguard::eval {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

RocCurve sample_roc() {
  const std::vector<double> attack = {0.1, 0.2};
  const std::vector<double> legit = {0.8, 0.9};
  return compute_roc(attack, legit);
}

TEST(ReportTest, RocCsvHasHeaderAndRows) {
  const std::string path = temp_path("vibguard_roc.csv");
  const auto roc = sample_roc();
  write_roc_csv(roc, path);
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("threshold,fdr,tdr\n", 0), 0u);
  // header + one row per point
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), roc.points.size() + 1);
  std::remove(path.c_str());
}

TEST(ReportTest, ScoresCsvLabelsPopulations) {
  ScorePopulations pops;
  pops.legit = {0.9, 0.8};
  pops.attack = {0.1};
  const std::string path = temp_path("vibguard_scores.csv");
  write_scores_csv(pops, path);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("legit,0.9"), std::string::npos);
  EXPECT_NE(text.find("attack,0.1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportTest, MarkdownSummaryListsAllModes) {
  std::map<core::DefenseMode, RocCurve> rocs;
  rocs.emplace(core::DefenseMode::kFull, sample_roc());
  rocs.emplace(core::DefenseMode::kAudioBaseline, sample_roc());
  const std::string md = roc_summary_markdown(rocs);
  EXPECT_NE(md.find("| method | AUC | EER |"), std::string::npos);
  EXPECT_NE(md.find("full"), std::string::npos);
  EXPECT_NE(md.find("audio_baseline"), std::string::npos);
  EXPECT_NE(md.find("1.000"), std::string::npos);  // perfect separation
}

TEST(ReportTest, WriteRejectsBadPath) {
  EXPECT_THROW(write_roc_csv(sample_roc(), "/nonexistent/dir/x.csv"),
               vibguard::Error);
}

TEST(ReportTest, CsvDirReflectsEnvironment) {
  // Unset in the test environment by default.
  unsetenv("VIBGUARD_CSV_DIR");
  EXPECT_TRUE(csv_output_dir().empty());
  setenv("VIBGUARD_CSV_DIR", "/tmp/foo", 1);
  EXPECT_EQ(csv_output_dir(), "/tmp/foo");
  unsetenv("VIBGUARD_CSV_DIR");
}

}  // namespace
}  // namespace vibguard::eval
