#include "eval/confidence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "eval/metrics.hpp"

namespace vibguard::eval {
namespace {

TEST(ConfidenceTest, PointEstimateMatchesDirectComputation) {
  Rng rng(1);
  std::vector<double> attack(60), legit(60);
  for (double& v : attack) v = rng.gaussian(0.3, 0.1);
  for (double& v : legit) v = rng.gaussian(0.8, 0.1);
  const auto ci = bootstrap_auc(attack, legit);
  EXPECT_DOUBLE_EQ(ci.point, compute_roc(attack, legit).auc);
}

TEST(ConfidenceTest, IntervalContainsPoint) {
  Rng rng(2);
  std::vector<double> attack(40), legit(40);
  for (double& v : attack) v = rng.gaussian(0.4, 0.15);
  for (double& v : legit) v = rng.gaussian(0.7, 0.15);
  for (const auto& ci : {bootstrap_auc(attack, legit),
                         bootstrap_eer(attack, legit)}) {
    EXPECT_LE(ci.lower, ci.point + 1e-9);
    EXPECT_GE(ci.upper, ci.point - 1e-9);
  }
}

TEST(ConfidenceTest, MoreDataTightensInterval) {
  Rng rng(3);
  auto make = [&](std::size_t n) {
    std::vector<double> attack(n), legit(n);
    for (double& v : attack) v = rng.gaussian(0.4, 0.2);
    for (double& v : legit) v = rng.gaussian(0.7, 0.2);
    const auto ci = bootstrap_auc(attack, legit);
    return ci.upper - ci.lower;
  };
  const double narrow = make(400);
  const double wide = make(20);
  EXPECT_LT(narrow, wide);
}

TEST(ConfidenceTest, PerfectSeparationDegenerateInterval) {
  const std::vector<double> attack = {0.1, 0.15, 0.2};
  const std::vector<double> legit = {0.8, 0.85, 0.9};
  const auto ci = bootstrap_auc(attack, legit);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lower, 1.0);
  EXPECT_DOUBLE_EQ(ci.upper, 1.0);
}

TEST(ConfidenceTest, DeterministicGivenSeed) {
  Rng rng(4);
  std::vector<double> attack(30), legit(30);
  for (double& v : attack) v = rng.gaussian(0.4, 0.1);
  for (double& v : legit) v = rng.gaussian(0.7, 0.1);
  const auto a = bootstrap_eer(attack, legit);
  const auto b = bootstrap_eer(attack, legit);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(ConfidenceTest, RejectsBadInputs) {
  const std::vector<double> some = {0.5, 0.6};
  EXPECT_THROW(bootstrap_auc({}, some), vibguard::InvalidArgument);
  BootstrapConfig cfg;
  cfg.resamples = 2;
  EXPECT_THROW(bootstrap_auc(some, some, cfg), vibguard::InvalidArgument);
  BootstrapConfig cfg2;
  cfg2.confidence = 1.5;
  EXPECT_THROW(bootstrap_auc(some, some, cfg2), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::eval
