#include "eval/load_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace vibguard::eval {
namespace {

LoadSweepConfig small_config() {
  LoadSweepConfig cfg;
  cfg.num_speakers = 2;
  cfg.legit_trials = 8;
  cfg.attack_trials = 8;
  // One light point (offered interarrival ~10x the service time) and one
  // overloaded point. The heavy rate is deliberately moderate (~1.5x the
  // service rate, not 1000x): the queue must stay saturated yet keep
  // draining, so the server both rejects at the full queue AND works
  // through enough stale requests to string consecutive deadline misses
  // together — an arrival burst far faster than the server just bounces
  // everything off the queue before a second miss can happen — and the
  // post-trip backlog still has budget left to be answered degraded.
  cfg.offered_rps = {0.5, 10.0};
  cfg.service_us_primary = 150'000;
  cfg.service_us_degraded = 30'000;
  cfg.deadline_us = 400'000;
  cfg.queue_capacity = 4;
  cfg.breaker = serving::BreakerConfig{2, 500'000, 1};
  return cfg;
}

TEST(LoadSweepTest, RunsEndToEndAndConservesCounts) {
  const LoadSweepConfig cfg = small_config();
  const LoadSweepResult result = run_load_sweep(cfg, 42);
  ASSERT_EQ(result.points.size(), cfg.offered_rps.size());
  for (const LoadSweepPoint& p : result.points) {
    EXPECT_EQ(p.arrivals, cfg.legit_trials + cfg.attack_trials);
    // Every arrival is either admitted or rejected...
    EXPECT_EQ(p.admitted + p.rejected, p.arrivals);
    // ...and every admitted request ends in exactly one terminal state.
    EXPECT_EQ(p.scored_primary + p.scored_degraded + p.indeterminate +
                  p.errors + p.deadline_missed,
              p.admitted);
  }
}

TEST(LoadSweepTest, LightLoadServesEverythingInBudget) {
  const LoadSweepResult result = run_load_sweep(small_config(), 42);
  const LoadSweepPoint& light = result.points.front();
  EXPECT_EQ(light.rejected, 0u);
  EXPECT_EQ(light.deadline_missed, 0u);
  EXPECT_EQ(light.scored_degraded, 0u);  // breaker never needed
  EXPECT_GT(light.scored_primary, 0u);
  // With 6+6 mostly-scored trials the primary EER is a real number.
  EXPECT_FALSE(std::isnan(light.eer_primary));
}

TEST(LoadSweepTest, OverloadTriggersBackpressureAndDeadlineMisses) {
  const LoadSweepResult result = run_load_sweep(small_config(), 42);
  const LoadSweepPoint& heavy = result.points.back();
  // At 10 rps against a 150 ms server the queue of 4 cannot keep up:
  // arrivals bounce off the full queue, queued requests blow their 400 ms
  // budgets, consecutive misses trip the breaker, and the remaining
  // backlog is answered on the cheap degraded path within budget.
  EXPECT_GT(heavy.rejected, 0u);
  EXPECT_GT(heavy.deadline_missed, 0u);
  EXPECT_GT(heavy.breaker_trips, 0u);
  EXPECT_GT(heavy.scored_degraded, 0u);
  EXPECT_GT(heavy.mean_queue_us, 0.0);
}

TEST(LoadSweepTest, DeterministicForSameSeed) {
  const LoadSweepConfig cfg = small_config();
  const LoadSweepResult a = run_load_sweep(cfg, 7);
  const LoadSweepResult b = run_load_sweep(cfg, 7);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].admitted, b.points[i].admitted);
    EXPECT_EQ(a.points[i].rejected, b.points[i].rejected);
    EXPECT_EQ(a.points[i].deadline_missed, b.points[i].deadline_missed);
    EXPECT_EQ(a.points[i].scored_primary, b.points[i].scored_primary);
    EXPECT_EQ(a.points[i].scored_degraded, b.points[i].scored_degraded);
    EXPECT_EQ(a.points[i].breaker_trips, b.points[i].breaker_trips);
    EXPECT_DOUBLE_EQ(a.points[i].mean_queue_us, b.points[i].mean_queue_us);
    if (!std::isnan(a.points[i].eer_primary)) {
      EXPECT_DOUBLE_EQ(a.points[i].eer_primary, b.points[i].eer_primary);
    }
  }
}

TEST(LoadSweepTest, SummaryPrintsOneRowPerLoadPoint) {
  const LoadSweepResult result = run_load_sweep(small_config(), 42);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("load sweep"), std::string::npos);
  EXPECT_NE(summary.find("EERpri"), std::string::npos);
  std::size_t rows = 0;
  for (char c : summary) rows += c == '\n';
  EXPECT_EQ(rows, 2 + result.points.size());  // title + header + points
}

FleetSweepConfig small_fleet() {
  FleetSweepConfig cfg;
  cfg.base = small_config();
  cfg.base.offered_rps = {0.5};  // light load: everything should serve
  cfg.workers = {1, 2, 3};
  cfg.sessions = 6;
  cfg.tenants = 2;
  cfg.batch_max = 3;
  cfg.batch_window_us = 20'000;
  return cfg;
}

TEST(FleetSweepTest, LightLoadServesEverythingOnEveryWorkerCount) {
  const FleetSweepConfig cfg = small_fleet();
  const FleetSweepResult result = run_fleet_sweep(cfg, 42);
  ASSERT_EQ(result.points.size(), cfg.workers.size());
  for (const FleetSweepPoint& p : result.points) {
    EXPECT_EQ(p.arrivals, 16u);
    EXPECT_EQ(p.rejected, 0u);
    EXPECT_EQ(p.quota_rejected, 0u);
    EXPECT_EQ(p.deadline_missed, 0u);
    EXPECT_EQ(p.scored_primary, p.arrivals);
    EXPECT_EQ(p.scored_degraded, 0u);
    EXPECT_GT(p.batches, 0u);
    EXPECT_GT(p.throughput_rps, 0.0);
    EXPECT_FALSE(std::isnan(p.eer_primary));
  }
}

TEST(FleetSweepTest, ScoringIsBitIdenticalAcrossWorkerCountsAndWindows) {
  // The fleet determinism contract at the sweep level: with a fixed seed,
  // the detection quality of what the fleet answered must not depend on
  // how the fleet was sharded or how requests were coalesced — only the
  // serving-side columns may move.
  const FleetSweepResult by_workers = run_fleet_sweep(small_fleet(), 42);
  ASSERT_EQ(by_workers.points.size(), 3u);
  const double eer = by_workers.points[0].eer_primary;
  ASSERT_FALSE(std::isnan(eer));
  for (const FleetSweepPoint& p : by_workers.points) {
    EXPECT_EQ(p.eer_primary, eer);  // bitwise, not approximate
    EXPECT_EQ(p.scored_primary, by_workers.points[0].scored_primary);
  }

  FleetSweepConfig wide = small_fleet();
  wide.workers = {2};
  wide.batch_window_us = 0;
  wide.batch_max = 1;
  const FleetSweepResult no_batching = run_fleet_sweep(wide, 42);
  ASSERT_EQ(no_batching.points.size(), 1u);
  EXPECT_EQ(no_batching.points[0].eer_primary, eer);
}

TEST(FleetSweepTest, ConservesCountsUnderOverload) {
  FleetSweepConfig cfg = small_fleet();
  cfg.base.offered_rps = {0.5, 10.0};
  cfg.workers = {1, 2};
  const FleetSweepResult result = run_fleet_sweep(cfg, 42);
  ASSERT_EQ(result.points.size(), 4u);  // workers grid x load grid
  for (const FleetSweepPoint& p : result.points) {
    EXPECT_EQ(p.admitted + p.rejected + p.quota_rejected, p.arrivals);
    EXPECT_EQ(p.scored_primary + p.scored_degraded + p.indeterminate +
                  p.errors + p.deadline_missed,
              p.admitted);
  }
  // More workers must not serve less at the overloaded point.
  const FleetSweepPoint& heavy_1w = result.points[1];
  const FleetSweepPoint& heavy_2w = result.points[3];
  ASSERT_EQ(heavy_1w.workers, 1u);
  ASSERT_EQ(heavy_2w.workers, 2u);
  EXPECT_GE(heavy_2w.scored_primary + heavy_2w.scored_degraded,
            heavy_1w.scored_primary + heavy_1w.scored_degraded);
}

TEST(FleetSweepTest, TenantQuotaRejectsAreCountedSeparately) {
  FleetSweepConfig cfg = small_fleet();
  cfg.base.offered_rps = {10.0};
  cfg.workers = {1};
  cfg.tenant_max_queued = 1;  // tight quota forces quota rejections
  const FleetSweepResult result = run_fleet_sweep(cfg, 42);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_GT(result.points[0].quota_rejected, 0u);
  EXPECT_EQ(result.points[0].admitted + result.points[0].rejected +
                result.points[0].quota_rejected,
            result.points[0].arrivals);
}

TEST(FleetSweepTest, SummaryPrintsOneRowPerGridCell) {
  const FleetSweepResult result = run_fleet_sweep(small_fleet(), 42);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("fleet load sweep"), std::string::npos);
  EXPECT_NE(summary.find("wrk"), std::string::npos);
  std::size_t rows = 0;
  for (char c : summary) rows += c == '\n';
  EXPECT_EQ(rows, 2 + result.points.size());
}

TEST(FleetSweepTest, RejectsBadConfig) {
  FleetSweepConfig cfg = small_fleet();
  cfg.workers.clear();
  EXPECT_THROW(run_fleet_sweep(cfg, 1), Error);
  cfg = small_fleet();
  cfg.workers = {0};
  EXPECT_THROW(run_fleet_sweep(cfg, 1), Error);
  cfg = small_fleet();
  cfg.sessions = 0;
  EXPECT_THROW(run_fleet_sweep(cfg, 1), Error);
  cfg = small_fleet();
  cfg.tenants = 0;
  EXPECT_THROW(run_fleet_sweep(cfg, 1), Error);
}

TEST(LoadSweepTest, RejectsBadConfig) {
  LoadSweepConfig cfg = small_config();
  cfg.offered_rps.clear();
  EXPECT_THROW(run_load_sweep(cfg, 1), Error);
  cfg = small_config();
  cfg.offered_rps = {0.0};
  EXPECT_THROW(run_load_sweep(cfg, 1), Error);
  cfg = small_config();
  cfg.num_speakers = 1;
  EXPECT_THROW(run_load_sweep(cfg, 1), Error);
}

}  // namespace
}  // namespace vibguard::eval
