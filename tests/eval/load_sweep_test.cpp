#include "eval/load_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace vibguard::eval {
namespace {

LoadSweepConfig small_config() {
  LoadSweepConfig cfg;
  cfg.num_speakers = 2;
  cfg.legit_trials = 8;
  cfg.attack_trials = 8;
  // One light point (offered interarrival ~10x the service time) and one
  // overloaded point. The heavy rate is deliberately moderate (~1.5x the
  // service rate, not 1000x): the queue must stay saturated yet keep
  // draining, so the server both rejects at the full queue AND works
  // through enough stale requests to string consecutive deadline misses
  // together — an arrival burst far faster than the server just bounces
  // everything off the queue before a second miss can happen — and the
  // post-trip backlog still has budget left to be answered degraded.
  cfg.offered_rps = {0.5, 10.0};
  cfg.service_us_primary = 150'000;
  cfg.service_us_degraded = 30'000;
  cfg.deadline_us = 400'000;
  cfg.queue_capacity = 4;
  cfg.breaker = serving::BreakerConfig{2, 500'000, 1};
  return cfg;
}

TEST(LoadSweepTest, RunsEndToEndAndConservesCounts) {
  const LoadSweepConfig cfg = small_config();
  const LoadSweepResult result = run_load_sweep(cfg, 42);
  ASSERT_EQ(result.points.size(), cfg.offered_rps.size());
  for (const LoadSweepPoint& p : result.points) {
    EXPECT_EQ(p.arrivals, cfg.legit_trials + cfg.attack_trials);
    // Every arrival is either admitted or rejected...
    EXPECT_EQ(p.admitted + p.rejected, p.arrivals);
    // ...and every admitted request ends in exactly one terminal state.
    EXPECT_EQ(p.scored_primary + p.scored_degraded + p.indeterminate +
                  p.errors + p.deadline_missed,
              p.admitted);
  }
}

TEST(LoadSweepTest, LightLoadServesEverythingInBudget) {
  const LoadSweepResult result = run_load_sweep(small_config(), 42);
  const LoadSweepPoint& light = result.points.front();
  EXPECT_EQ(light.rejected, 0u);
  EXPECT_EQ(light.deadline_missed, 0u);
  EXPECT_EQ(light.scored_degraded, 0u);  // breaker never needed
  EXPECT_GT(light.scored_primary, 0u);
  // With 6+6 mostly-scored trials the primary EER is a real number.
  EXPECT_FALSE(std::isnan(light.eer_primary));
}

TEST(LoadSweepTest, OverloadTriggersBackpressureAndDeadlineMisses) {
  const LoadSweepResult result = run_load_sweep(small_config(), 42);
  const LoadSweepPoint& heavy = result.points.back();
  // At 10 rps against a 150 ms server the queue of 4 cannot keep up:
  // arrivals bounce off the full queue, queued requests blow their 400 ms
  // budgets, consecutive misses trip the breaker, and the remaining
  // backlog is answered on the cheap degraded path within budget.
  EXPECT_GT(heavy.rejected, 0u);
  EXPECT_GT(heavy.deadline_missed, 0u);
  EXPECT_GT(heavy.breaker_trips, 0u);
  EXPECT_GT(heavy.scored_degraded, 0u);
  EXPECT_GT(heavy.mean_queue_us, 0.0);
}

TEST(LoadSweepTest, DeterministicForSameSeed) {
  const LoadSweepConfig cfg = small_config();
  const LoadSweepResult a = run_load_sweep(cfg, 7);
  const LoadSweepResult b = run_load_sweep(cfg, 7);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].admitted, b.points[i].admitted);
    EXPECT_EQ(a.points[i].rejected, b.points[i].rejected);
    EXPECT_EQ(a.points[i].deadline_missed, b.points[i].deadline_missed);
    EXPECT_EQ(a.points[i].scored_primary, b.points[i].scored_primary);
    EXPECT_EQ(a.points[i].scored_degraded, b.points[i].scored_degraded);
    EXPECT_EQ(a.points[i].breaker_trips, b.points[i].breaker_trips);
    EXPECT_DOUBLE_EQ(a.points[i].mean_queue_us, b.points[i].mean_queue_us);
    if (!std::isnan(a.points[i].eer_primary)) {
      EXPECT_DOUBLE_EQ(a.points[i].eer_primary, b.points[i].eer_primary);
    }
  }
}

TEST(LoadSweepTest, SummaryPrintsOneRowPerLoadPoint) {
  const LoadSweepResult result = run_load_sweep(small_config(), 42);
  const std::string summary = result.summary();
  EXPECT_NE(summary.find("load sweep"), std::string::npos);
  EXPECT_NE(summary.find("EERpri"), std::string::npos);
  std::size_t rows = 0;
  for (char c : summary) rows += c == '\n';
  EXPECT_EQ(rows, 2 + result.points.size());  // title + header + points
}

TEST(LoadSweepTest, RejectsBadConfig) {
  LoadSweepConfig cfg = small_config();
  cfg.offered_rps.clear();
  EXPECT_THROW(run_load_sweep(cfg, 1), Error);
  cfg = small_config();
  cfg.offered_rps = {0.0};
  EXPECT_THROW(run_load_sweep(cfg, 1), Error);
  cfg = small_config();
  cfg.num_speakers = 1;
  EXPECT_THROW(run_load_sweep(cfg, 1), Error);
}

}  // namespace
}  // namespace vibguard::eval
