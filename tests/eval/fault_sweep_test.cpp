#include "eval/fault_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace vibguard::eval {
namespace {

FaultSweepConfig small_config() {
  FaultSweepConfig cfg;
  cfg.num_speakers = 2;
  cfg.legit_trials = 3;
  cfg.attack_trials = 3;
  cfg.severities = {0.0, 1.0};
  return cfg;
}

bool same_metric(double a, double b) {
  return (std::isnan(a) && std::isnan(b)) || a == b;
}

TEST(FaultSweepTest, DeterministicAcrossRunsAndThreadCounts) {
  FaultSweepConfig cfg = small_config();
  cfg.threads = 1;
  const auto first = run_fault_sweep(cfg, 77);
  const auto second = run_fault_sweep(cfg, 77);
  cfg.threads = 2;
  const auto threaded = run_fault_sweep(cfg, 77);

  ASSERT_EQ(first.points.size(), 2u);
  for (const auto* other : {&second, &threaded}) {
    ASSERT_EQ(other->points.size(), first.points.size());
    for (std::size_t i = 0; i < first.points.size(); ++i) {
      const auto& a = first.points[i];
      const auto& b = other->points[i];
      EXPECT_EQ(a.scored, b.scored) << "point " << i;
      EXPECT_EQ(a.indeterminate, b.indeterminate) << "point " << i;
      EXPECT_EQ(a.errors, b.errors) << "point " << i;
      EXPECT_TRUE(same_metric(a.eer, b.eer)) << "point " << i;
      EXPECT_TRUE(same_metric(a.auc, b.auc)) << "point " << i;
    }
  }
}

TEST(FaultSweepTest, EveryTrialIsAccountedForAtEverySeverity) {
  FaultSweepConfig cfg = small_config();
  cfg.severities = {0.0, 0.5, 1.0};
  cfg.fault = faults::FaultKind::kTruncation;
  const auto result = run_fault_sweep(cfg, 5);
  ASSERT_EQ(result.points.size(), 3u);
  const std::size_t total = cfg.legit_trials + cfg.attack_trials;
  for (const auto& p : result.points) {
    EXPECT_EQ(p.scored + p.indeterminate + p.errors, total)
        << "severity " << p.severity;
  }
}

TEST(FaultSweepTest, ZeroSeverityBaselineScoresEveryTrial) {
  const auto result = run_fault_sweep(small_config(), 9);
  const auto& base = result.points.front();
  EXPECT_DOUBLE_EQ(base.severity, 0.0);
  EXPECT_EQ(base.scored, 6u);
  EXPECT_EQ(base.indeterminate, 0u);
  EXPECT_EQ(base.errors, 0u);
  EXPECT_TRUE(std::isfinite(base.eer));
  EXPECT_TRUE(std::isfinite(base.auc));
}

TEST(FaultSweepTest, NonFiniteFaultDivertsTrialsToIndeterminate) {
  FaultSweepConfig cfg = small_config();
  cfg.fault = faults::FaultKind::kNonFinite;
  const auto result = run_fault_sweep(cfg, 11);
  const auto& severe = result.points.back();
  // Heavy NaN contamination: the permissive gate must divert trials rather
  // than let garbage scores through, and under-populated classes report NaN
  // metrics instead of a fabricated curve.
  EXPECT_GT(severe.indeterminate, 0u);
  if (severe.scored < 4) {
    EXPECT_TRUE(std::isnan(severe.eer));
  }
}

TEST(FaultSweepTest, SummaryNamesFaultAndSeverities) {
  FaultSweepConfig cfg = small_config();
  cfg.fault = faults::FaultKind::kClipping;
  const auto result = run_fault_sweep(cfg, 13);
  EXPECT_EQ(result.fault, faults::FaultKind::kClipping);
  EXPECT_EQ(result.fault_label, "clipping");
  const std::string text = result.summary();
  EXPECT_NE(text.find("clipping"), std::string::npos);
  EXPECT_NE(text.find("severity"), std::string::npos);
}

}  // namespace
}  // namespace vibguard::eval
