#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard::eval {
namespace {

TEST(MetricsTest, RatesAtThreshold) {
  const std::vector<double> attacks = {0.1, 0.2, 0.3, 0.9};
  const std::vector<double> legits = {0.5, 0.8, 0.9, 0.95};
  EXPECT_DOUBLE_EQ(true_detection_rate(attacks, 0.4), 0.75);
  EXPECT_DOUBLE_EQ(false_detection_rate(legits, 0.4), 0.0);
  EXPECT_DOUBLE_EQ(false_detection_rate(legits, 0.85), 0.5);
}

TEST(MetricsTest, PerfectSeparationGivesAucOneEerZero) {
  const std::vector<double> attacks = {0.0, 0.1, 0.2};
  const std::vector<double> legits = {0.8, 0.9, 1.0};
  const auto roc = compute_roc(attacks, legits);
  EXPECT_NEAR(roc.auc, 1.0, 1e-9);
  EXPECT_NEAR(roc.eer, 0.0, 1e-9);
  EXPECT_GT(roc.eer_threshold, 0.2);
  EXPECT_LT(roc.eer_threshold, 0.8 + 1e-9);
}

TEST(MetricsTest, IdenticalDistributionsGiveChanceAuc) {
  Rng rng(1);
  std::vector<double> a(2000), b(2000);
  for (double& v : a) v = rng.uniform();
  for (double& v : b) v = rng.uniform();
  const auto roc = compute_roc(a, b);
  EXPECT_NEAR(roc.auc, 0.5, 0.05);
  EXPECT_NEAR(roc.eer, 0.5, 0.05);
}

TEST(MetricsTest, InvertedScoresGiveAucBelowHalf) {
  // Attacks scoring HIGHER than legit -> the detector is worse than chance.
  const std::vector<double> attacks = {0.8, 0.9, 1.0};
  const std::vector<double> legits = {0.0, 0.1, 0.2};
  const auto roc = compute_roc(attacks, legits);
  EXPECT_LT(roc.auc, 0.1);
  EXPECT_GT(roc.eer, 0.9);
}

TEST(MetricsTest, PartialOverlapIntermediateValues) {
  const std::vector<double> attacks = {0.1, 0.2, 0.45, 0.55};
  const std::vector<double> legits = {0.4, 0.5, 0.8, 0.9};
  const auto roc = compute_roc(attacks, legits);
  EXPECT_GT(roc.auc, 0.5);
  EXPECT_LT(roc.auc, 1.0);
  EXPECT_GT(roc.eer, 0.0);
  EXPECT_LT(roc.eer, 0.5);
}

TEST(MetricsTest, RocPointsMonotone) {
  Rng rng(2);
  std::vector<double> a(200), b(200);
  for (double& v : a) v = rng.gaussian(0.3, 0.2);
  for (double& v : b) v = rng.gaussian(0.7, 0.2);
  const auto roc = compute_roc(a, b);
  for (std::size_t i = 1; i < roc.points.size(); ++i) {
    EXPECT_GE(roc.points[i].fdr, roc.points[i - 1].fdr);
    EXPECT_GE(roc.points[i].tdr, roc.points[i - 1].tdr);
    EXPECT_GT(roc.points[i].threshold, roc.points[i - 1].threshold);
  }
  EXPECT_NEAR(roc.points.front().tdr, 0.0, 1e-9);
  EXPECT_NEAR(roc.points.back().tdr, 1.0, 1e-9);
}

TEST(MetricsTest, EerBalancesErrorRates) {
  Rng rng(3);
  std::vector<double> a(5000), b(5000);
  for (double& v : a) v = rng.gaussian(0.4, 0.1);
  for (double& v : b) v = rng.gaussian(0.6, 0.1);
  const auto roc = compute_roc(a, b);
  const double fdr = false_detection_rate(b, roc.eer_threshold);
  const double miss = 1.0 - true_detection_rate(a, roc.eer_threshold);
  EXPECT_NEAR(fdr, miss, 0.02);
  // Two equal Gaussians separated by 2 sigma -> EER = Phi(-1) ~ 15.9%.
  EXPECT_NEAR(roc.eer, 0.159, 0.02);
}

TEST(MetricsTest, EerInterpolatesBetweenGridPoints) {
  // Analytically known crossing (the PR 3 EER-quantization regression):
  // with attacks {0.2, 0.6} and legits {0.3, 0.4, 0.5}, the gap
  // g = FDR - miss is -1/6 at threshold 0.4 and +1/6 at threshold 0.5
  // without ever hitting zero on the grid. The documented linear
  // interpolation lands exactly halfway: EER = 1/2 at threshold 0.45.
  // Snapping to the nearest grid point instead would report 5/12.
  const std::vector<double> attacks = {0.2, 0.6};
  const std::vector<double> legits = {0.3, 0.4, 0.5};
  const auto roc = compute_roc(attacks, legits);
  EXPECT_NEAR(roc.eer, 0.5, 1e-12);
  EXPECT_NEAR(roc.eer_threshold, 0.45, 1e-12);
}

TEST(MetricsTest, EerExactGridCrossingIsPreserved) {
  // Here the crossing lands exactly on a grid point: at threshold 0.4 both
  // FDR and the miss rate equal 1/2.
  const std::vector<double> attacks = {0.2, 0.4};
  const std::vector<double> legits = {0.3, 0.5};
  const auto roc = compute_roc(attacks, legits);
  EXPECT_NEAR(roc.eer, 0.5, 1e-12);
  EXPECT_NEAR(roc.eer_threshold, 0.4, 1e-12);
}

TEST(MetricsTest, RejectsEmptyPopulations) {
  const std::vector<double> some = {0.5};
  EXPECT_THROW(compute_roc({}, some), vibguard::InvalidArgument);
  EXPECT_THROW(compute_roc(some, {}), vibguard::InvalidArgument);
}

TEST(MetricsTest, EmptyPopulationRatesAreZero) {
  EXPECT_DOUBLE_EQ(true_detection_rate({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(false_detection_rate({}, 0.5), 0.0);
}

}  // namespace
}  // namespace vibguard::eval
