#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace vibguard::eval {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.legit_trials = 8;
  cfg.attack_trials = 8;
  cfg.num_speakers = 4;
  return cfg;
}

TEST(ExperimentTest, ReferenceSensitiveSetHas29Phonemes) {
  const auto& set = reference_sensitive_set();
  EXPECT_EQ(set.size(), 29u);
  // Paper-named Criterion-I failures are excluded...
  EXPECT_EQ(set.count("aa"), 0u);
  EXPECT_EQ(set.count("ao"), 0u);
  // ...and representative strong phonemes are included.
  EXPECT_EQ(set.count("t"), 1u);
  EXPECT_EQ(set.count("ae"), 1u);
  EXPECT_EQ(set.count("s"), 1u);
}

TEST(ExperimentTest, RunProducesRequestedPopulations) {
  ExperimentRunner runner(small_config(), 1);
  const auto results =
      runner.run(attacks::AttackType::kReplay, {core::DefenseMode::kFull});
  ASSERT_EQ(results.size(), 1u);
  const auto& pops = results.at(core::DefenseMode::kFull);
  EXPECT_EQ(pops.legit.size(), 8u);
  EXPECT_EQ(pops.attack.size(), 8u);
}

TEST(ExperimentTest, MultipleModesShareTrials) {
  ExperimentRunner runner(small_config(), 2);
  const auto results = runner.run(
      attacks::AttackType::kReplay,
      {core::DefenseMode::kFull, core::DefenseMode::kAudioBaseline});
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(results.at(core::DefenseMode::kAudioBaseline).legit.size(), 8u);
}

TEST(ExperimentTest, FullModeSeparatesAttacks) {
  ExperimentConfig cfg = small_config();
  cfg.legit_trials = 10;
  cfg.attack_trials = 10;
  ExperimentRunner runner(cfg, 3);
  const auto results =
      runner.run(attacks::AttackType::kReplay, {core::DefenseMode::kFull});
  const auto roc = results.at(core::DefenseMode::kFull).roc();
  EXPECT_GT(roc.auc, 0.8);
  EXPECT_LT(roc.eer, 0.3);
}

TEST(ExperimentTest, ScoresAreFinite) {
  ExperimentRunner runner(small_config(), 4);
  const auto results = runner.run(attacks::AttackType::kHiddenVoice,
                                  {core::DefenseMode::kFull});
  for (double s : results.at(core::DefenseMode::kFull).legit) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, -1.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  ExperimentRunner r1(small_config(), 5);
  ExperimentRunner r2(small_config(), 5);
  const auto a =
      r1.run(attacks::AttackType::kRandom, {core::DefenseMode::kFull});
  const auto b =
      r2.run(attacks::AttackType::kRandom, {core::DefenseMode::kFull});
  const auto& pa = a.at(core::DefenseMode::kFull);
  const auto& pb = b.at(core::DefenseMode::kFull);
  for (std::size_t i = 0; i < pa.legit.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa.legit[i], pb.legit[i]);
  }
}

TEST(ExperimentTest, ScoresAreBitIdenticalAtEveryThreadCount) {
  auto run_with = [](std::size_t threads) {
    ExperimentConfig cfg = small_config();
    cfg.threads = threads;
    ExperimentRunner runner(cfg, 7);
    return runner.run(attacks::AttackType::kReplay,
                      {core::DefenseMode::kFull,
                       core::DefenseMode::kAudioBaseline});
  };
  const auto serial = run_with(1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto parallel = run_with(threads);
    for (const auto& [mode, expected] : serial) {
      const auto& got = parallel.at(mode);
      ASSERT_EQ(got.legit.size(), expected.legit.size());
      ASSERT_EQ(got.attack.size(), expected.attack.size());
      for (std::size_t i = 0; i < expected.legit.size(); ++i) {
        EXPECT_DOUBLE_EQ(got.legit[i], expected.legit[i])
            << "legit trial " << i << " with " << threads << " threads";
      }
      for (std::size_t i = 0; i < expected.attack.size(); ++i) {
        EXPECT_DOUBLE_EQ(got.attack[i], expected.attack[i])
            << "attack trial " << i << " with " << threads << " threads";
      }
    }
  }
}

TEST(ExperimentTest, PopulationsAreCachedPerAttackAndMode) {
  ExperimentRunner runner(small_config(), 8);
  const auto first =
      runner.run(attacks::AttackType::kReplay, {core::DefenseMode::kFull});
  ASSERT_EQ(runner.cached_populations().size(), 1u);

  // eer() for the same pair is served from the cache: no new entries, and
  // the value matches the ROC of the cached populations.
  const double eer =
      runner.eer(attacks::AttackType::kReplay, core::DefenseMode::kFull);
  EXPECT_EQ(runner.cached_populations().size(), 1u);
  EXPECT_DOUBLE_EQ(eer, first.at(core::DefenseMode::kFull).roc().eer);

  // Repeat runs return the cached scores verbatim.
  const auto second =
      runner.run(attacks::AttackType::kReplay, {core::DefenseMode::kFull});
  EXPECT_EQ(second.at(core::DefenseMode::kFull).legit,
            first.at(core::DefenseMode::kFull).legit);
  EXPECT_EQ(second.at(core::DefenseMode::kFull).attack,
            first.at(core::DefenseMode::kFull).attack);

  // A different (attack, mode) pair is a fresh cache entry.
  runner.eer(attacks::AttackType::kRandom, core::DefenseMode::kFull);
  EXPECT_EQ(runner.cached_populations().size(), 2u);
}

TEST(ExperimentTest, CachedAndFreshModesCompose) {
  // Scoring kFull first and adding kAudioBaseline later must give the same
  // populations as scoring both at once: each mode's scores are independent
  // of which other modes were requested alongside it.
  ExperimentRunner incremental(small_config(), 9);
  incremental.run(attacks::AttackType::kReplay, {core::DefenseMode::kFull});
  const auto mixed = incremental.run(
      attacks::AttackType::kReplay,
      {core::DefenseMode::kFull, core::DefenseMode::kAudioBaseline});

  ExperimentRunner oneshot(small_config(), 9);
  const auto together = oneshot.run(
      attacks::AttackType::kReplay,
      {core::DefenseMode::kFull, core::DefenseMode::kAudioBaseline});

  for (const auto& [mode, expected] : together) {
    const auto& got = mixed.at(mode);
    ASSERT_EQ(got.legit.size(), expected.legit.size());
    for (std::size_t i = 0; i < expected.legit.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.legit[i], expected.legit[i])
          << core::mode_name(mode) << " legit trial " << i;
    }
    for (std::size_t i = 0; i < expected.attack.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.attack[i], expected.attack[i])
          << core::mode_name(mode) << " attack trial " << i;
    }
  }
}

TEST(ExperimentTest, EerHelperMatchesRun) {
  ExperimentRunner runner(small_config(), 6);
  const double eer =
      runner.eer(attacks::AttackType::kReplay, core::DefenseMode::kFull);
  EXPECT_GE(eer, 0.0);
  EXPECT_LE(eer, 1.0);
}

TEST(ExperimentTest, RejectsTooFewSpeakers) {
  ExperimentConfig cfg = small_config();
  cfg.num_speakers = 1;
  EXPECT_THROW(ExperimentRunner(cfg, 1), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::eval
