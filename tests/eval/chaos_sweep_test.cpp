// Chaos sweep acceptance: every arrival lands in exactly one accounting
// bucket under every default scenario, a mid-run crash fails over with
// nothing silently lost, growth restores the fleet, the no-fault scenario
// is bit-identical to the fleet sweep (chaos machinery adds zero
// perturbation when no fault fires), a fixed (seed, chaos_seed)
// reproduces the exact run, and the remediation trio each fires its rung:
// slow_steal cuts the answered queue-wait tail versus a no-steal control,
// wedge_recover quarantines and restores without a failover, and
// overload_grow ends with a larger fleet and nothing silently lost.
#include "eval/chaos_sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "eval/load_sweep.hpp"

namespace vibguard::eval {
namespace {

constexpr std::uint64_t kSeed = 2026;

LoadSweepConfig small_base() {
  LoadSweepConfig base;
  base.num_speakers = 2;
  base.legit_trials = 8;
  base.attack_trials = 8;
  return base;
}

ChaosSweepConfig small_config() {
  ChaosSweepConfig config;
  config.base = small_base();
  config.offered_rps = 30.0;
  config.workers = 3;
  return config;
}

/// Exact double equality where NaN == NaN (EER is NaN when a route kept
/// fewer than two scores per class).
bool same_double(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

const ChaosSweepPoint& point_named(const ChaosSweepResult& result,
                                   const std::string& name) {
  for (const ChaosSweepPoint& p : result.points) {
    if (p.scenario == name) return p;
  }
  ADD_FAILURE() << "no scenario named " << name;
  static ChaosSweepPoint none;
  return none;
}

/// The whole sweep, computed once (rendering the population per test
/// would dominate the suite's runtime).
const ChaosSweepResult& sweep() {
  static const ChaosSweepResult result = run_chaos_sweep(small_config(),
                                                         kSeed);
  return result;
}

TEST(ChaosSweepTest, EveryDefaultScenarioAccountsForEveryArrival) {
  const ChaosSweepResult& result = sweep();
  // none + 4 fault kinds + crash_grow + the remediation trio.
  ASSERT_EQ(result.points.size(), 9u);
  for (const ChaosSweepPoint& p : result.points) {
    EXPECT_TRUE(p.accounted) << p.scenario;
    EXPECT_GT(p.arrivals, 0u) << p.scenario;
    EXPECT_EQ(p.arrivals,
              p.rejected + p.quota_rejected + p.closed_rejected + p.answered +
                  p.deadline_missed + p.migration_dropped + p.results_lost +
                  p.stranded)
        << p.scenario;
    EXPECT_GT(p.answered, 0u) << p.scenario;
    EXPECT_GT(p.availability, 0.0) << p.scenario;
    EXPECT_LE(p.availability, 1.0) << p.scenario;
  }
}

TEST(ChaosSweepTest, NoFaultScenarioSeesNoChaos) {
  const ChaosSweepPoint& none = point_named(sweep(), "none");
  EXPECT_EQ(none.failovers, 0u);
  EXPECT_EQ(none.sessions_migrated, 0u);
  EXPECT_EQ(none.results_lost, 0u);
  EXPECT_EQ(none.migration_dropped, 0u);
  EXPECT_EQ(none.closed_rejected, 0u);
  EXPECT_EQ(none.workers_end, none.workers_start);
}

TEST(ChaosSweepTest, CrashFailsOverWithNothingSilentlyLost) {
  const ChaosSweepPoint& crash = point_named(sweep(), "crash_w1");
  EXPECT_TRUE(crash.accounted);
  EXPECT_EQ(crash.failovers, 1u);
  EXPECT_EQ(crash.workers_end, crash.workers_start - 1);
  EXPECT_GT(crash.sessions_migrated, 0u);
  // Detection latency: dead_after_us of silence, resolved at poll
  // granularity. The last beat can predate the crash by up to one poll
  // tick (the age clock starts at the beat, not the crash), so detection
  // lands within one poll either side of the threshold.
  const ChaosSweepConfig config = small_config();
  EXPECT_GE(crash.detect_us,
            config.supervisor.dead_after_us - config.supervisor_poll_us);
  EXPECT_LE(crash.detect_us,
            config.supervisor.dead_after_us + 2 * config.supervisor_poll_us);
  // The survivors drained everything: nothing stranded at the bound, and
  // the fleet kept answering after the failover completed.
  EXPECT_EQ(crash.stranded, 0u);
  EXPECT_GT(crash.post_failover_availability, 0.0);
}

TEST(ChaosSweepTest, GrowthRestoresTheFleetAfterACrash) {
  const ChaosSweepPoint& grow = point_named(sweep(), "crash_grow");
  EXPECT_TRUE(grow.accounted);
  EXPECT_EQ(grow.failovers, 1u);
  EXPECT_EQ(grow.workers_end, grow.workers_start);  // one lost, one grown
  EXPECT_EQ(grow.stranded, 0u);
  // Post-recovery acceptance beats the still-degraded crash scenario's.
  const ChaosSweepPoint& crash = point_named(sweep(), "crash_w1");
  EXPECT_GE(grow.availability, crash.availability);
}

TEST(ChaosSweepTest, LossyFaultEatsRepliesButNeverTheAccounting) {
  // The default lossy_w1 scenario can legitimately lose zero replies on a
  // small population (one worker, p=0.3), so force the issue: every reply
  // on every worker is eaten. Nothing is answered, everything lands in
  // results_lost (or another explicit bucket) — the identity still holds.
  ChaosSweepConfig config = small_config();
  faults::ChaosPlan plan;
  for (std::size_t w = 0; w < config.workers; ++w) {
    plan.lossy(w, 0, UINT64_MAX, 1.0);
  }
  config.scenarios.push_back({"lossy_all", plan, std::nullopt, std::nullopt});
  const ChaosSweepResult result = run_chaos_sweep(config, kSeed);
  ASSERT_EQ(result.points.size(), 1u);
  const ChaosSweepPoint& lossy = result.points[0];
  EXPECT_TRUE(lossy.accounted);
  EXPECT_GT(lossy.results_lost, 0u);
  EXPECT_EQ(lossy.answered, 0u);
  EXPECT_EQ(lossy.failovers, 0u);  // lossy workers still heartbeat

  // And the default single-worker lossy scenario stays fully accounted
  // whether or not any draw actually fired.
  const ChaosSweepPoint& dflt = point_named(sweep(), "lossy_w1");
  EXPECT_TRUE(dflt.accounted);
  EXPECT_EQ(dflt.failovers, 0u);
}

TEST(ChaosSweepTest, NoFaultScenarioIsBitIdenticalToFleetSweep) {
  // The chaos driver with an empty plan must be the fleet sweep, exactly:
  // same arrivals, same admissions, same scores — the chaos machinery
  // (controller queries, supervisor polls, heartbeats) adds zero
  // perturbation until a fault actually fires.
  ChaosSweepConfig chaos_cfg = small_config();
  chaos_cfg.scenarios.push_back(
      {"none", faults::ChaosPlan{}, std::nullopt, std::nullopt});
  const ChaosSweepResult chaos = run_chaos_sweep(chaos_cfg, kSeed);
  ASSERT_EQ(chaos.points.size(), 1u);
  const ChaosSweepPoint& c = chaos.points[0];

  FleetSweepConfig fleet_cfg;
  fleet_cfg.base = small_base();
  fleet_cfg.base.offered_rps = {chaos_cfg.offered_rps};
  fleet_cfg.workers = {chaos_cfg.workers};
  fleet_cfg.sessions = chaos_cfg.sessions;
  fleet_cfg.tenants = chaos_cfg.tenants;
  fleet_cfg.batch_max = chaos_cfg.batch_max;
  fleet_cfg.batch_window_us = chaos_cfg.batch_window_us;
  fleet_cfg.batch_setup_us = chaos_cfg.batch_setup_us;
  fleet_cfg.ring_replicas = chaos_cfg.ring_replicas;
  const FleetSweepResult fleet = run_fleet_sweep(fleet_cfg, kSeed);
  ASSERT_EQ(fleet.points.size(), 1u);
  const FleetSweepPoint& f = fleet.points[0];

  EXPECT_EQ(c.arrivals, f.arrivals);
  EXPECT_EQ(c.admitted, f.admitted);
  EXPECT_EQ(c.rejected, f.rejected);
  EXPECT_EQ(c.quota_rejected, f.quota_rejected);
  EXPECT_EQ(c.deadline_missed, f.deadline_missed);
  EXPECT_EQ(c.scored_primary, f.scored_primary);
  EXPECT_EQ(c.scored_degraded, f.scored_degraded);
  EXPECT_EQ(c.indeterminate, f.indeterminate);
  EXPECT_EQ(c.errors, f.errors);
  EXPECT_EQ(c.breaker_trips, f.breaker_trips);
  // Bit-identical scores: the EERs agree to the last ulp, not a tolerance.
  EXPECT_TRUE(same_double(c.eer_primary, f.eer_primary))
      << c.eer_primary << " vs " << f.eer_primary;
  EXPECT_TRUE(same_double(c.eer_degraded, f.eer_degraded))
      << c.eer_degraded << " vs " << f.eer_degraded;
}

TEST(ChaosSweepTest, SlowStealScenarioStealsAndRemediatesQuickly) {
  const ChaosSweepPoint& steal = point_named(sweep(), "slow_steal");
  EXPECT_TRUE(steal.accounted);
  EXPECT_GT(steal.steals, 0u);
  EXPECT_GT(steal.items_stolen, 0u);
  // The rung it exercises is the ONLY one that fires.
  EXPECT_EQ(steal.quarantines, 0u);
  EXPECT_EQ(steal.grows, 0u);
  EXPECT_EQ(steal.failovers, 0u);
  // Time-to-remediate: the first steal lands within a few polls of the
  // first stall (the victim must cross slow_after first, so it cannot be
  // instant either).
  EXPECT_GT(steal.remediate_us, 0u);
  EXPECT_LE(steal.remediate_us, 100'000u);
}

TEST(ChaosSweepTest, StealingCutsTheQueueTailVersusNoStealControl) {
  // Same fault plan twice — three 40 ms stalls on worker 1 — once with
  // the steal rung on, once with remediation off entirely. Stealing must
  // strictly cut the p95 queue wait of what got answered: that tail is
  // the reason the rung exists.
  ChaosSweepConfig config = small_config();
  faults::ChaosPlan plan;
  for (std::uint64_t at : {100'000u, 200'000u, 300'000u}) {
    plan.stall(1, at, at + 40'000);
  }
  serving::RemediationConfig steal_on;
  steal_on.enabled = true;
  steal_on.steal = true;
  steal_on.steal_min_depth = 1;
  steal_on.quarantine = false;
  steal_on.grow = false;
  config.scenarios.push_back({"steal_on", plan, std::nullopt, steal_on});
  config.scenarios.push_back({"steal_off", plan, std::nullopt, std::nullopt});

  const ChaosSweepResult result = run_chaos_sweep(config, kSeed);
  ASSERT_EQ(result.points.size(), 2u);
  const ChaosSweepPoint& on = point_named(result, "steal_on");
  const ChaosSweepPoint& off = point_named(result, "steal_off");
  EXPECT_TRUE(on.accounted);
  EXPECT_TRUE(off.accounted);
  EXPECT_GT(on.items_stolen, 0u);
  EXPECT_EQ(off.items_stolen, 0u);
  EXPECT_LT(on.queue_age_p95_us, off.queue_age_p95_us);
}

TEST(ChaosSweepTest, WedgeRecoverQuarantinesAndRestoresWithoutFailover) {
  const ChaosSweepPoint& wedge = point_named(sweep(), "wedge_recover");
  EXPECT_TRUE(wedge.accounted);
  EXPECT_EQ(wedge.quarantines, 1u);
  EXPECT_EQ(wedge.recoveries, 1u);
  EXPECT_EQ(wedge.escalations, 0u);
  EXPECT_EQ(wedge.failovers, 0u);
  // The worker came back: the fleet ends at full strength.
  EXPECT_EQ(wedge.workers_end, wedge.workers_start);
  EXPECT_GT(wedge.remediate_us, 0u);
}

TEST(ChaosSweepTest, OverloadGrowEndsWithMoreWorkersAndNothingLost) {
  const ChaosSweepPoint& grow = point_named(sweep(), "overload_grow");
  EXPECT_TRUE(grow.accounted);  // zero silently-lost requests
  EXPECT_GE(grow.grows, 1u);
  EXPECT_GT(grow.workers_end, grow.workers_start);
  EXPECT_EQ(grow.failovers, 0u);
  EXPECT_EQ(grow.stranded, 0u);
  EXPECT_GT(grow.answered, 0u);
}

TEST(ChaosSweepTest, ScenarioFilterSelectsOneAndRejectsUnknownNames) {
  ChaosSweepConfig config = small_config();
  config.scenario_filter = "wedge_recover";
  const ChaosSweepResult result = run_chaos_sweep(config, kSeed);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].scenario, "wedge_recover");

  config.scenario_filter = "no_such_scenario";
  EXPECT_THROW(run_chaos_sweep(config, kSeed), InvalidArgument);
}

TEST(ChaosSweepTest, FixedSeedsReproduceTheExactRun) {
  const ChaosSweepResult& first = sweep();
  const ChaosSweepResult second = run_chaos_sweep(small_config(), kSeed);
  ASSERT_EQ(second.points.size(), first.points.size());
  for (std::size_t i = 0; i < first.points.size(); ++i) {
    const ChaosSweepPoint& a = first.points[i];
    const ChaosSweepPoint& b = second.points[i];
    EXPECT_EQ(a.scenario, b.scenario);
    EXPECT_EQ(a.answered, b.answered);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.deadline_missed, b.deadline_missed);
    EXPECT_EQ(a.migration_dropped, b.migration_dropped);
    EXPECT_EQ(a.results_lost, b.results_lost);
    EXPECT_EQ(a.stranded, b.stranded);
    EXPECT_EQ(a.failovers, b.failovers);
    EXPECT_EQ(a.sessions_migrated, b.sessions_migrated);
    EXPECT_EQ(a.items_migrated, b.items_migrated);
    EXPECT_EQ(a.detect_us, b.detect_us);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.items_stolen, b.items_stolen);
    EXPECT_EQ(a.quarantines, b.quarantines);
    EXPECT_EQ(a.recoveries, b.recoveries);
    EXPECT_EQ(a.escalations, b.escalations);
    EXPECT_EQ(a.grows, b.grows);
    EXPECT_EQ(a.flap_suppressed, b.flap_suppressed);
    EXPECT_EQ(a.remediate_us, b.remediate_us);
    EXPECT_EQ(a.queue_age_p95_us, b.queue_age_p95_us);
    EXPECT_TRUE(same_double(a.eer_primary, b.eer_primary)) << a.scenario;
    EXPECT_TRUE(same_double(a.availability, b.availability)) << a.scenario;
  }
}

}  // namespace
}  // namespace vibguard::eval
