#include "dsp/filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::dsp {
namespace {

double response_at(const ButterworthFilter& base, double f, double fs) {
  // Measure empirically by filtering a tone and comparing RMS (skip the
  // transient).
  const Signal in = tone(f, 1.0, fs);
  ButterworthFilter filt = base;
  const Signal out = filt.filtered(in);
  const auto steady_in = in.slice(in.size() / 2, in.size());
  const auto steady_out = out.slice(out.size() / 2, out.size());
  return steady_out.rms() / steady_in.rms();
}

TEST(BiquadTest, LowPassAttenuatesHighFrequency) {
  Biquad lp = Biquad::low_pass(100.0, 1000.0, std::numbers::sqrt2 / 2.0);
  EXPECT_NEAR(lp.magnitude_response(2.0 * std::numbers::pi * 10.0 / 1000.0),
              1.0, 0.05);
  EXPECT_LT(lp.magnitude_response(2.0 * std::numbers::pi * 400.0 / 1000.0),
            0.1);
}

TEST(BiquadTest, HighPassAttenuatesLowFrequency) {
  Biquad hp = Biquad::high_pass(100.0, 1000.0, std::numbers::sqrt2 / 2.0);
  EXPECT_LT(hp.magnitude_response(2.0 * std::numbers::pi * 10.0 / 1000.0),
            0.05);
  EXPECT_NEAR(hp.magnitude_response(2.0 * std::numbers::pi * 400.0 / 1000.0),
              1.0, 0.05);
}

TEST(BiquadTest, CutoffIsMinus3Db) {
  Biquad lp = Biquad::low_pass(100.0, 1000.0, std::numbers::sqrt2 / 2.0);
  const double g =
      lp.magnitude_response(2.0 * std::numbers::pi * 100.0 / 1000.0);
  EXPECT_NEAR(g, std::pow(10.0, -3.0 / 20.0), 0.01);
}

TEST(BiquadTest, RejectsInvalidParameters) {
  EXPECT_THROW(Biquad::low_pass(0.0, 1000.0, 0.7), InvalidArgument);
  EXPECT_THROW(Biquad::low_pass(600.0, 1000.0, 0.7), InvalidArgument);
  EXPECT_THROW(Biquad::high_pass(100.0, 1000.0, 0.0), InvalidArgument);
}

TEST(BiquadTest, ResetClearsState) {
  Biquad lp = Biquad::low_pass(50.0, 1000.0, 0.7);
  const double first = lp.process(1.0);
  lp.process(0.5);
  lp.reset();
  EXPECT_DOUBLE_EQ(lp.process(1.0), first);
}

TEST(ButterworthTest, OrderMustBeEvenPositive) {
  EXPECT_THROW(
      ButterworthFilter(ButterworthFilter::Kind::kLowPass, 3, 100.0, 1000.0),
      InvalidArgument);
  EXPECT_THROW(
      ButterworthFilter(ButterworthFilter::Kind::kLowPass, 0, 100.0, 1000.0),
      InvalidArgument);
}

TEST(ButterworthTest, FourthOrderHighPassRollsOffSteeply) {
  ButterworthFilter hp(ButterworthFilter::Kind::kHighPass, 4, 4.0, 200.0);
  EXPECT_LT(response_at(hp, 0.5, 200.0), 0.01);   // deep stopband
  EXPECT_NEAR(response_at(hp, 40.0, 200.0), 1.0, 0.05);  // passband
}

TEST(ButterworthTest, PassbandFlat) {
  ButterworthFilter lp(ButterworthFilter::Kind::kLowPass, 4, 80.0, 1000.0);
  for (double f : {5.0, 10.0, 20.0, 40.0}) {
    EXPECT_NEAR(response_at(lp, f, 1000.0), 1.0, 0.05) << f;
  }
}

TEST(FirTest, LowpassUnityDcGain) {
  const auto taps = design_fir_lowpass(100.0, 1000.0, 51);
  double sum = 0.0;
  for (double t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FirTest, RejectsEvenLength) {
  EXPECT_THROW(design_fir_lowpass(100.0, 1000.0, 50), InvalidArgument);
}

TEST(FirTest, AttenuatesStopband) {
  const auto taps = design_fir_lowpass(50.0, 1000.0, 101);
  const Signal in = tone(300.0, 1.0, 1000.0);
  const auto out = fir_filter(in.samples(), taps);
  Signal out_sig(std::vector<double>(out.begin(), out.end()), 1000.0);
  EXPECT_LT(out_sig.slice(200, 800).rms(), 0.01);
}

TEST(FirTest, PassesPassband) {
  const auto taps = design_fir_lowpass(200.0, 1000.0, 101);
  const Signal in = tone(50.0, 1.0, 1000.0);
  const auto out = fir_filter(in.samples(), taps);
  Signal out_sig(std::vector<double>(out.begin(), out.end()), 1000.0);
  EXPECT_NEAR(out_sig.slice(200, 800).rms(), in.slice(200, 800).rms(), 0.02);
}

TEST(FirTest, GroupDelayCompensated) {
  // A pulse at the center should stay at the center.
  std::vector<double> x(101, 0.0);
  x[50] = 1.0;
  const auto taps = design_fir_lowpass(100.0, 1000.0, 31);
  const auto y = fir_filter(x, taps);
  std::size_t peak = 0;
  for (std::size_t i = 1; i < y.size(); ++i) {
    if (y[i] > y[peak]) peak = i;
  }
  EXPECT_EQ(peak, 50u);
}

TEST(GainCurveTest, FlatUnityGainIsIdentity) {
  Rng rng(1);
  const Signal in = white_noise(0.5, 1000.0, 1.0, rng);
  const Signal out = apply_gain_curve(in, [](double) { return 1.0; });
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_NEAR(out[i], in[i], 1e-9);
  }
}

TEST(GainCurveTest, BandStopRemovesBand) {
  const Signal in = tone(100.0, 1.0, 1000.0);
  const Signal out = apply_gain_curve(
      in, [](double f) { return (f > 60.0 && f < 140.0) ? 0.0 : 1.0; });
  // Zero-padding to the FFT grid leaks some tone energy outside the band.
  EXPECT_LT(out.rms(), 0.15 * in.rms());
}

TEST(GainCurveTest, ScalesAmplitudeByGainAtToneFrequency) {
  const Signal in = tone(100.0, 1.0, 1000.0);
  const Signal out =
      apply_gain_curve(in, [](double f) { return f > 50.0 ? 0.25 : 1.0; });
  EXPECT_NEAR(out.slice(100, 900).rms(), 0.25 * in.slice(100, 900).rms(),
              0.01);
}

TEST(GainCurveTest, OutputStaysReal) {
  Rng rng(2);
  const Signal in = white_noise(0.3, 1000.0, 1.0, rng);
  const Signal out =
      apply_gain_curve(in, [](double f) { return 1.0 / (1.0 + f / 100.0); });
  for (double v : out) EXPECT_TRUE(std::isfinite(v));
}

TEST(GainCurveTest, EmptySignalPassesThrough) {
  const Signal in({}, 1000.0);
  const Signal out = apply_gain_curve(in, [](double) { return 1.0; });
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace vibguard::dsp
