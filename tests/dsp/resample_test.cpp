#include "dsp/resample.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::dsp {
namespace {

/// Frequency of the strongest bin of a signal.
double dominant_frequency(const Signal& s) {
  const auto mag = magnitude_spectrum(s.samples());
  std::size_t best = 1;  // skip DC
  for (std::size_t k = 2; k < mag.size(); ++k) {
    if (mag[k] > mag[best]) best = k;
  }
  return bin_frequency(best, s.size(), s.sample_rate());
}

TEST(ResampleTest, OutputLengthMatchesRateRatio) {
  const Signal in = Signal::zeros(16000, 16000.0);
  const Signal out = resample(in, 8000.0);
  EXPECT_NEAR(static_cast<double>(out.size()), 8000.0, 2.0);
  EXPECT_DOUBLE_EQ(out.sample_rate(), 8000.0);
}

TEST(ResampleTest, ToneSurvivesDownsamplingWithinBand) {
  const Signal in = tone(50.0, 2.0, 16000.0);
  const Signal out = resample(in, 400.0);
  EXPECT_NEAR(dominant_frequency(out), 50.0, 1.0);
}

TEST(ResampleTest, AntiAliasRemovesOutOfBandTone) {
  // 3000 Hz tone downsampled to 400 Hz must (mostly) vanish, not alias.
  const Signal in = tone(3000.0, 2.0, 16000.0);
  const Signal out = resample(in, 400.0);
  EXPECT_LT(out.rms(), 0.05 * in.rms());
}

TEST(ResampleTest, SameRateIsCopy) {
  Rng rng(1);
  const Signal in = white_noise(0.1, 1000.0, 1.0, rng);
  const Signal out = resample(in, 1000.0);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], in[i]);
  }
}

TEST(DecimateAliasTest, FoldsHighFrequencyIntoBand) {
  // 230 Hz sampled at 200 Hz aliases to |230 - 200| = 30 Hz.
  const Signal in = tone(230.0, 4.0, 16000.0);
  const Signal out = decimate_alias(in, 200.0);
  EXPECT_NEAR(dominant_frequency(out), 30.0, 1.5);
  // Energy is preserved (no anti-alias attenuation).
  EXPECT_NEAR(out.rms(), in.rms(), 0.05 * in.rms());
}

TEST(DecimateAliasTest, MirrorsAroundNyquist) {
  // 130 Hz at 200 Hz sampling aliases to 200 - 130 = 70 Hz.
  const Signal in = tone(130.0, 4.0, 16000.0);
  const Signal out = decimate_alias(in, 200.0);
  EXPECT_NEAR(dominant_frequency(out), 70.0, 1.5);
}

TEST(DecimateAliasTest, InBandToneUnchanged) {
  const Signal in = tone(40.0, 4.0, 16000.0);
  const Signal out = decimate_alias(in, 200.0);
  EXPECT_NEAR(dominant_frequency(out), 40.0, 1.0);
}

TEST(DecimateAliasTest, IntoSelfAliasingMatchesFreshOutput) {
  // The PR 3 aliasing regression: decimate_alias_into used to reset/resize
  // `out` before reading `in`, so passing the same Signal for both
  // destroyed the input mid-read and produced (mostly) zeros.
  Rng rng(7);
  const Signal in = white_noise(0.5, 16000.0, 0.3, rng);
  const Signal expected = decimate_alias(in, 200.0);
  Signal sig = in;
  decimate_alias_into(sig, 200.0, sig);
  ASSERT_EQ(sig.size(), expected.size());
  EXPECT_DOUBLE_EQ(sig.sample_rate(), 200.0);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_DOUBLE_EQ(sig[i], expected[i]) << "sample " << i;
  }
}

TEST(DecimateAliasTest, IntoReusesOutputAcrossCalls) {
  Rng rng(8);
  const Signal a = white_noise(0.25, 16000.0, 0.3, rng);
  const Signal b = white_noise(0.5, 8000.0, 0.3, rng);
  Signal out;
  decimate_alias_into(a, 200.0, out);
  decimate_alias_into(b, 150.0, out);
  const Signal fresh = decimate_alias(b, 150.0);
  ASSERT_EQ(out.size(), fresh.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], fresh[i]) << "sample " << i;
  }
}

TEST(SampleLinearTest, EmptyInputYieldsEmptyAtTargetRate) {
  // A default-constructed Signal has sample rate 0; the empty guard must
  // keep the in/out ratio from going 0/0.
  const Signal empty;
  const Signal out = sample_linear(empty, 100.0);
  EXPECT_TRUE(out.empty());
  EXPECT_DOUBLE_EQ(out.sample_rate(), 100.0);
}

TEST(DecimateAliasTest, RejectsUpsampling) {
  const Signal in = Signal::zeros(100, 100.0);
  EXPECT_THROW(decimate_alias(in, 200.0), InvalidArgument);
}

TEST(ResampleTest, RejectsNonPositiveRate) {
  const Signal in = Signal::zeros(10, 100.0);
  EXPECT_THROW(resample(in, 0.0), InvalidArgument);
  EXPECT_THROW(decimate_alias(in, -5.0), InvalidArgument);
}

TEST(SampleLinearTest, HalvingRateKeepsEverySecondSample) {
  Signal in({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, 8.0);
  const Signal out = sample_linear(in, 4.0);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[3], 6.0);
}

}  // namespace
}  // namespace vibguard::dsp
