// Cross-cutting DSP property tests: invariants that must hold across broad
// parameter sweeps rather than at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/filter.hpp"
#include "dsp/generate.hpp"
#include "dsp/resample.hpp"
#include "dsp/stft.hpp"

namespace vibguard::dsp {
namespace {

// ---------------------------------------------------------------------
// Parseval for the STFT: total spectrogram power tracks signal energy.
// ---------------------------------------------------------------------
class StftEnergyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StftEnergyTest, SpectrogramPowerScalesWithSignalEnergy) {
  const std::size_t window = GetParam();
  Rng rng(window);
  Signal s = white_noise(4.0, 200.0, 0.02, rng);
  const auto spec1 = stft_power(s, window, window / 2);
  double p1 = 0.0;
  for (double v : spec1.values()) p1 += v;
  s.scale(2.0);
  const auto spec2 = stft_power(s, window, window / 2);
  double p2 = 0.0;
  for (double v : spec2.values()) p2 += v;
  EXPECT_NEAR(p2 / p1, 4.0, 1e-9);  // power scales with amplitude^2
}

INSTANTIATE_TEST_SUITE_P(Windows, StftEnergyTest,
                         ::testing::Values(16, 32, 64, 128));

// ---------------------------------------------------------------------
// Butterworth filters: stable and unity-passband across cutoffs/orders.
// ---------------------------------------------------------------------
struct ButterCase {
  std::size_t order;
  double cutoff_hz;
};

class ButterworthSweepTest : public ::testing::TestWithParam<ButterCase> {};

TEST_P(ButterworthSweepTest, StableAndUnityInPassband) {
  const auto [order, cutoff] = GetParam();
  ButterworthFilter hp(ButterworthFilter::Kind::kHighPass, order, cutoff,
                       200.0);
  // Stability: bounded output for bounded noise input.
  Rng rng(order);
  Signal in = white_noise(5.0, 200.0, 1.0, rng);
  const Signal out = hp.filtered(in);
  for (double v : out) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 100.0);
  }
  // Passband (well above cutoff): gain ~1.
  const Signal tone_sig = tone(cutoff * 8.0 < 95.0 ? cutoff * 8.0 : 90.0,
                               4.0, 200.0);
  ButterworthFilter hp2(ButterworthFilter::Kind::kHighPass, order, cutoff,
                        200.0);
  const Signal filtered = hp2.filtered(tone_sig);
  EXPECT_NEAR(filtered.slice(400, 700).rms(), tone_sig.slice(400, 700).rms(),
              0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ButterworthSweepTest,
    ::testing::Values(ButterCase{2, 2.0}, ButterCase{2, 4.0},
                      ButterCase{4, 2.0}, ButterCase{4, 4.0},
                      ButterCase{4, 10.0}, ButterCase{6, 4.0}));

// ---------------------------------------------------------------------
// Resampling: a band-limited signal survives down-and-up rate conversion.
// ---------------------------------------------------------------------
class ResampleRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(ResampleRoundTripTest, BandLimitedContentPreserved) {
  const double f = GetParam();
  const Signal original = tone(f, 2.0, 16000.0);
  const Signal down = resample(original, 2000.0);
  const Signal up = resample(down, 16000.0);
  // Compare steady-state RMS (edges suffer filter transients). The
  // up-conversion uses linear interpolation, whose sinc^2 droop grows with
  // f/fs — hence the frequency-dependent tolerance.
  const auto mid = [](const Signal& s) {
    return s.slice(s.size() / 4, 3 * s.size() / 4).rms();
  };
  const double tol = f / 2000.0 < 0.1 ? 0.05 : 0.15;
  EXPECT_NEAR(mid(down), mid(original), 0.05 * mid(original)) << f;
  EXPECT_NEAR(mid(up), mid(original), tol * mid(original)) << f;
}

INSTANTIATE_TEST_SUITE_P(Tones, ResampleRoundTripTest,
                         ::testing::Values(50.0, 100.0, 150.0, 400.0));

// ---------------------------------------------------------------------
// Aliasing arithmetic: folded frequency always lands at the predicted bin.
// ---------------------------------------------------------------------
class AliasTest : public ::testing::TestWithParam<double> {};

TEST_P(AliasTest, FoldsToPredictedFrequency) {
  const double f = GetParam();
  const double fs = 200.0;
  // Predicted alias: fold f into [0, fs/2].
  double alias = std::fmod(f, fs);
  if (alias > fs / 2.0) alias = fs - alias;

  const Signal in = tone(f, 4.0, 16000.0);
  const Signal out = decimate_alias(in, fs);
  const auto mag = magnitude_spectrum(out.samples());
  std::size_t best = 1;
  for (std::size_t k = 2; k < mag.size(); ++k) {
    if (mag[k] > mag[best]) best = k;
  }
  const double measured = bin_frequency(best, out.size(), fs);
  EXPECT_NEAR(measured, alias, 1.5) << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, AliasTest,
                         ::testing::Values(30.0, 130.0, 230.0, 330.0, 430.0,
                                           530.0, 1030.0, 2130.0, 3210.0));

// ---------------------------------------------------------------------
// Gain-curve filter composes multiplicatively.
// ---------------------------------------------------------------------
TEST(GainCurveProperty, SequentialApplicationsCompose) {
  // Power-of-two length so no zero-padding truncation happens between the
  // two applications (padding residue is what breaks exact composition).
  Rng rng(9);
  const Signal in(rng.gaussian_vector(1024), 2000.0);
  auto g1 = [](double f) { return 1.0 / (1.0 + f / 300.0); };
  auto g2 = [](double f) { return f / (f + 100.0); };
  const Signal seq = apply_gain_curve(apply_gain_curve(in, g1), g2);
  const Signal combined = apply_gain_curve(
      in, [&](double f) { return g1(f) * g2(f); });
  for (std::size_t i = 0; i < in.size(); ++i) {
    ASSERT_NEAR(seq[i], combined[i], 1e-9);
  }
}

}  // namespace
}  // namespace vibguard::dsp
