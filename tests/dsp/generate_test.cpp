#include "dsp/generate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::dsp {
namespace {

TEST(ToneTest, LengthAndAmplitude) {
  const Signal s = tone(100.0, 1.0, 1000.0, 2.0);
  EXPECT_EQ(s.size(), 1000u);
  EXPECT_NEAR(s.peak(), 2.0, 0.12);  // sampling can miss the crest
  EXPECT_NEAR(s.rms(), 2.0 / std::sqrt(2.0), 1e-2);
}

TEST(ToneTest, FrequencyIsCorrect) {
  const Signal s = tone(100.0, 1.0, 1000.0);
  EXPECT_NEAR(spectral_centroid(s), 100.0, 5.0);
}

TEST(ToneTest, ZeroDurationEmpty) {
  EXPECT_TRUE(tone(100.0, 0.0, 1000.0).empty());
}

TEST(ChirpTest, SweepsAcrossBand) {
  const Signal s = chirp(500.0, 2500.0, 2.0, 16000.0);
  // Nearly all energy within the sweep band.
  EXPECT_GT(band_energy_fraction(s, 450.0, 2600.0), 0.97);
  // First half is low-frequency, second half high.
  const Signal first = s.slice(0, s.size() / 2);
  const Signal second = s.slice(s.size() / 2, s.size());
  EXPECT_LT(spectral_centroid(first), spectral_centroid(second));
}

TEST(ChirpTest, StartFrequencyDominatesOnset) {
  const Signal s = chirp(500.0, 2500.0, 2.0, 16000.0);
  const Signal onset = s.slice(0, 1600);  // first 100 ms: 500-600 Hz
  EXPECT_GT(band_energy_fraction(onset, 450.0, 700.0), 0.9);
}

TEST(WhiteNoiseTest, MomentsAndLength) {
  Rng rng(1);
  const Signal s = white_noise(2.0, 8000.0, 0.5, rng);
  EXPECT_EQ(s.size(), 16000u);
  EXPECT_NEAR(s.rms(), 0.5, 0.02);
}

TEST(WhiteNoiseTest, SpectrallyFlat) {
  Rng rng(2);
  const Signal s = white_noise(4.0, 8000.0, 1.0, rng);
  const double low = band_energy(s, 0.0, 2000.0);
  const double high = band_energy(s, 2000.0, 4000.0);
  EXPECT_NEAR(low / high, 1.0, 0.2);
}

TEST(PinkNoiseTest, LowFrequencyDominated) {
  Rng rng(3);
  const Signal s = pink_noise(4.0, 8000.0, 1.0, rng);
  const double low = band_energy(s, 0.0, 500.0);
  const double high = band_energy(s, 2000.0, 4000.0);
  EXPECT_GT(low, 2.0 * high);
}

TEST(PinkNoiseTest, RmsMatchesTarget) {
  Rng rng(4);
  const Signal s = pink_noise(1.0, 8000.0, 0.25, rng);
  EXPECT_NEAR(s.rms(), 0.25, 1e-9);
}

TEST(GenerateTest, RejectsNegativeDuration) {
  Rng rng(5);
  EXPECT_THROW(tone(100.0, -1.0, 1000.0), InvalidArgument);
  EXPECT_THROW(white_noise(-0.1, 1000.0, 1.0, rng), InvalidArgument);
}

TEST(GenerateTest, DeterministicWithSameSeed) {
  Rng a(7), b(7);
  const Signal s1 = white_noise(0.1, 1000.0, 1.0, a);
  const Signal s2 = white_noise(0.1, 1000.0, 1.0, b);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i], s2[i]);
  }
}

}  // namespace
}  // namespace vibguard::dsp
