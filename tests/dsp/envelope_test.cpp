#include "dsp/envelope.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::dsp {
namespace {

TEST(HilbertTest, ToneEnvelopeIsItsAmplitude) {
  const Signal s = tone(100.0, 0.5, 8000.0, 0.7);
  const Signal env = hilbert_envelope(s);
  // Interior samples (edge effects aside) should sit at the amplitude.
  for (std::size_t i = env.size() / 4; i < 3 * env.size() / 4; ++i) {
    EXPECT_NEAR(env[i], 0.7, 0.05);
  }
}

TEST(HilbertTest, TracksAmplitudeModulation) {
  const double fs = 8000.0;
  std::vector<double> x(8000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / fs;
    const double am = 0.5 + 0.4 * std::sin(2.0 * std::numbers::pi * 3.0 * t);
    x[i] = am * std::sin(2.0 * std::numbers::pi * 400.0 * t);
  }
  const Signal env = hilbert_envelope(Signal(std::move(x), fs));
  // Envelope range should span roughly [0.1, 0.9].
  double mx = 0.0, mn = 1e9;
  for (std::size_t i = 400; i + 400 < env.size(); ++i) {
    mx = std::max(mx, env[i]);
    mn = std::min(mn, env[i]);
  }
  EXPECT_NEAR(mx, 0.9, 0.08);
  EXPECT_NEAR(mn, 0.1, 0.08);
}

TEST(HilbertTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(hilbert_envelope(Signal({}, 8000.0)).empty());
}

TEST(RmsEnvelopeTest, ShapeAndValues) {
  const Signal s = tone(100.0, 1.0, 1000.0, 1.0);
  const Signal env = rms_envelope(s, 100, 50);
  EXPECT_EQ(env.size(), (s.size() - 100) / 50 + 1);
  EXPECT_DOUBLE_EQ(env.sample_rate(), 20.0);
  for (double v : env) EXPECT_NEAR(v, 1.0 / std::numbers::sqrt2, 0.02);
}

TEST(RmsEnvelopeTest, RejectsZeroWindow) {
  const Signal s = Signal::zeros(10, 100.0);
  EXPECT_THROW(rms_envelope(s, 0, 1), vibguard::InvalidArgument);
}

TEST(CepstrumTest, PitchOfHarmonicSeries) {
  // A pulse-train-like harmonic sum at F0 = 125 Hz.
  const double fs = 8000.0;
  const double f0 = 125.0;
  std::vector<double> x(8192, 0.0);
  for (int k = 1; k <= 20; ++k) {
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += std::sin(2.0 * std::numbers::pi * f0 * k *
                       static_cast<double>(i) / fs) /
              static_cast<double>(k);
    }
  }
  const double est = cepstral_pitch(Signal(std::move(x), fs));
  EXPECT_NEAR(est, f0, 3.0);
}

TEST(CepstrumTest, NoiseHasNoPitch) {
  Rng rng(1);
  const Signal s = white_noise(1.0, 8000.0, 1.0, rng);
  EXPECT_DOUBLE_EQ(cepstral_pitch(s), 0.0);
}

TEST(CepstrumTest, RejectsBadRange) {
  const Signal s = Signal::zeros(64, 8000.0);
  EXPECT_THROW(cepstral_pitch(s, 400.0, 100.0), vibguard::InvalidArgument);
}

TEST(GoertzelTest, MatchesFftBinMagnitude) {
  const Signal s = tone(250.0, 0.512, 1000.0, 0.8);  // 512 samples
  // Exact-bin tone: one-sided |X|/n = A/2... Goertzel returns |X|/n.
  EXPECT_NEAR(goertzel_magnitude(s, 250.0), 0.4, 0.01);
  EXPECT_LT(goertzel_magnitude(s, 400.0), 0.02);
}

TEST(GoertzelTest, EmptySignalGivesZero) {
  EXPECT_DOUBLE_EQ(goertzel_magnitude(Signal({}, 1000.0), 100.0), 0.0);
}

}  // namespace
}  // namespace vibguard::dsp
