#include "dsp/correlate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::dsp {
namespace {

TEST(CrossCorrelateTest, ZeroLagOfIdenticalSignalsIsEnergy) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  const auto corr = cross_correlate(a, a, 0);
  ASSERT_EQ(corr.size(), 1u);
  EXPECT_DOUBLE_EQ(corr[0], 14.0);
}

TEST(CrossCorrelateTest, KnownShift) {
  std::vector<double> a = {0.0, 0.0, 1.0, 0.0, 0.0};
  std::vector<double> b = {0.0, 0.0, 0.0, 0.0, 1.0};
  // b(n) = a(n - 2), i.e. sum a(n) b(n+lag) peaks at lag = +2.
  const auto corr = cross_correlate(a, b, 3);
  const auto best = std::max_element(corr.begin(), corr.end()) - corr.begin();
  EXPECT_EQ(best - 3, 2);
}

TEST(EstimateDelayTest, RecoversPositiveDelay) {
  Rng rng(1);
  const Signal base = white_noise(1.0, 1000.0, 1.0, rng);
  // b delayed by 100 samples relative to a.
  std::vector<double> b(base.size(), 0.0);
  for (std::size_t i = 100; i < b.size(); ++i) b[i] = base[i - 100];
  EXPECT_EQ(estimate_delay(base.samples(), b, 200), 100);
}

TEST(EstimateDelayTest, RecoversNegativeDelay) {
  Rng rng(2);
  const Signal base = white_noise(1.0, 1000.0, 1.0, rng);
  std::vector<double> b(base.size(), 0.0);
  for (std::size_t i = 0; i + 50 < b.size(); ++i) b[i] = base[i + 50];
  EXPECT_EQ(estimate_delay(base.samples(), b, 200), -50);
}

TEST(EstimateDelayTest, RobustToAdditiveNoise) {
  Rng rng(3);
  const Signal base = white_noise(1.0, 1000.0, 1.0, rng);
  std::vector<double> b(base.size(), 0.0);
  for (std::size_t i = 37; i < b.size(); ++i) {
    b[i] = base[i - 37] + rng.gaussian(0.0, 0.3);
  }
  EXPECT_EQ(estimate_delay(base.samples(), b, 100), 37);
}

TEST(EstimateDelayTest, FftAndDirectPathsAgree) {
  // Long enough to trigger the FFT path; compare against a small direct
  // computation on a shared prefix.
  Rng rng(4);
  const Signal a = white_noise(2.0, 16000.0, 1.0, rng);
  std::vector<double> b(a.size(), 0.0);
  for (std::size_t i = 1600; i < b.size(); ++i) b[i] = a[i - 1600];
  // work = 32000 * (2*4800+1) >> 2^18 -> FFT path.
  EXPECT_EQ(estimate_delay(a.samples(), b, 4800), 1600);
}

TEST(AlignByDelayTest, PositiveDelayTrimsSecond) {
  Signal a({1.0, 2.0, 3.0, 4.0}, 10.0);
  Signal b({9.0, 1.0, 2.0, 3.0}, 10.0);
  const auto [ta, tb] = align_by_delay(a, b, 1);
  ASSERT_EQ(ta.size(), 3u);
  ASSERT_EQ(tb.size(), 3u);
  EXPECT_DOUBLE_EQ(tb[0], 1.0);
  EXPECT_DOUBLE_EQ(ta[0], 1.0);
}

TEST(AlignByDelayTest, NegativeDelayTrimsFirst) {
  Signal a({9.0, 9.0, 1.0, 2.0}, 10.0);
  Signal b({1.0, 2.0, 3.0}, 10.0);
  const auto [ta, tb] = align_by_delay(a, b, -2);
  EXPECT_DOUBLE_EQ(ta[0], 1.0);
  EXPECT_DOUBLE_EQ(tb[0], 1.0);
  EXPECT_EQ(ta.size(), tb.size());
}

TEST(AlignByDelayTest, ZeroDelayTrimsToCommonLength) {
  Signal a({1.0, 2.0, 3.0}, 10.0);
  Signal b({1.0, 2.0}, 10.0);
  const auto [ta, tb] = align_by_delay(a, b, 0);
  EXPECT_EQ(ta.size(), 2u);
  EXPECT_EQ(tb.size(), 2u);
}

TEST(PeakNormalizedCorrelationTest, IdenticalSignalsGiveOne) {
  Rng rng(5);
  const Signal s = white_noise(0.5, 1000.0, 1.0, rng);
  EXPECT_NEAR(peak_normalized_correlation(s.samples(), s.samples(), 10), 1.0,
              1e-9);
}

TEST(PeakNormalizedCorrelationTest, SilenceGivesZero) {
  std::vector<double> a(100, 0.0);
  std::vector<double> b(100, 1.0);
  EXPECT_DOUBLE_EQ(peak_normalized_correlation(a, b, 10), 0.0);
}

TEST(PeakNormalizedCorrelationTest, IndependentNoiseLow) {
  Rng rng(6);
  const auto a = rng.gaussian_vector(4000);
  const auto b = rng.gaussian_vector(4000);
  EXPECT_LT(peak_normalized_correlation(a, b, 20), 0.2);
}

}  // namespace
}  // namespace vibguard::dsp
