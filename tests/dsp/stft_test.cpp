#include "dsp/stft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::dsp {
namespace {

TEST(SpectrogramTest, ShapeAndIndexing) {
  Spectrogram s(3, 4, 2.0, 0.1);
  EXPECT_EQ(s.frames(), 3u);
  EXPECT_EQ(s.bins(), 4u);
  s.at(2, 3) = 7.0;
  EXPECT_DOUBLE_EQ(s.at(2, 3), 7.0);
  EXPECT_THROW(s.at(3, 0), InvalidArgument);
  EXPECT_THROW(s.at(0, 4), InvalidArgument);
}

TEST(SpectrogramTest, NormalizeByMax) {
  Spectrogram s(1, 3, 1.0, 0.1);
  s.at(0, 0) = 2.0;
  s.at(0, 1) = 4.0;
  s.normalize_by_max();
  EXPECT_DOUBLE_EQ(s.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 1.0);
}

TEST(SpectrogramTest, NormalizeAllZerosIsNoop) {
  Spectrogram s(2, 2, 1.0, 0.1);
  s.normalize_by_max();
  EXPECT_DOUBLE_EQ(s.max_value(), 0.0);
}

TEST(SpectrogramTest, MeanOverTime) {
  Spectrogram s(2, 2, 1.0, 0.1);
  s.at(0, 0) = 1.0;
  s.at(1, 0) = 3.0;
  const auto avg = s.mean_over_time();
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 0.0);
}

TEST(StftTest, FrameCountMatchesFormula) {
  const Signal s = Signal::zeros(200, 200.0);
  const auto spec = stft_power(s, 64, 16);
  EXPECT_EQ(spec.frames(), 1u + (200u - 64u) / 16u);
  EXPECT_EQ(spec.bins(), 33u);
  EXPECT_DOUBLE_EQ(spec.bin_hz(), 200.0 / 64.0);
}

TEST(StftTest, ShortSignalIsPaddedToOneFrame) {
  const Signal s = Signal::zeros(20, 200.0);
  const auto spec = stft_power(s, 64, 16);
  EXPECT_EQ(spec.frames(), 1u);
}

TEST(StftTest, EmptySignalZeroFrames) {
  const Signal s({}, 200.0);
  const auto spec = stft_power(s, 64, 16);
  EXPECT_EQ(spec.frames(), 0u);
}

TEST(StftTest, ToneEnergyConcentratesInCorrectBin) {
  // 25 Hz tone sampled at 200 Hz, 64-point window: bin = 25/(200/64) = 8.
  const Signal s = tone(25.0, 2.0, 200.0);
  const auto spec = stft_power(s, 64, 32, WindowType::kHann);
  for (std::size_t f = 0; f < spec.frames(); ++f) {
    std::size_t best = 0;
    double best_v = -1.0;
    for (std::size_t b = 0; b < spec.bins(); ++b) {
      if (spec.at(f, b) > best_v) {
        best_v = spec.at(f, b);
        best = b;
      }
    }
    EXPECT_EQ(best, 8u);
  }
}

TEST(StftTest, CropLowFrequenciesRemovesBins) {
  const Signal s = Signal::zeros(200, 200.0);
  const auto spec = stft_power(s, 64, 16);
  // bin spacing 3.125 Hz; crop <= 5 Hz drops bins 0 (0 Hz) and 1 (3.125 Hz).
  const auto cropped = spec.crop_low_frequencies(5.0);
  EXPECT_EQ(cropped.bins(), spec.bins() - 2);
  EXPECT_EQ(cropped.frames(), spec.frames());
}

TEST(StftTest, CropPreservesHighBinValues) {
  const Signal s = tone(50.0, 1.0, 200.0);  // bin 16
  auto spec = stft_power(s, 64, 32);
  const double before = spec.at(0, 16);
  const auto cropped = spec.crop_low_frequencies(5.0);
  EXPECT_DOUBLE_EQ(cropped.at(0, 14), before);
}

TEST(Correlation2dTest, IdenticalSpectrogramsGiveOne) {
  Rng rng(3);
  const Signal s = white_noise(2.0, 200.0, 1.0, rng);
  const auto a = stft_power(s, 64, 16);
  EXPECT_NEAR(correlation_2d(a, a), 1.0, 1e-12);
}

TEST(Correlation2dTest, IndependentNoiseNearZero) {
  Rng rng(4);
  const Signal s1 = white_noise(20.0, 200.0, 1.0, rng);
  const Signal s2 = white_noise(20.0, 200.0, 1.0, rng);
  const auto a = stft_power(s1, 64, 16);
  const auto b = stft_power(s2, 64, 16);
  EXPECT_LT(std::abs(correlation_2d(a, b)), 0.35);
}

TEST(Correlation2dTest, ScaledCopyStillPerfect) {
  Rng rng(5);
  Signal s = white_noise(2.0, 200.0, 1.0, rng);
  const auto a = stft_power(s, 64, 16);
  s.scale(3.0);
  const auto b = stft_power(s, 64, 16);
  EXPECT_NEAR(correlation_2d(a, b), 1.0, 1e-9);
}

TEST(Correlation2dTest, TruncatesToShorterOperand) {
  Rng rng(6);
  const Signal s = white_noise(4.0, 200.0, 1.0, rng);
  const auto a = stft_power(s, 64, 16);
  const auto b = stft_power(s.slice(0, 400), 64, 16);
  EXPECT_NEAR(correlation_2d(a, b), 1.0, 1e-12);
}

TEST(Correlation2dTest, RejectsBinMismatch) {
  Spectrogram a(1, 4, 1.0, 0.1), b(1, 5, 1.0, 0.1);
  EXPECT_THROW(correlation_2d(a, b), InvalidArgument);
}

TEST(SpectrogramTest, ResizedFramesTruncatesAndPads) {
  Spectrogram s(2, 2, 1.0, 0.1);
  s.at(0, 0) = 1.0;
  s.at(1, 1) = 2.0;
  const auto shorter = s.resized_frames(1);
  EXPECT_EQ(shorter.frames(), 1u);
  EXPECT_DOUBLE_EQ(shorter.at(0, 0), 1.0);
  const auto longer = s.resized_frames(4);
  EXPECT_EQ(longer.frames(), 4u);
  EXPECT_DOUBLE_EQ(longer.at(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(longer.at(1, 1), 2.0);
}

}  // namespace
}  // namespace vibguard::dsp
