#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "dsp/fft_plan.hpp"

namespace vibguard::dsp {
namespace {

// Naive O(n^2) DFT reference.
std::vector<Complex> naive_dft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(k * t) /
                           static_cast<double>(n);
      out[k] += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-8 * n) << "bin " << k;
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-8 * n) << "bin " << k;
  }
}

TEST_P(FftSizeTest, InverseRoundTrip) {
  const std::size_t n = GetParam();
  Rng rng(n * 7 + 1);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());
  const auto spec = fft(x);
  const auto back = fft(spec, /*inverse=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-9 * n);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-9 * n);
  }
}

TEST_P(FftSizeTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(n * 13 + 5);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), 0.0);
  double time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  const auto spec = fft(x);
  double freq_energy = 0.0;
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * n);
}

// Covers powers of two (1..256), odd composites (45, 243, 255), primes
// (3, 5, 7, 17, 31) and even non-powers-of-two (12, 100), so both rfft
// paths (conjugate-symmetric split and odd-length fallback) and both
// complex paths (radix-2 and Bluestein) are exercised.
INSTANTIATE_TEST_SUITE_P(PowersAndOddSizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 45, 64, 100, 128, 243,
                                           255, 256));

TEST_P(FftSizeTest, RfftMatchesComplexFftReference) {
  const std::size_t n = GetParam();
  Rng rng(n * 3 + 2);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  const auto full = fft_real(x);  // complex transform of the real input
  const auto half = rfft(x);
  ASSERT_EQ(half.size(), n / 2 + 1);
  const double tol = 1e-9 * static_cast<double>(n) + 1e-12;
  for (std::size_t k = 0; k < half.size(); ++k) {
    EXPECT_NEAR(half[k].real(), full[k].real(), tol) << "bin " << k;
    EXPECT_NEAR(half[k].imag(), full[k].imag(), tol) << "bin " << k;
  }
}

TEST_P(FftSizeTest, PlannedAndFreeFunctionPathsAgree) {
  const std::size_t n = GetParam();
  Rng rng(n * 17 + 3);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex(rng.gaussian(), rng.gaussian());

  // A freshly constructed plan and the cached free-function path must
  // produce identical results bit for bit.
  const FftPlan plan(n);
  std::vector<Complex> planned(x);
  plan.transform(planned, false);
  const auto free_fn = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_DOUBLE_EQ(planned[k].real(), free_fn[k].real()) << "bin " << k;
    EXPECT_DOUBLE_EQ(planned[k].imag(), free_fn[k].imag()) << "bin " << k;
  }

  // Inverse round trip through the same plan recovers the input.
  plan.transform(planned, true);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(planned[k].real(), x[k].real(),
                1e-9 * static_cast<double>(n));
    EXPECT_NEAR(planned[k].imag(), x[k].imag(),
                1e-9 * static_cast<double>(n));
  }
}

TEST_P(FftSizeTest, InPlaceMagnitudeMatchesAllocatingOverload) {
  const std::size_t n = GetParam();
  Rng rng(n * 23 + 7);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  const auto allocated = magnitude_spectrum(x);
  std::vector<double> in_place(n / 2 + 1, -1.0);
  magnitude_spectrum(x, in_place);
  ASSERT_EQ(allocated.size(), in_place.size());
  for (std::size_t k = 0; k < allocated.size(); ++k) {
    EXPECT_DOUBLE_EQ(allocated[k], in_place[k]) << "bin " << k;
  }
}

TEST(FftTest, ToneLandsInCorrectBin) {
  const std::size_t n = 256;
  const std::size_t bin = 19;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::cos(2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                    static_cast<double>(n));
  }
  const auto mag = magnitude_spectrum(x);
  // A unit cosine at an exact bin has one-sided normalized magnitude 1/2.
  EXPECT_NEAR(mag[bin], 0.5, 1e-9);
  for (std::size_t k = 0; k < mag.size(); ++k) {
    if (k != bin) {
      EXPECT_LT(mag[k], 1e-9);
    }
  }
}

TEST(FftTest, MagnitudeSpectrumSizeIsHalfPlusOne) {
  std::vector<double> x(100, 1.0);
  EXPECT_EQ(magnitude_spectrum(x).size(), 51u);
  EXPECT_TRUE(magnitude_spectrum({}).empty());
}

TEST(FftTest, DcSignalAllEnergyInBinZero) {
  std::vector<double> x(64, 3.0);
  const auto mag = magnitude_spectrum(x);
  EXPECT_NEAR(mag[0], 3.0, 1e-9);
  for (std::size_t k = 1; k < mag.size(); ++k) EXPECT_LT(mag[k], 1e-9);
}

TEST(FftTest, BinFrequency) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 64, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(32, 64, 200.0), 100.0);
  EXPECT_DOUBLE_EQ(bin_frequency(1, 100, 1000.0), 10.0);
}

TEST(FftTest, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(100));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
}

TEST(FftTest, LinearityProperty) {
  Rng rng(99);
  const std::size_t n = 64;
  std::vector<Complex> a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = Complex(rng.gaussian(), 0.0);
    b[i] = Complex(rng.gaussian(), 0.0);
    sum[i] = 2.0 * a[i] + 3.0 * b[i];
  }
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fsum = fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    const Complex expect = 2.0 * fa[k] + 3.0 * fb[k];
    EXPECT_NEAR(std::abs(fsum[k] - expect), 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace vibguard::dsp
