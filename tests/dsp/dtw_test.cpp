#include "dsp/dtw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace vibguard::dsp {
namespace {

std::vector<std::vector<double>> seq(std::initializer_list<double> values) {
  std::vector<std::vector<double>> out;
  for (double v : values) out.push_back({v});
  return out;
}

TEST(EuclideanTest, KnownDistances) {
  EXPECT_DOUBLE_EQ(euclidean(std::vector<double>{0.0, 0.0},
                             std::vector<double>{3.0, 4.0}),
                   5.0);
  EXPECT_DOUBLE_EQ(euclidean(std::vector<double>{1.0},
                             std::vector<double>{1.0}),
                   0.0);
}

TEST(EuclideanTest, RejectsDimensionMismatch) {
  EXPECT_THROW(euclidean(std::vector<double>{1.0},
                         std::vector<double>{1.0, 2.0}),
               vibguard::InvalidArgument);
}

TEST(DtwTest, IdenticalSequencesZeroDistance) {
  const auto a = seq({1.0, 2.0, 3.0, 2.0, 1.0});
  const auto r = dtw(a, a);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
  EXPECT_DOUBLE_EQ(r.normalized, 0.0);
  EXPECT_EQ(r.path_length, a.size());
}

TEST(DtwTest, TimeWarpedCopyStillNearZero) {
  // Same shape at half speed: pure warping cost should be ~0.
  const auto a = seq({0.0, 1.0, 2.0, 3.0, 2.0, 1.0, 0.0});
  const auto b = seq({0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 2.0, 2.0,
                      1.0, 1.0, 0.0, 0.0});
  EXPECT_NEAR(dtw(a, b).normalized, 0.0, 1e-12);
}

TEST(DtwTest, DifferentShapesHaveDistance) {
  const auto a = seq({0.0, 1.0, 0.0});
  const auto b = seq({5.0, 5.0, 5.0});
  EXPECT_GT(dtw(a, b).normalized, 3.0);
}

TEST(DtwTest, SymmetricDistance) {
  Rng rng(1);
  std::vector<std::vector<double>> a(6, std::vector<double>(3));
  std::vector<std::vector<double>> b(9, std::vector<double>(3));
  for (auto& f : a) {
    for (double& v : f) v = rng.gaussian();
  }
  for (auto& f : b) {
    for (double& v : f) v = rng.gaussian();
  }
  EXPECT_NEAR(dtw(a, b).distance, dtw(b, a).distance, 1e-12);
}

TEST(DtwTest, BandConstraintStillFindsPath) {
  const auto a = seq({0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  const auto b = seq({0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  const auto r = dtw(a, b, 1);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(DtwTest, BandWidensToLengthDifference) {
  // |a| - |b| = 4 > window 1; the band must auto-widen so a path exists.
  const auto a = seq({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
  const auto b = seq({0.0, 3.5, 7.0});
  const auto r = dtw(a, b, 1);
  EXPECT_TRUE(std::isfinite(r.distance));
}

TEST(DtwTest, EmptySequenceInfiniteDistance) {
  const auto a = seq({1.0});
  EXPECT_TRUE(std::isinf(dtw(a, {}).distance));
  EXPECT_TRUE(std::isinf(dtw({}, a).distance));
}

TEST(DtwTest, CloserShapeSmallerDistance) {
  const auto ref = seq({0.0, 2.0, 4.0, 2.0, 0.0});
  const auto close = seq({0.0, 2.1, 4.2, 2.1, 0.0});
  const auto far = seq({4.0, 2.0, 0.0, 2.0, 4.0});
  EXPECT_LT(dtw(ref, close).normalized, dtw(ref, far).normalized);
}

}  // namespace
}  // namespace vibguard::dsp
