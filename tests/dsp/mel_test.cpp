#include "dsp/mel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/generate.hpp"

namespace vibguard::dsp {
namespace {

TEST(MelScaleTest, KnownAnchors) {
  EXPECT_NEAR(hz_to_mel(0.0), 0.0, 1e-9);
  EXPECT_NEAR(hz_to_mel(1000.0), 999.99, 1.0);  // ~1000 mel at 1 kHz
}

TEST(MelScaleTest, RoundTrip) {
  for (double hz : {50.0, 300.0, 900.0, 4000.0, 8000.0}) {
    EXPECT_NEAR(mel_to_hz(hz_to_mel(hz)), hz, 1e-6);
  }
}

TEST(MelScaleTest, Monotonic) {
  double prev = -1.0;
  for (double hz = 0.0; hz <= 8000.0; hz += 100.0) {
    const double m = hz_to_mel(hz);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(MelFilterbankTest, ShapeAndCoverage) {
  const auto bank = mel_filterbank(40, 512, 16000.0, 0.0, 900.0);
  ASSERT_EQ(bank.size(), 40u);
  for (const auto& row : bank) EXPECT_EQ(row.size(), 257u);
  // Filters must have no weight above the upper edge.
  for (const auto& row : bank) {
    for (std::size_t k = 0; k < row.size(); ++k) {
      const double f = bin_frequency(k, 512, 16000.0);
      if (f > 950.0) {
        EXPECT_DOUBLE_EQ(row[k], 0.0);
      }
    }
  }
}

TEST(MelFilterbankTest, EachFilterHasMass) {
  const auto bank = mel_filterbank(20, 512, 16000.0, 0.0, 2000.0);
  for (const auto& row : bank) {
    double sum = 0.0;
    for (double v : row) sum += v;
    EXPECT_GT(sum, 0.0);
  }
}

TEST(MelFilterbankTest, RejectsBadRanges) {
  EXPECT_THROW(mel_filterbank(0, 512, 16000.0, 0.0, 900.0), InvalidArgument);
  EXPECT_THROW(mel_filterbank(10, 512, 16000.0, 900.0, 100.0),
               InvalidArgument);
  EXPECT_THROW(mel_filterbank(10, 512, 16000.0, 0.0, 9000.0),
               InvalidArgument);
}

TEST(DctTest, ConstantInputOnlyDcCoefficient) {
  std::vector<double> x(16, 2.0);
  const auto c = dct2(x, 16);
  EXPECT_GT(std::abs(c[0]), 1.0);
  for (std::size_t k = 1; k < c.size(); ++k) EXPECT_NEAR(c[k], 0.0, 1e-9);
}

TEST(DctTest, OrthonormalEnergyPreservation) {
  Rng rng(1);
  const auto x = rng.gaussian_vector(32);
  const auto c = dct2(x, 32);
  double ex = 0.0, ec = 0.0;
  for (double v : x) ex += v * v;
  for (double v : c) ec += v * v;
  EXPECT_NEAR(ec, ex, 1e-9);
}

TEST(DctTest, TruncationKeepsPrefix) {
  Rng rng(2);
  const auto x = rng.gaussian_vector(32);
  const auto full = dct2(x, 32);
  const auto trunc = dct2(x, 8);
  ASSERT_EQ(trunc.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(trunc[k], full[k]);
}

TEST(MfccTest, PaperConfigShape) {
  // 1 second at 16 kHz, 25 ms frames, 10 ms hop -> 98 frames, 14 coeffs.
  Rng rng(3);
  const Signal s = white_noise(1.0, 16000.0, 0.1, rng);
  const auto mfcc = compute_mfcc(s);
  EXPECT_EQ(mfcc.size(), 98u);
  for (const auto& frame : mfcc) EXPECT_EQ(frame.size(), 14u);
}

TEST(MfccTest, SignalShorterThanFrameGivesNoFrames) {
  const Signal s = Signal::zeros(100, 16000.0);
  EXPECT_TRUE(compute_mfcc(s).empty());
}

TEST(MfccTest, DistinguishesSpectrallyDifferentSounds) {
  // Low tone vs band noise should produce clearly different mean MFCCs.
  Rng rng(4);
  const Signal tone_sig = tone(200.0, 0.5, 16000.0, 0.1);
  const Signal noise_sig = white_noise(0.5, 16000.0, 0.1, rng);
  const auto m1 = compute_mfcc(tone_sig);
  const auto m2 = compute_mfcc(noise_sig);
  double dist = 0.0;
  for (std::size_t k = 0; k < 14; ++k) {
    double a = 0.0, b = 0.0;
    for (const auto& f : m1) a += f[k];
    for (const auto& f : m2) b += f[k];
    a /= static_cast<double>(m1.size());
    b /= static_cast<double>(m2.size());
    dist += (a - b) * (a - b);
  }
  EXPECT_GT(std::sqrt(dist), 1.0);
}

TEST(MfccTest, DeterministicForSameInput) {
  const Signal s = tone(300.0, 0.3, 16000.0, 0.1);
  const auto a = compute_mfcc(s);
  const auto b = compute_mfcc(s);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    for (std::size_t k = 0; k < a[f].size(); ++k) {
      EXPECT_DOUBLE_EQ(a[f][k], b[f][k]);
    }
  }
}

TEST(MfccTest, RejectsEmptySignal) {
  EXPECT_THROW(compute_mfcc(Signal({}, 16000.0)), InvalidArgument);
}

}  // namespace
}  // namespace vibguard::dsp
