// Dispatch-layer tests: level selection/override plumbing, plus every
// kernel cross-checked against the scalar reference at every level this
// build + CPU makes available. Elementwise kernels must match scalar
// bit-for-bit (that is the contract that makes VIBGUARD_SIMD=scalar
// reproduce pre-dispatch scores exactly); reduction kernels reassociate
// and are held to an ULP-scaled tolerance instead.
#include "dsp/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace vibguard::dsp::simd {
namespace {

// Restores the dispatch level active at construction time.
class LevelGuard {
 public:
  LevelGuard() : prev_(active_level()) {}
  ~LevelGuard() { set_level(prev_); }

 private:
  Level prev_;
};

std::vector<double> random_vector(Rng& rng, std::size_t n) {
  return rng.gaussian_vector(n);
}

std::vector<Complex> random_complex(Rng& rng, std::size_t n) {
  const auto re = rng.gaussian_vector(n);
  const auto im = rng.gaussian_vector(n);
  std::vector<Complex> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = Complex(re[i], im[i]);
  return out;
}

const std::vector<std::size_t> kSizes = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 100};

TEST(SimdLevelTest, ParseLevelRecognizedNames) {
  Level level = Level::kAvx2;
  EXPECT_TRUE(parse_level("scalar", level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(parse_level("SCALAR", level));
  EXPECT_EQ(level, Level::kScalar);
  EXPECT_TRUE(parse_level("avx2", level));
  EXPECT_EQ(level, Level::kAvx2);
  EXPECT_TRUE(parse_level("neon", level));
  EXPECT_EQ(level, Level::kNeon);
  EXPECT_TRUE(parse_level("auto", level));
  EXPECT_EQ(level, detect_level());
}

TEST(SimdLevelTest, ParseLevelRejectsGarbage) {
  Level level = Level::kScalar;
  EXPECT_FALSE(parse_level("sse9", level));
  EXPECT_FALSE(parse_level("", level));
  EXPECT_FALSE(parse_level(nullptr, level));
}

TEST(SimdLevelTest, AvailableLevelsAlwaysIncludeScalar) {
  const auto levels = available_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.back(), Level::kScalar);
  // Best-first ordering: the head is what auto-detection picks.
  EXPECT_EQ(levels.front(), detect_level());
}

TEST(SimdLevelTest, SetLevelRoundTrips) {
  LevelGuard guard;
  for (Level level : available_levels()) {
    EXPECT_TRUE(set_level(level));
    EXPECT_EQ(active_level(), level);
    EXPECT_EQ(ops().level, level);
  }
}

TEST(SimdLevelTest, ScalarTableIsScalar) {
  EXPECT_EQ(scalar::kOps.level, Level::kScalar);
}

TEST(SimdKernelTest, MultiplyBitIdenticalAcrossLevels) {
  Rng rng(101);
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    const auto a = random_vector(rng, n);
    const auto b = random_vector(rng, n);
    std::vector<double> ref(n, 0.0);
    scalar::multiply(a.data(), b.data(), ref.data(), n);
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      std::vector<double> got(n, -1.0);
      ops().multiply(a.data(), b.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], ref[i])
            << level_name(level) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, ButterflyStageBitIdenticalAcrossLevels) {
  Rng rng(102);
  LevelGuard guard;
  for (std::size_t half : {1u, 2u, 3u, 4u, 5u, 8u, 16u, 33u}) {
    for (bool inverse : {false, true}) {
      const auto lo0 = random_complex(rng, half);
      const auto hi0 = random_complex(rng, half);
      const auto tw = random_complex(rng, half);
      auto lo_ref = lo0;
      auto hi_ref = hi0;
      scalar::butterfly_stage(lo_ref.data(), hi_ref.data(), tw.data(), half,
                              inverse);
      for (Level level : available_levels()) {
        ASSERT_TRUE(set_level(level));
        auto lo = lo0;
        auto hi = hi0;
        ops().butterfly_stage(lo.data(), hi.data(), tw.data(), half, inverse);
        for (std::size_t j = 0; j < half; ++j) {
          EXPECT_EQ(lo[j].real(), lo_ref[j].real())
              << level_name(level) << " half=" << half << " j=" << j;
          EXPECT_EQ(lo[j].imag(), lo_ref[j].imag());
          EXPECT_EQ(hi[j].real(), hi_ref[j].real());
          EXPECT_EQ(hi[j].imag(), hi_ref[j].imag());
        }
      }
    }
  }
}

TEST(SimdKernelTest, FftStage24BitIdenticalAcrossLevels) {
  Rng rng(107);
  LevelGuard guard;
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
    for (bool inverse : {false, true}) {
      const auto d0 = random_complex(rng, n);
      auto ref = d0;
      scalar::fft_stage2_4(ref.data(), n, inverse);
      for (Level level : available_levels()) {
        ASSERT_TRUE(set_level(level));
        auto got = d0;
        ops().fft_stage2_4(got.data(), n, inverse);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(got[i].real(), ref[i].real())
              << level_name(level) << " n=" << n << " inverse=" << inverse
              << " i=" << i;
          EXPECT_EQ(got[i].imag(), ref[i].imag());
        }
      }
    }
  }
}

TEST(SimdKernelTest, FftStagesBitIdenticalAcrossLevels) {
  Rng rng(108);
  LevelGuard guard;
  // The kernel treats the stage-major twiddle table generically, so random
  // complex values in place of unit roots still exercise it fully. The table
  // holds n - 4 entries (half = 4, 8, ..., n/2).
  for (std::size_t n : {8u, 16u, 64u, 256u, 1024u}) {
    for (bool inverse : {false, true}) {
      const auto d0 = random_complex(rng, n);
      const auto tw = random_complex(rng, n - 4);
      auto ref = d0;
      scalar::fft_stages(ref.data(), n, tw.data(), inverse);
      for (Level level : available_levels()) {
        ASSERT_TRUE(set_level(level));
        auto got = d0;
        ops().fft_stages(got.data(), n, tw.data(), inverse);
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(got[i].real(), ref[i].real())
              << level_name(level) << " n=" << n << " inverse=" << inverse
              << " i=" << i;
          EXPECT_EQ(got[i].imag(), ref[i].imag());
        }
      }
    }
  }
}

TEST(SimdKernelTest, ComplexMultiplyBitIdenticalAcrossLevels) {
  Rng rng(103);
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    const auto a = random_complex(rng, n);
    const auto b = random_complex(rng, n);
    std::vector<Complex> ref(n);
    scalar::complex_multiply_to(ref.data(), a.data(), b.data(), n);
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      std::vector<Complex> got(n);
      ops().complex_multiply_to(got.data(), a.data(), b.data(), n);
      // Also the in-place (out aliases a) form used by the Bluestein path.
      auto aliased = a;
      ops().complex_multiply_to(aliased.data(), aliased.data(), b.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i].real(), ref[i].real())
            << level_name(level) << " n=" << n << " i=" << i;
        EXPECT_EQ(got[i].imag(), ref[i].imag());
        EXPECT_EQ(aliased[i].real(), ref[i].real());
        EXPECT_EQ(aliased[i].imag(), ref[i].imag());
      }
    }
  }
}

TEST(SimdKernelTest, RfftSplitPowerBitIdenticalAcrossLevels) {
  Rng rng(104);
  LevelGuard guard;
  for (std::size_t h : {2u, 3u, 4u, 8u, 16u, 129u, 256u}) {
    const auto z = random_complex(rng, h);
    const auto rtw = random_complex(rng, h + 1);
    const double norm2 = 1.0 / static_cast<double>(4 * h * h);
    std::vector<double> ref(h + 1, 0.0);
    scalar::rfft_split_power(z.data(), rtw.data(), h, norm2, ref.data());
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      std::vector<double> got(h + 1, 0.0);
      ops().rfft_split_power(z.data(), rtw.data(), h, norm2, got.data());
      // The kernel owns bins 1..h-1.
      for (std::size_t k = 1; k < h; ++k) {
        EXPECT_EQ(got[k], ref[k])
            << level_name(level) << " h=" << h << " k=" << k;
      }
    }
  }
}

TEST(SimdKernelTest, LinearInterpBitIdenticalAcrossLevels) {
  Rng rng(105);
  LevelGuard guard;
  const auto in = random_vector(rng, 1000);
  struct Case {
    double ratio;
    std::size_t n;
  };
  // Down- and up-sampling ratios; 999.0/48.0 drives the final outputs onto
  // the in[in_size - 1] clamp; small n exercises the pure-tail path where a
  // naive offset-zero fallback would recompute positions from zero.
  const Case cases[] = {{0.37, 2000}, {2.5, 399},   {1.0, 1000},
                       {999.0 / 48.0, 49}, {0.123, 5}, {3.7, 3}};
  for (const Case& c : cases) {
    std::vector<double> ref(c.n, 0.0);
    scalar::linear_interp(in.data(), in.size(), c.ratio, ref.data(), c.n);
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      std::vector<double> got(c.n, -1.0);
      ops().linear_interp(in.data(), in.size(), c.ratio, got.data(), c.n);
      for (std::size_t i = 0; i < c.n; ++i) {
        EXPECT_EQ(got[i], ref[i])
            << level_name(level) << " ratio=" << c.ratio << " i=" << i;
      }
    }
  }
}

TEST(SimdKernelTest, DotMatchesScalarWithinTolerance) {
  Rng rng(106);
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    const auto a = random_vector(rng, n);
    const auto b = random_vector(rng, n);
    const double ref = scalar::dot(a.data(), b.data(), n);
    double mag = 0.0;
    for (std::size_t i = 0; i < n; ++i) mag += std::abs(a[i] * b[i]);
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      const double got = ops().dot(a.data(), b.data(), n);
      EXPECT_NEAR(got, ref, 1e-12 * (1.0 + mag))
          << level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, DotReverseMatchesScalarWithinTolerance) {
  Rng rng(107);
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    if (n == 0) continue;
    const auto taps = random_vector(rng, n);
    const auto x = random_vector(rng, n);
    // x points at the newest sample: the kernel reads x[0], x[-1], ...
    const double* newest = x.data() + n - 1;
    const double ref = scalar::dot_reverse(taps.data(), newest, n);
    double mag = 0.0;
    for (std::size_t t = 0; t < n; ++t) mag += std::abs(taps[t] * newest[-static_cast<std::ptrdiff_t>(t)]);
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      const double got = ops().dot_reverse(taps.data(), newest, n);
      EXPECT_NEAR(got, ref, 1e-12 * (1.0 + mag))
          << level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernelTest, PearsonMomentsMatchScalarWithinTolerance) {
  Rng rng(108);
  LevelGuard guard;
  for (std::size_t n : kSizes) {
    const auto a = random_vector(rng, n);
    const auto b = random_vector(rng, n);
    const PearsonMoments ref = scalar::pearson_moments(a.data(), b.data(), n);
    const double tol = 1e-12 * (1.0 + static_cast<double>(n));
    for (Level level : available_levels()) {
      ASSERT_TRUE(set_level(level));
      const PearsonMoments got = ops().pearson_moments(a.data(), b.data(), n);
      EXPECT_NEAR(got.sa, ref.sa, tol) << level_name(level) << " n=" << n;
      EXPECT_NEAR(got.sb, ref.sb, tol);
      EXPECT_NEAR(got.saa, ref.saa, tol * 4.0);
      EXPECT_NEAR(got.sbb, ref.sbb, tol * 4.0);
      EXPECT_NEAR(got.sab, ref.sab, tol * 4.0);
    }
  }
}

}  // namespace
}  // namespace vibguard::dsp::simd
