#include "dsp/spectral.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"

namespace vibguard::dsp {
namespace {

TEST(BandEnergyTest, ToneEnergyInItsBand) {
  const Signal s = tone(100.0, 1.0, 1000.0);
  EXPECT_GT(band_energy(s, 90.0, 110.0), 100.0 * band_energy(s, 200.0, 400.0));
}

TEST(BandEnergyTest, FractionsSumToOne) {
  Rng rng(1);
  const Signal s = white_noise(1.0, 1000.0, 1.0, rng);
  const double lo = band_energy_fraction(s, 0.0, 250.0);
  const double hi = band_energy_fraction(s, 250.0, 500.0);
  EXPECT_NEAR(lo + hi, 1.0, 0.02);
}

TEST(BandEnergyTest, SilenceHasZeroFraction) {
  const Signal s = Signal::zeros(1000, 1000.0);
  EXPECT_DOUBLE_EQ(band_energy_fraction(s, 0.0, 500.0), 0.0);
}

TEST(BandEnergyTest, RejectsInvertedBand) {
  const Signal s = Signal::zeros(10, 1000.0);
  EXPECT_THROW(band_energy(s, 100.0, 50.0), InvalidArgument);
}

TEST(SpectralCentroidTest, ToneCentroidAtToneFrequency) {
  const Signal s = tone(250.0, 1.0, 2000.0);
  EXPECT_NEAR(spectral_centroid(s), 250.0, 10.0);
}

TEST(SpectralCentroidTest, HigherToneHigherCentroid) {
  const Signal lo = tone(100.0, 1.0, 2000.0);
  const Signal hi = tone(700.0, 1.0, 2000.0);
  EXPECT_LT(spectral_centroid(lo), spectral_centroid(hi));
}

TEST(AverageSpectraTest, MeanOfTwo) {
  std::vector<std::vector<double>> spectra = {{1.0, 2.0}, {3.0, 4.0}};
  const auto avg = average_spectra(spectra);
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 3.0);
}

TEST(AverageSpectraTest, RejectsMismatchedLengths) {
  std::vector<std::vector<double>> spectra = {{1.0, 2.0}, {3.0}};
  EXPECT_THROW(average_spectra(spectra), InvalidArgument);
}

TEST(AverageSpectraTest, EmptyInputEmptyOutput) {
  EXPECT_TRUE(average_spectra({}).empty());
}

TEST(ResampledSpectrumTest, PeakAtToneFrequency) {
  const Signal s = tone(50.0, 2.0, 1000.0);
  const auto mag = magnitude_spectrum_resampled(s, 100.0, 101);
  std::size_t best = 0;
  for (std::size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] > mag[best]) best = i;
  }
  EXPECT_EQ(best, 50u);  // 1 Hz per point
}

TEST(ResampledSpectrumTest, OutputSize) {
  const Signal s = Signal::zeros(512, 1000.0);
  EXPECT_EQ(magnitude_spectrum_resampled(s, 100.0, 64).size(), 64u);
}

TEST(ResampledSpectrumTest, RejectsBadArguments) {
  const Signal s = Signal::zeros(16, 1000.0);
  EXPECT_THROW(magnitude_spectrum_resampled(s, 100.0, 1), InvalidArgument);
  EXPECT_THROW(magnitude_spectrum_resampled(s, 600.0, 16), InvalidArgument);
}

}  // namespace
}  // namespace vibguard::dsp
