#include "dsp/window.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vibguard::dsp {
namespace {

class WindowTypeTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowTypeTest, ValuesWithinUnitRange) {
  const auto w = make_window(GetParam(), 128);
  for (double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_P(WindowTypeTest, RequestedLength) {
  EXPECT_EQ(make_window(GetParam(), 64).size(), 64u);
  EXPECT_EQ(make_window(GetParam(), 1).size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, WindowTypeTest,
                         ::testing::Values(WindowType::kRectangular,
                                           WindowType::kHann,
                                           WindowType::kHamming,
                                           WindowType::kBlackman));

TEST(WindowTest, RectangularIsAllOnes) {
  const auto w = make_window(WindowType::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(WindowTest, HannStartsAtZeroPeaksAtCenter) {
  const auto w = make_window(WindowType::kHann, 64);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);  // periodic form peaks at n/2
}

TEST(WindowTest, HammingEndpointsNonZero) {
  const auto w = make_window(WindowType::kHamming, 64);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
}

TEST(WindowTest, SymmetryAroundCenter) {
  const auto w = make_window(WindowType::kHann, 64);
  for (std::size_t i = 1; i < 32; ++i) {
    EXPECT_NEAR(w[i], w[64 - i], 1e-12);
  }
}

TEST(WindowTest, ZeroLengthRejected) {
  EXPECT_THROW(make_window(WindowType::kHann, 0), InvalidArgument);
}

TEST(WindowTest, ApplyWindowMultiplies) {
  std::vector<double> frame = {2.0, 2.0, 2.0, 2.0};
  const std::vector<double> w = {0.0, 0.5, 1.0, 0.5};
  apply_window(frame, w);
  EXPECT_DOUBLE_EQ(frame[0], 0.0);
  EXPECT_DOUBLE_EQ(frame[2], 2.0);
}

TEST(WindowTest, ApplyWindowRejectsMismatch) {
  std::vector<double> frame = {1.0, 2.0};
  const std::vector<double> w = {1.0};
  EXPECT_THROW(apply_window(frame, w), InvalidArgument);
}

TEST(WindowTest, WindowSum) {
  const std::vector<double> w = {0.5, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(window_sum(w), 2.0);
}

}  // namespace
}  // namespace vibguard::dsp
