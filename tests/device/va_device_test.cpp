#include "device/va_device.hpp"

#include <gtest/gtest.h>

#include "common/db.hpp"
#include "dsp/generate.hpp"

namespace vibguard::device {
namespace {

Signal speech_like(double spl, Rng& rng) {
  Signal s = dsp::pink_noise(1.0, 16000.0, 1.0, rng);
  return s.scaled_to_rms(spl_to_rms(spl));
}

TEST(VaDeviceTest, FourPaperDevices) {
  const auto devices = all_va_devices();
  ASSERT_EQ(devices.size(), 4u);
  EXPECT_EQ(devices[0].name, "Google Home");
  EXPECT_EQ(devices[3].name, "iPhone");
}

TEST(VaDeviceTest, SmartSpeakersMoreSensitiveThanPhone) {
  EXPECT_LT(google_home().trigger_threshold_spl,
            iphone().trigger_threshold_spl);
  EXPECT_LT(alexa_echo().trigger_threshold_spl,
            iphone().trigger_threshold_spl);
}

TEST(VaDeviceTest, SiriDevicesRequireVoiceMatch) {
  EXPECT_TRUE(macbook_pro().requires_voice_match);
  EXPECT_TRUE(iphone().requires_voice_match);
  EXPECT_FALSE(google_home().requires_voice_match);
}

TEST(VaDeviceTest, LoudCommandsTriggerQuietOnesDoNot) {
  VaDevice dev(google_home());
  Rng rng(1);
  const Signal loud = speech_like(70.0, rng);
  const Signal quiet = speech_like(15.0, rng);
  EXPECT_GT(dev.trigger_probability(loud, CommandKind::kReplay, false), 0.95);
  EXPECT_LT(dev.trigger_probability(quiet, CommandKind::kReplay, false),
            0.05);
}

TEST(VaDeviceTest, TriggerProbabilityMonotoneInLevel) {
  VaDevice dev(alexa_echo());
  Rng rng(2);
  double prev = 0.0;
  for (double spl : {20.0, 30.0, 40.0, 50.0, 60.0}) {
    const double p = dev.trigger_probability(speech_like(spl, rng),
                                             CommandKind::kReplay, false);
    EXPECT_GE(p, prev - 1e-9);
    prev = p;
  }
}

TEST(VaDeviceTest, SiriRejectsUnknownLiveAndSynthesizedVoices) {
  VaDevice dev(iphone());
  Rng rng(3);
  const Signal s = speech_like(80.0, rng);
  EXPECT_DOUBLE_EQ(
      dev.trigger_probability(s, CommandKind::kLiveVoice, false), 0.0);
  EXPECT_DOUBLE_EQ(
      dev.trigger_probability(s, CommandKind::kSynthesized, false), 0.0);
  // Replay of the enrolled user's own recording passes the voice check.
  EXPECT_GT(dev.trigger_probability(s, CommandKind::kReplay, false), 0.5);
  // The enrolled user speaking live is accepted.
  EXPECT_GT(dev.trigger_probability(s, CommandKind::kLiveVoice, true), 0.5);
}

TEST(VaDeviceTest, SynthesisPenalizedVsReplay) {
  VaDevice dev(google_home());
  Rng rng(4);
  const Signal s = speech_like(38.0, rng);  // near threshold
  EXPECT_LT(dev.trigger_probability(s, CommandKind::kSynthesized, false),
            dev.trigger_probability(s, CommandKind::kReplay, false));
}

TEST(VaDeviceTest, HeavilyLowpassedSoundHarderToRecognize) {
  VaDevice dev(google_home());
  Rng rng(5);
  Signal wide = speech_like(45.0, rng);
  // Same level but all energy below 300 Hz.
  Signal narrow = dsp::tone(150.0, 1.0, 16000.0, 1.0);
  narrow = narrow.scaled_to_rms(spl_to_rms(45.0));
  EXPECT_GT(dev.trigger_probability(wide, CommandKind::kReplay, false),
            dev.trigger_probability(narrow, CommandKind::kReplay, false));
}

TEST(VaDeviceTest, EmptyRecordingNeverTriggers) {
  VaDevice dev(google_home());
  EXPECT_DOUBLE_EQ(
      dev.trigger_probability(Signal({}, 16000.0), CommandKind::kReplay,
                              false),
      0.0);
}

TEST(VaDeviceTest, TriggersSamplesBernoulli) {
  VaDevice dev(google_home());
  Rng rng(6);
  const Signal loud = speech_like(80.0, rng);
  int hits = 0;
  for (int i = 0; i < 50; ++i) {
    hits += dev.triggers(loud, CommandKind::kReplay, false, rng) ? 1 : 0;
  }
  EXPECT_GT(hits, 45);
}

}  // namespace
}  // namespace vibguard::device
