#include "device/sync.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/generate.hpp"

namespace vibguard::device {
namespace {

TEST(SyncTest, SampledDelaysWithinBounds) {
  SyncChannel sync;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double d = sync.sample_delay(rng);
    EXPECT_GE(d, sync.config().min_delay_s);
    EXPECT_LE(d, sync.config().max_delay_s);
  }
}

TEST(SyncTest, MeanDelayNearConfigured) {
  SyncChannel sync;
  Rng rng(2);
  double acc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) acc += sync.sample_delay(rng);
  EXPECT_NEAR(acc / n, sync.config().mean_delay_s, 0.01);
}

TEST(SyncTest, DelayedViewDropsPrefix) {
  SyncChannel sync;
  const Signal s = Signal::zeros(1600, 16000.0);
  const Signal d = sync.delayed_view(s, 0.05);
  EXPECT_EQ(d.size(), 1600u - 800u);
}

TEST(SyncTest, DelayedViewRejectsNegative) {
  SyncChannel sync;
  const Signal s = Signal::zeros(100, 16000.0);
  EXPECT_THROW(sync.delayed_view(s, -0.1), vibguard::InvalidArgument);
}

TEST(SyncTest, EstimatesInjectedDelay) {
  SyncChannel sync;
  Rng rng(3);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  const double true_delay = 0.100;
  const Signal wearable = sync.delayed_view(scene, true_delay);
  const double est = sync.estimate_delay_s(scene, wearable);
  EXPECT_NEAR(est, true_delay, 0.002);
}

class SyncDelayTest : public ::testing::TestWithParam<double> {};

TEST_P(SyncDelayTest, RecoversDelayAcrossRange) {
  SyncChannel sync;
  Rng rng(4);
  const Signal scene = dsp::white_noise(2.0, 16000.0, 1.0, rng);
  const Signal wearable = sync.delayed_view(scene, GetParam());
  EXPECT_NEAR(sync.estimate_delay_s(scene, wearable), GetParam(), 0.002);
}

INSTANTIATE_TEST_SUITE_P(DelaySweep, SyncDelayTest,
                         ::testing::Values(0.02, 0.05, 0.1, 0.15, 0.2, 0.25));

TEST(SyncTest, EstimateRobustToIndependentNoise) {
  SyncChannel sync;
  Rng rng(5);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  Signal wearable = sync.delayed_view(scene, 0.08);
  for (double& v : wearable) v += rng.gaussian(0.0, 0.3);
  EXPECT_NEAR(sync.estimate_delay_s(scene, wearable), 0.08, 0.003);
}

TEST(SyncTest, SynchronizeAlignsContent) {
  SyncChannel sync;
  Rng rng(6);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  const Signal wearable = sync.delayed_view(scene, 0.12);
  const auto [va, wear] = sync.synchronize(scene, wearable);
  ASSERT_EQ(va.size(), wear.size());
  ASSERT_GT(va.size(), 0u);
  // Aligned signals are sample-identical here (same underlying scene).
  double err = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    err += std::abs(va[i] - wear[i]);
  }
  EXPECT_NEAR(err, 0.0, 1e-9);
}

TEST(SyncTest, SynchronizeIntoMatchesSynchronize) {
  SyncChannel sync;
  Rng rng(7);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  const Signal wearable = sync.delayed_view(scene, 0.12);
  const auto [va_ref, wear_ref] = sync.synchronize(scene, wearable);
  Signal va_out, wear_out;
  dsp::CorrelationScratch scratch;
  const double delay =
      sync.synchronize_into(scene, wearable, va_out, wear_out, scratch);
  EXPECT_NEAR(delay, 0.12, 0.002);
  ASSERT_EQ(va_out.size(), va_ref.size());
  ASSERT_EQ(wear_out.size(), wear_ref.size());
  for (std::size_t i = 0; i < va_out.size(); ++i) {
    EXPECT_DOUBLE_EQ(va_out[i], va_ref[i]);
    EXPECT_DOUBLE_EQ(wear_out[i], wear_ref[i]);
  }
}

TEST(SyncTest, SynchronizeIntoNegativeShiftTrimsWearable) {
  // The wearable *leads* here (the VA recording is the delayed one), so the
  // estimated delay and shift are negative and the trim falls on the
  // wearable side.
  SyncChannel sync;
  Rng rng(8);
  const Signal scene = dsp::white_noise(1.0, 1000.0, 1.0, rng);
  const Signal va = sync.delayed_view(scene, 0.1);  // va(n) = scene(n + 100)
  const Signal& wearable = scene;
  Signal va_out, wear_out;
  dsp::CorrelationScratch scratch;
  const double delay =
      sync.synchronize_into(va, wearable, va_out, wear_out, scratch);
  EXPECT_NEAR(delay, -0.1, 0.002);
  ASSERT_EQ(va_out.size(), wear_out.size());
  ASSERT_GT(va_out.size(), 0u);
  double err = 0.0;
  for (std::size_t i = 0; i < va_out.size(); ++i) {
    err += std::abs(va_out[i] - wear_out[i]);
  }
  EXPECT_NEAR(err, 0.0, 1e-9);
}

TEST(SyncTest, SynchronizeIntoZeroOverlapYieldsEmptySignals) {
  // Anti-correlated constants: every overlapping lag scores negative, so
  // the correlation peak (zero) sits at the far no-overlap extreme,
  // |shift| = max_search exceeds both signal lengths, and the trimmed
  // overlap is empty. Must degrade gracefully, not crash or misindex.
  SyncChannel sync;
  const Signal va(std::vector<double>(50, 1.0), 1000.0);
  const Signal wearable(std::vector<double>(40, -1.0), 1000.0);
  Signal va_out, wear_out;
  dsp::CorrelationScratch scratch;
  const double delay =
      sync.synchronize_into(va, wearable, va_out, wear_out, scratch);
  EXPECT_DOUBLE_EQ(delay, -sync.config().max_search_s);
  EXPECT_TRUE(va_out.empty());
  EXPECT_TRUE(wear_out.empty());
  // The copying overload must agree.
  const auto [va2, wear2] = sync.synchronize(va, wearable);
  EXPECT_TRUE(va2.empty());
  EXPECT_TRUE(wear2.empty());
}

TEST(SyncTest, SynchronizeIntoEmptyWearable) {
  SyncChannel sync;
  Rng rng(9);
  const Signal va = dsp::white_noise(0.5, 1000.0, 1.0, rng);
  const Signal wearable(std::vector<double>{}, 1000.0);
  Signal va_out, wear_out;
  dsp::CorrelationScratch scratch;
  sync.synchronize_into(va, wearable, va_out, wear_out, scratch);
  EXPECT_TRUE(va_out.empty());
  EXPECT_TRUE(wear_out.empty());
}

TEST(SyncTest, SynchronizeIntoDelayNearSearchLimit) {
  // Positive shift close to max_search_s: va_begin lands deep into the VA
  // recording and the overlap shrinks to wearable length.
  SyncChannel sync;
  Rng rng(10);
  const Signal scene = dsp::white_noise(0.5, 1000.0, 1.0, rng);
  const Signal wearable = sync.delayed_view(scene, 0.28);
  Signal va_out, wear_out;
  dsp::CorrelationScratch scratch;
  const double delay =
      sync.synchronize_into(scene, wearable, va_out, wear_out, scratch);
  EXPECT_NEAR(delay, 0.28, 0.005);
  ASSERT_EQ(va_out.size(), wear_out.size());
  ASSERT_EQ(va_out.size(), wearable.size());
  for (std::size_t i = 0; i < va_out.size(); ++i) {
    EXPECT_DOUBLE_EQ(va_out[i], wear_out[i]);
  }
}

TEST(SyncTest, SynchronizeIntoRejectsAliasedOutputs) {
  SyncChannel sync;
  Signal va = Signal::zeros(100, 1000.0);
  Signal wearable = Signal::zeros(100, 1000.0);
  Signal out;
  dsp::CorrelationScratch scratch;
  EXPECT_THROW(sync.synchronize_into(va, wearable, va, out, scratch),
               vibguard::InvalidArgument);
  EXPECT_THROW(sync.synchronize_into(va, wearable, out, wearable, scratch),
               vibguard::InvalidArgument);
  EXPECT_THROW(sync.synchronize_into(va, wearable, out, out, scratch),
               vibguard::InvalidArgument);
}

TEST(SyncTest, RejectsMismatchedRates) {
  SyncChannel sync;
  const Signal a = Signal::zeros(100, 16000.0);
  const Signal b = Signal::zeros(100, 8000.0);
  EXPECT_THROW(sync.estimate_delay_s(a, b), vibguard::InvalidArgument);
}

TEST(SyncTest, RejectsBadDelayBounds) {
  SyncConfig cfg;
  cfg.min_delay_s = 0.5;
  cfg.max_delay_s = 0.1;
  EXPECT_THROW(SyncChannel{cfg}, vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::device
