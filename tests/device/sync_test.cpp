#include "device/sync.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/generate.hpp"

namespace vibguard::device {
namespace {

TEST(SyncTest, SampledDelaysWithinBounds) {
  SyncChannel sync;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double d = sync.sample_delay(rng);
    EXPECT_GE(d, sync.config().min_delay_s);
    EXPECT_LE(d, sync.config().max_delay_s);
  }
}

TEST(SyncTest, MeanDelayNearConfigured) {
  SyncChannel sync;
  Rng rng(2);
  double acc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) acc += sync.sample_delay(rng);
  EXPECT_NEAR(acc / n, sync.config().mean_delay_s, 0.01);
}

TEST(SyncTest, DelayedViewDropsPrefix) {
  SyncChannel sync;
  const Signal s = Signal::zeros(1600, 16000.0);
  const Signal d = sync.delayed_view(s, 0.05);
  EXPECT_EQ(d.size(), 1600u - 800u);
}

TEST(SyncTest, DelayedViewRejectsNegative) {
  SyncChannel sync;
  const Signal s = Signal::zeros(100, 16000.0);
  EXPECT_THROW(sync.delayed_view(s, -0.1), vibguard::InvalidArgument);
}

TEST(SyncTest, EstimatesInjectedDelay) {
  SyncChannel sync;
  Rng rng(3);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  const double true_delay = 0.100;
  const Signal wearable = sync.delayed_view(scene, true_delay);
  const double est = sync.estimate_delay_s(scene, wearable);
  EXPECT_NEAR(est, true_delay, 0.002);
}

class SyncDelayTest : public ::testing::TestWithParam<double> {};

TEST_P(SyncDelayTest, RecoversDelayAcrossRange) {
  SyncChannel sync;
  Rng rng(4);
  const Signal scene = dsp::white_noise(2.0, 16000.0, 1.0, rng);
  const Signal wearable = sync.delayed_view(scene, GetParam());
  EXPECT_NEAR(sync.estimate_delay_s(scene, wearable), GetParam(), 0.002);
}

INSTANTIATE_TEST_SUITE_P(DelaySweep, SyncDelayTest,
                         ::testing::Values(0.02, 0.05, 0.1, 0.15, 0.2, 0.25));

TEST(SyncTest, EstimateRobustToIndependentNoise) {
  SyncChannel sync;
  Rng rng(5);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  Signal wearable = sync.delayed_view(scene, 0.08);
  for (double& v : wearable) v += rng.gaussian(0.0, 0.3);
  EXPECT_NEAR(sync.estimate_delay_s(scene, wearable), 0.08, 0.003);
}

TEST(SyncTest, SynchronizeAlignsContent) {
  SyncChannel sync;
  Rng rng(6);
  const Signal scene = dsp::white_noise(1.5, 16000.0, 1.0, rng);
  const Signal wearable = sync.delayed_view(scene, 0.12);
  const auto [va, wear] = sync.synchronize(scene, wearable);
  ASSERT_EQ(va.size(), wear.size());
  ASSERT_GT(va.size(), 0u);
  // Aligned signals are sample-identical here (same underlying scene).
  double err = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    err += std::abs(va[i] - wear[i]);
  }
  EXPECT_NEAR(err, 0.0, 1e-9);
}

TEST(SyncTest, RejectsMismatchedRates) {
  SyncChannel sync;
  const Signal a = Signal::zeros(100, 16000.0);
  const Signal b = Signal::zeros(100, 8000.0);
  EXPECT_THROW(sync.estimate_delay_s(a, b), vibguard::InvalidArgument);
}

TEST(SyncTest, RejectsBadDelayBounds) {
  SyncConfig cfg;
  cfg.min_delay_s = 0.5;
  cfg.max_delay_s = 0.1;
  EXPECT_THROW(SyncChannel{cfg}, vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::device
