#include "device/wearable.hpp"

#include <gtest/gtest.h>

#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::device {
namespace {

TEST(WearableTest, PresetsHaveDistinctProperties) {
  const auto fossil = fossil_gen5();
  const auto moto = moto360();
  EXPECT_EQ(fossil.name, "Fossil Gen 5");
  EXPECT_EQ(moto.name, "Moto 360 (2020)");
  EXPECT_GT(moto.accelerometer.base_noise_rms,
            fossil.accelerometer.base_noise_rms);
}

TEST(WearableTest, RecordProducesMicRateSignal) {
  Wearable w;
  Rng rng(1);
  const Signal in = dsp::tone(1000.0, 0.5, 16000.0, 0.05);
  const Signal rec = w.record(in, rng);
  EXPECT_DOUBLE_EQ(rec.sample_rate(), 16000.0);
  EXPECT_EQ(rec.size(), in.size());
}

TEST(WearableTest, CrossDomainCaptureProducesVibrationRate) {
  Wearable w;
  Rng rng(2);
  const Signal rec = dsp::tone(1500.0, 1.0, 16000.0, 0.05);
  const Signal vib = w.cross_domain_capture(rec, rng);
  EXPECT_DOUBLE_EQ(vib.sample_rate(), 200.0);
  EXPECT_GT(vib.rms(), 0.0);
}

TEST(WearableTest, HighFrequencyContentSurvivesConversion) {
  // The defining property of cross-domain sensing: HF audio content creates
  // vibration; LF-only audio creates mostly noise.
  Wearable w;
  Rng r1(3), r2(3);
  const Signal hf = dsp::tone(2130.0, 1.0, 16000.0, 0.05);  // aliases to 70 Hz
  const Signal lf = dsp::tone(250.0, 1.0, 16000.0, 0.05);
  const Signal vib_hf = w.cross_domain_capture(hf, r1);
  const Signal vib_lf = w.cross_domain_capture(lf, r2);
  // The HF signal yields a far stronger deterministic vibration: its band
  // energy concentrates at the alias frequency while LF yields noise.
  EXPECT_GT(vib_hf.rms(), 2.0 * vib_lf.rms());
}

TEST(WearableTest, CaptureIsReproducibleGivenSeed) {
  Wearable w;
  Rng r1(4), r2(4);
  const Signal rec = dsp::tone(1200.0, 0.5, 16000.0, 0.05);
  const Signal v1 = w.cross_domain_capture(rec, r1);
  const Signal v2 = w.cross_domain_capture(rec, r2);
  ASSERT_EQ(v1.size(), v2.size());
  for (std::size_t i = 0; i < v1.size(); ++i) {
    EXPECT_DOUBLE_EQ(v1[i], v2[i]);
  }
}

}  // namespace
}  // namespace vibguard::device
