// Differential fuzz driver: every optimized kernel is cross-checked against
// the deliberately naive implementations in tests/reference on randomized
// sizes, rates and contents. All randomness flows through vibguard::Rng
// seeded from fuzz_base_seed() + trial index (no wall clock anywhere), so
// each trial is reproducible from the seed printed on failure — see
// fuzz_util.hpp for the replay recipe.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "attacks/attack.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/signal.hpp"
#include "common/wav.hpp"
#include "core/segmentation.hpp"
#include "core/streaming.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/mel.hpp"
#include "dsp/resample.hpp"
#include "dsp/simd.hpp"
#include "dsp/stft.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "eval/scenario.hpp"
#include "fuzz/fuzz_util.hpp"
#include "reference/reference_dft.hpp"
#include "reference/reference_dsp.hpp"
#include "reference/reference_metrics.hpp"

namespace vibguard {
namespace {

std::vector<double> random_vector(Rng& rng, std::size_t n, double lo,
                                  double hi) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.uniform(lo, hi);
  return out;
}

void expect_complex_near(std::span<const dsp::Complex> got,
                         std::span<const dsp::Complex> want, double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].real(), want[i].real(), tol) << "bin " << i;
    EXPECT_NEAR(got[i].imag(), want[i].imag(), tol) << "bin " << i;
  }
}

TEST(FuzzDifferential, FftPlanTransformMatchesNaiveDft) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    // Mix of power-of-two and Bluestein sizes, including 1.
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 96));
    std::vector<dsp::Complex> x(n);
    for (auto& v : x) {
      v = dsp::Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    const double tol = 1e-9 * static_cast<double>(n) + 1e-10;

    std::vector<dsp::Complex> fwd = x;
    dsp::get_plan(n).transform(fwd, false);
    expect_complex_near(fwd, testing::naive_dft(x, false), tol);

    std::vector<dsp::Complex> inv = x;
    dsp::get_plan(n).transform(inv, true);
    expect_complex_near(inv, testing::naive_dft(x, true), tol);

    // Round trip back to the input.
    dsp::get_plan(n).transform(fwd, true);
    expect_complex_near(fwd, x, tol);
  }
}

TEST(FuzzDifferential, RfftMatchesNaiveDft) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    // Even sizes exercise the packed half-length fast path, odd sizes the
    // complex fallback.
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 128));
    const auto x = random_vector(rng, n, -1.0, 1.0);
    const double tol = 1e-9 * static_cast<double>(n) + 1e-10;

    expect_complex_near(dsp::rfft(x), testing::naive_rfft(x), tol);

    const auto mag_ref = testing::naive_magnitude_spectrum(x);
    const auto mag = dsp::magnitude_spectrum(x);
    ASSERT_EQ(mag.size(), mag_ref.size());
    for (std::size_t k = 0; k < mag.size(); ++k) {
      EXPECT_NEAR(mag[k], mag_ref[k], tol) << "bin " << k;
    }

    std::vector<double> pow(n / 2 + 1, 0.0);
    dsp::get_plan(n).power(x, pow);
    const auto pow_ref = testing::naive_power_spectrum(x);
    for (std::size_t k = 0; k < pow.size(); ++k) {
      EXPECT_NEAR(pow[k], pow_ref[k], tol) << "bin " << k;
    }
  }
}

TEST(FuzzDifferential, PlannedStftPowerMatchesNaive) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  constexpr dsp::WindowType kWindows[] = {
      dsp::WindowType::kRectangular, dsp::WindowType::kHann,
      dsp::WindowType::kHamming, dsp::WindowType::kBlackman};
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const auto ws = static_cast<std::size_t>(rng.uniform_int(4, 64));
    const auto hop = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(ws)));
    // Includes empty and shorter-than-one-window inputs (padded path).
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    const double rate = rng.uniform(50.0, 16000.0);
    const auto window = kWindows[rng.uniform_int(0, 3)];
    const Signal sig(random_vector(rng, len, -1.0, 1.0), rate);

    dsp::Spectrogram out;
    dsp::stft_power_into(sig, ws, hop, out, window);
    const auto ref = testing::naive_stft_power(sig, ws, hop, window);

    ASSERT_EQ(out.frames(), ref.size());
    ASSERT_EQ(out.bins(), ws / 2 + 1);
    EXPECT_NEAR(out.bin_hz(), rate / static_cast<double>(ws), 1e-9);
    EXPECT_NEAR(out.hop_seconds(), static_cast<double>(hop) / rate, 1e-12);
    for (std::size_t f = 0; f < out.frames(); ++f) {
      for (std::size_t b = 0; b < out.bins(); ++b) {
        EXPECT_NEAR(out.at(f, b), ref[f][b], 1e-9)
            << "frame " << f << " bin " << b;
      }
    }
  }
}

TEST(FuzzDifferential, Correlation2dMatchesScalarPearson) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const auto bins = static_cast<std::size_t>(rng.uniform_int(1, 24));
    const auto fa = static_cast<std::size_t>(rng.uniform_int(1, 40));
    const auto fb = static_cast<std::size_t>(rng.uniform_int(1, 40));
    dsp::Spectrogram a(fa, bins, 1.0, 0.01);
    dsp::Spectrogram b(fb, bins, 1.0, 0.01);
    for (double& v : a.values()) v = rng.gaussian(0.5, 1.0);
    for (double& v : b.values()) v = rng.gaussian(-0.25, 2.0);

    const std::size_t n = std::min(fa, fb) * bins;
    const double ref = testing::naive_pearson(
        std::span<const double>(a.values().data(), n),
        std::span<const double>(b.values().data(), n));
    EXPECT_NEAR(dsp::correlation_2d(a, b), ref, 1e-9);
  }
}

TEST(FuzzDifferential, CrossCorrelateMatchesDirectReference) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);

    // Small problem: exercises the library's direct evaluation path.
    {
      const auto la = static_cast<std::size_t>(rng.uniform_int(0, 120));
      const auto lb = static_cast<std::size_t>(rng.uniform_int(0, 120));
      const auto lag = static_cast<std::size_t>(rng.uniform_int(0, 40));
      const auto a = rng.gaussian_vector(la);
      const auto b = rng.gaussian_vector(lb);
      const auto got = dsp::cross_correlate(a, b, lag);
      const auto ref = testing::naive_cross_correlate(a, b, lag);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-9) << "lag index " << i;
      }
    }

    // Large problem: min(len) * (2*max_lag + 1) >= 2^18 forces the
    // FFT-based path (see correlate.cpp's crossover).
    {
      const auto len = static_cast<std::size_t>(rng.uniform_int(640, 760));
      const auto lag = static_cast<std::size_t>(rng.uniform_int(220, 240));
      const auto a = rng.gaussian_vector(len);
      const auto b = rng.gaussian_vector(len);
      const auto got = dsp::cross_correlate(a, b, lag);
      const auto ref = testing::naive_cross_correlate(a, b, lag);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], ref[i], 1e-6) << "lag index " << i;
      }
    }
  }
}

TEST(FuzzDifferential, DecimateAliasMatchesNaiveLinearResampler) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const double in_rate = rng.uniform(100.0, 16000.0);
    const double target = rng.uniform(0.05 * in_rate, in_rate);
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 600));
    const Signal sig(rng.gaussian_vector(len), in_rate);

    const Signal got = dsp::decimate_alias(sig, target);
    const Signal ref = testing::naive_linear_resample(sig, target);
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_DOUBLE_EQ(got.sample_rate(), target);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-12) << "sample " << i;
    }

    // The _into overload must agree bit-for-bit, including when the output
    // aliases the input (the PR 3 aliasing regression).
    Signal out;
    dsp::decimate_alias_into(sig, target, out);
    ASSERT_EQ(out.size(), got.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i], got[i]) << "sample " << i;
    }
    Signal self = sig;
    dsp::decimate_alias_into(self, target, self);
    ASSERT_EQ(self.size(), got.size());
    EXPECT_DOUBLE_EQ(self.sample_rate(), target);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_DOUBLE_EQ(self[i], got[i]) << "sample " << i;
    }
  }
}

TEST(FuzzDifferential, ResampleMatchesNaiveReference) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const double in_rate = rng.uniform(200.0, 16000.0);
    const bool down = rng.bernoulli(0.5);
    const double target = down ? rng.uniform(0.1 * in_rate, 0.95 * in_rate)
                               : rng.uniform(1.05 * in_rate, 4.0 * in_rate);
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 500));
    const Signal sig(rng.gaussian_vector(len), in_rate);

    const Signal got = dsp::resample(sig, target);
    const Signal ref = testing::naive_resample(sig, target);
    ASSERT_EQ(got.size(), ref.size());
    EXPECT_DOUBLE_EQ(got.sample_rate(), ref.sample_rate());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], ref[i], 1e-9) << "sample " << i;
    }
  }
}

TEST(FuzzDifferential, ComputeRocMatchesBruteForce) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const auto na = static_cast<std::size_t>(rng.uniform_int(1, 50));
    const auto nl = static_cast<std::size_t>(rng.uniform_int(1, 50));
    // Quantized scores so duplicate values and exact rate ties are common.
    std::vector<double> attacks(na), legits(nl);
    for (double& v : attacks) {
      v = std::round(rng.uniform(0.0, 1.0) * 8.0) / 8.0;
    }
    for (double& v : legits) {
      v = std::round(rng.uniform(0.2, 1.2) * 8.0) / 8.0;
    }

    const auto roc = eval::compute_roc(attacks, legits);
    const auto ref = testing::naive_roc(attacks, legits);

    ASSERT_EQ(roc.points.size(), ref.thresholds.size());
    for (std::size_t i = 0; i < roc.points.size(); ++i) {
      EXPECT_DOUBLE_EQ(roc.points[i].threshold, ref.thresholds[i]);
      EXPECT_DOUBLE_EQ(roc.points[i].fdr, ref.fdr[i]) << "point " << i;
      EXPECT_DOUBLE_EQ(roc.points[i].tdr, ref.tdr[i]) << "point " << i;
    }
    EXPECT_NEAR(roc.auc, ref.auc, 1e-12);
    EXPECT_NEAR(roc.eer, ref.eer, 1e-12);
    EXPECT_NEAR(roc.eer_threshold, ref.eer_threshold, 1e-9);
  }
}

// Re-runs the DSP pipelines at every dispatch level this build + CPU
// provides and holds them to the documented numerical contract versus the
// scalar reference: pipelines built purely from elementwise kernels (FFT
// transforms, planned STFT power, decimate_alias) must agree bit-for-bit;
// pipelines through the reduction kernels (FIR resample, correlation_2d,
// MFCC) to ULP-scaled tolerance.
TEST(FuzzDifferential, DispatchLevelsMatchScalarReference) {
  const auto levels = dsp::simd::available_levels();
  const dsp::simd::Level entry_level = dsp::simd::active_level();
  if (levels.size() < 2) {
    GTEST_SKIP() << "only the scalar dispatch level is available";
  }
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);

    // Shared random inputs for all levels of this trial.
    const auto fft_n = static_cast<std::size_t>(rng.uniform_int(2, 96));
    std::vector<dsp::Complex> fft_in(fft_n);
    for (auto& v : fft_in) {
      v = dsp::Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    }
    const auto ws = static_cast<std::size_t>(rng.uniform_int(4, 64));
    const auto hop = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(ws)));
    const Signal stft_sig(
        rng.gaussian_vector(static_cast<std::size_t>(rng.uniform_int(0, 400))),
        rng.uniform(50.0, 16000.0));
    const double deci_rate = rng.uniform(100.0, 16000.0);
    const double deci_target = rng.uniform(0.05 * deci_rate, deci_rate);
    const Signal deci_sig(
        rng.gaussian_vector(static_cast<std::size_t>(rng.uniform_int(0, 600))),
        deci_rate);
    const double rs_rate = rng.uniform(400.0, 16000.0);
    const double rs_target = rng.uniform(0.1 * rs_rate, 0.95 * rs_rate);
    const Signal rs_sig(
        rng.gaussian_vector(static_cast<std::size_t>(rng.uniform_int(0, 500))),
        rs_rate);
    const auto corr_bins = static_cast<std::size_t>(rng.uniform_int(1, 24));
    dsp::Spectrogram corr_a(static_cast<std::size_t>(rng.uniform_int(1, 40)),
                            corr_bins, 1.0, 0.01);
    dsp::Spectrogram corr_b(static_cast<std::size_t>(rng.uniform_int(1, 40)),
                            corr_bins, 1.0, 0.01);
    for (double& v : corr_a.values()) v = rng.gaussian(0.5, 1.0);
    for (double& v : corr_b.values()) v = rng.gaussian(-0.25, 2.0);
    const Signal mfcc_sig(
        rng.gaussian_vector(
            static_cast<std::size_t>(rng.uniform_int(400, 1600))),
        16000.0);

    // Scalar pass: the reference every other level is held to.
    ASSERT_TRUE(dsp::simd::set_level(dsp::simd::Level::kScalar));
    std::vector<dsp::Complex> fft_ref = fft_in;
    dsp::get_plan(fft_n).transform(fft_ref, false);
    dsp::Spectrogram stft_ref;
    dsp::stft_power_into(stft_sig, ws, hop, stft_ref);
    const Signal deci_ref = dsp::decimate_alias(deci_sig, deci_target);
    const Signal rs_ref = dsp::resample(rs_sig, rs_target);
    const double corr_ref = dsp::correlation_2d(corr_a, corr_b);
    const auto mfcc_ref = dsp::compute_mfcc(mfcc_sig);

    for (dsp::simd::Level level : levels) {
      if (level == dsp::simd::Level::kScalar) continue;
      SCOPED_TRACE(dsp::simd::level_name(level));
      ASSERT_TRUE(dsp::simd::set_level(level));

      // Elementwise-kernel pipelines: bit-identical.
      std::vector<dsp::Complex> fft_got = fft_in;
      dsp::get_plan(fft_n).transform(fft_got, false);
      for (std::size_t i = 0; i < fft_n; ++i) {
        EXPECT_EQ(fft_got[i].real(), fft_ref[i].real()) << "bin " << i;
        EXPECT_EQ(fft_got[i].imag(), fft_ref[i].imag()) << "bin " << i;
      }
      dsp::Spectrogram stft_got;
      dsp::stft_power_into(stft_sig, ws, hop, stft_got);
      ASSERT_EQ(stft_got.frames(), stft_ref.frames());
      for (std::size_t f = 0; f < stft_got.frames(); ++f) {
        for (std::size_t b = 0; b < stft_got.bins(); ++b) {
          EXPECT_EQ(stft_got.at(f, b), stft_ref.at(f, b))
              << "frame " << f << " bin " << b;
        }
      }
      const Signal deci_got = dsp::decimate_alias(deci_sig, deci_target);
      ASSERT_EQ(deci_got.size(), deci_ref.size());
      for (std::size_t i = 0; i < deci_got.size(); ++i) {
        EXPECT_EQ(deci_got[i], deci_ref[i]) << "sample " << i;
      }

      // Reduction-kernel pipelines: ULP-scaled tolerance.
      const Signal rs_got = dsp::resample(rs_sig, rs_target);
      ASSERT_EQ(rs_got.size(), rs_ref.size());
      for (std::size_t i = 0; i < rs_got.size(); ++i) {
        EXPECT_NEAR(rs_got[i], rs_ref[i],
                    1e-12 * (1.0 + std::abs(rs_ref[i])))
            << "sample " << i;
      }
      EXPECT_NEAR(dsp::correlation_2d(corr_a, corr_b), corr_ref, 1e-12);
      const auto mfcc_got = dsp::compute_mfcc(mfcc_sig);
      ASSERT_EQ(mfcc_got.size(), mfcc_ref.size());
      for (std::size_t f = 0; f < mfcc_got.size(); ++f) {
        ASSERT_EQ(mfcc_got[f].size(), mfcc_ref[f].size());
        for (std::size_t k = 0; k < mfcc_got[f].size(); ++k) {
          // log() of near-zero mel energies amplifies reassociation noise,
          // so the bound is looser than the raw kernel tolerance.
          EXPECT_NEAR(mfcc_got[f][k], mfcc_ref[f][k],
                      1e-6 * (1.0 + std::abs(mfcc_ref[f][k])))
              << "frame " << f << " coeff " << k;
        }
      }
    }
    dsp::simd::set_level(entry_level);
  }
  dsp::simd::set_level(entry_level);
}

TEST(FuzzDifferential, WavRoundTripWithinQuantization) {
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  const std::string path =
      (std::filesystem::temp_directory_path() / "vibguard_fuzz_roundtrip.wav")
          .string();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 400));
    const double rate = static_cast<double>(rng.uniform_int(100, 48000));
    // Beyond [-1, 1] on purpose: clipping is part of the contract.
    const Signal sig(random_vector(rng, len, -1.3, 1.3), rate);

    write_wav(path, sig);
    const Signal loaded = read_wav(path);
    ASSERT_EQ(loaded.size(), sig.size());
    EXPECT_DOUBLE_EQ(loaded.sample_rate(), rate);
    for (std::size_t i = 0; i < sig.size(); ++i) {
      const double clipped = std::clamp(sig[i], -1.0, 1.0);
      const double quantized =
          static_cast<double>(std::lround(clipped * 32767.0)) / 32767.0;
      // Exactly the documented quantization, i.e. within half an LSB of the
      // clipped input.
      EXPECT_DOUBLE_EQ(loaded[i], quantized) << "sample " << i;
      EXPECT_LE(std::abs(loaded[i] - clipped), 0.5 / 32767.0 + 1e-12)
          << "sample " << i;
    }

    // A second round trip of already-quantized data must be exact.
    write_wav(path, loaded);
    const Signal again = read_wav(path);
    ASSERT_EQ(again.size(), loaded.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      EXPECT_DOUBLE_EQ(again[i], loaded[i]) << "sample " << i;
    }
  }
  std::remove(path.c_str());
}

TEST(FuzzDifferential, WavDecodeSurvivesMutatedAndTruncatedStreams) {
  // Robustness fuzz for the hardened decoder: starting from a valid stream,
  // random byte mutations and truncations must always end in either a
  // decoded Signal or a vibguard::Error — never UB, a crash, or a foreign
  // exception type. The seed reproduces any failure exactly.
  const std::size_t iters = testing::fuzz_iterations();
  const std::uint64_t base = testing::fuzz_base_seed();
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 200));
    const double rate = static_cast<double>(rng.uniform_int(100, 48000));
    std::vector<std::uint8_t> bytes =
        encode_wav(Signal(random_vector(rng, len, -1.0, 1.0), rate));

    // Truncate to a random prefix half the time, then flip random bytes —
    // header fields, chunk sizes and payload are all fair game.
    if (rng.bernoulli(0.5)) {
      bytes.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()))));
    }
    const auto flips = static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t f = 0; f < flips && !bytes.empty(); ++f) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }

    try {
      const Signal decoded = decode_wav(bytes, "fuzz");
      // Whatever survived must be internally consistent.
      EXPECT_GT(decoded.sample_rate(), 0.0);
      EXPECT_LE(decoded.size(), bytes.size());  // 2 bytes per sample min
    } catch (const Error&) {
      // Malformed input rejected cleanly: the documented contract.
    }
  }
}

TEST(FuzzDifferential, StreamingMatchesBatchScore) {
  // The streaming pipeline's batch-compatibility invariant, fuzzed: a
  // run-to-completion kExactBatch stream must reproduce the batch score
  // BIT-IDENTICALLY for any push schedule — including single-sample pushes,
  // empty pushes, ragged tails and channels advancing out of lockstep.
  // Runs at whatever VIBGUARD_SIMD level the environment selects, so the
  // CI matrix checks the invariant per dispatch level.
  const std::size_t iters = testing::fuzz_iterations(10);
  const std::uint64_t base = testing::fuzz_base_seed();
  core::DefenseConfig full_cfg;
  const core::DefenseSystem system(full_cfg);
  core::StreamingPipeline pipeline(system);
  core::Workspace workspace;
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = base + it;
    SCOPED_TRACE(testing::seed_note(seed));
    Rng rng(seed);

    eval::ScenarioSimulator sim(eval::ScenarioConfig{}, seed);
    Rng speaker_rng(seed + 1);
    const auto user =
        speech::sample_speaker(rng.bernoulli(0.5) ? speech::Sex::kFemale
                                                  : speech::Sex::kMale,
                               speaker_rng);
    const auto& lexicon = speech::command_lexicon();
    const auto& cmd = lexicon[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(lexicon.size()) - 1))];
    eval::TrialRecordings trial;
    if (rng.bernoulli(0.5)) {
      trial = sim.legitimate_trial(cmd, user);
    } else {
      const auto adv = speech::sample_speaker(speech::Sex::kMale, speaker_rng);
      trial = sim.attack_trial(attacks::AttackType::kReplay, cmd, user, adv);
    }
    core::OracleSegmenter seg(trial.alignment,
                              eval::reference_sensitive_set());

    Rng batch_rng(seed ^ 0xb47c5ULL);
    const core::ScoreOutcome batch = system.try_score(
        trial.va, trial.wearable, &seg, batch_rng, workspace);

    // Random interleaved schedule. Frame sizes are drawn from a mixed
    // distribution so tiny (1-3 sample), medium and block-crossing pushes
    // all occur, with occasional empty frames on one channel.
    pipeline.begin(trial.va.sample_rate(), &seg, Rng(seed ^ 0xb47c5ULL));
    std::size_t va_off = 0;
    std::size_t wear_off = 0;
    while (va_off < trial.va.size() || wear_off < trial.wearable.size()) {
      const auto draw = [&rng]() -> std::size_t {
        const double u = rng.uniform();
        if (u < 0.25) return static_cast<std::size_t>(rng.uniform_int(0, 3));
        if (u < 0.65) {
          return static_cast<std::size_t>(rng.uniform_int(16, 500));
        }
        return static_cast<std::size_t>(rng.uniform_int(1000, 5000));
      };
      const std::size_t va_n =
          std::min(draw(), trial.va.size() - va_off);
      const std::size_t wear_n =
          std::min(draw(), trial.wearable.size() - wear_off);
      pipeline.push(trial.va.samples().subspan(va_off, va_n),
                    trial.wearable.samples().subspan(wear_off, wear_n));
      va_off += va_n;
      wear_off += wear_n;
    }
    const core::StreamOutcome streamed = pipeline.finalize();

    ASSERT_EQ(streamed.outcome.status, batch.status);
    if (batch.ok()) {
      EXPECT_EQ(streamed.outcome.score, batch.score);  // bitwise
    }
  }
}

}  // namespace
}  // namespace vibguard
