// Shared knobs for the differential fuzz driver.
//
// Every fuzz test runs `fuzz_iterations()` randomized trials. Each trial
// derives its own vibguard::Rng seed as fuzz_base_seed() + trial index and
// announces it through SCOPED_TRACE, so any failure prints the exact seed
// needed to replay it:
//
//   VIBGUARD_FUZZ_SEED=<seed> VIBGUARD_FUZZ_ITERS=1 ./fuzz_tests
//
// The tier-1 smoke slice uses the small default iteration count; the
// `fuzz`-labeled ctest soak slice sets VIBGUARD_FUZZ_ITERS=1000.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace vibguard::testing {

inline std::size_t fuzz_iterations(std::size_t smoke_default = 25) {
  if (const char* env = std::getenv("VIBGUARD_FUZZ_ITERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return smoke_default;
}

inline std::uint64_t fuzz_base_seed() {
  if (const char* env = std::getenv("VIBGUARD_FUZZ_SEED")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v != 0) return static_cast<std::uint64_t>(v);
  }
  return 20260806ULL;
}

inline std::string seed_note(std::uint64_t seed) {
  return "replay: VIBGUARD_FUZZ_SEED=" + std::to_string(seed) +
         " VIBGUARD_FUZZ_ITERS=1";
}

}  // namespace vibguard::testing
