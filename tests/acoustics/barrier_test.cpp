#include "acoustics/barrier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::acoustics {
namespace {

TEST(BarrierTest, TransmitPreservesLengthAndRate) {
  Rng rng(1);
  const Signal in = dsp::white_noise(0.5, 16000.0, 0.1, rng);
  const Barrier b(glass_window());
  const Signal out = b.transmit(in);
  EXPECT_EQ(out.size(), in.size());
  EXPECT_DOUBLE_EQ(out.sample_rate(), in.sample_rate());
}

TEST(BarrierTest, AttenuatesHighMoreThanLow) {
  const Barrier b(glass_window());
  const Signal low = dsp::tone(200.0, 1.0, 16000.0);
  const Signal high = dsp::tone(2000.0, 1.0, 16000.0);
  const double low_gain = b.transmit(low).rms() / low.rms();
  const double high_gain = b.transmit(high).rms() / high.rms();
  EXPECT_GT(low_gain, 4.0 * high_gain);
}

TEST(BarrierTest, ShiftsSpectralBalanceTowardLowFrequencies) {
  Rng rng(2);
  const Signal in = dsp::white_noise(1.0, 16000.0, 0.1, rng);
  const Barrier b(wooden_door());
  const Signal out = b.transmit(in);
  EXPECT_GT(dsp::band_energy_fraction(out, 0.0, 500.0),
            dsp::band_energy_fraction(in, 0.0, 500.0) + 0.2);
}

TEST(BarrierTest, ThickerBarrierLosesMore) {
  const Signal in = dsp::tone(500.0, 0.5, 16000.0);
  const Barrier thin(glass_window(), 1.0);
  const Barrier thick(glass_window(), 2.0);
  EXPECT_GT(thin.transmit(in).rms(), 1.5 * thick.transmit(in).rms());
}

TEST(BarrierTest, GainMatchesMaterialTimesThickness) {
  const Barrier b(glass_window(), 2.0);
  const Material m = glass_window();
  for (double f : {100.0, 1000.0, 3000.0}) {
    EXPECT_NEAR(-20.0 * std::log10(b.gain(f)),
                2.0 * m.transmission_loss_db(f), 1e-9);
  }
}

TEST(BarrierTest, RejectsNonPositiveThickness) {
  EXPECT_THROW(Barrier(glass_window(), 0.0), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::acoustics
