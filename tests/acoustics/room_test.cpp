#include "acoustics/room.hpp"

#include <gtest/gtest.h>

#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/generate.hpp"

namespace vibguard::acoustics {
namespace {

TEST(RoomConfigTest, PaperPresets) {
  EXPECT_EQ(room_a().barrier_material.name, "glass_window");
  EXPECT_EQ(room_b().barrier_material.name, "wooden_door");
  EXPECT_EQ(room_c().barrier_material.name, "wooden_door");
  EXPECT_EQ(room_d().barrier_material.name, "glass_wall");
  EXPECT_EQ(all_rooms().size(), 4u);
}

TEST(RoomConfigTest, SizesMatchPaper) {
  EXPECT_DOUBLE_EQ(room_a().length_m, 7.0);
  EXPECT_DOUBLE_EQ(room_a().width_m, 6.0);
  EXPECT_DOUBLE_EQ(room_d().length_m, 5.0);
  EXPECT_DOUBLE_EQ(room_d().width_m, 3.0);
}

TEST(RoomConfigTest, LookupByName) {
  EXPECT_EQ(room_by_name("Room A").name, "Room A");
  EXPECT_EQ(room_by_name("C").name, "Room C");
  EXPECT_THROW(room_by_name("Room Z"), vibguard::InvalidArgument);
}

TEST(RoomTest, RenderAttenuatesWithDistance) {
  Room room(room_a(), vibguard::Rng(1));
  const Signal src = dsp::tone(500.0, 0.5, 16000.0, 1.0);
  const Signal near = room.render(src, 0.5);
  const Signal far = room.render(src, 4.0);
  EXPECT_GT(near.rms(), 2.0 * far.rms());
}

TEST(RoomTest, AmbientNoiseMatchesConfiguredSpl) {
  Room room(room_a(), vibguard::Rng(2));
  const Signal n = room.ambient(2.0, 16000.0);
  EXPECT_NEAR(vibguard::rms_to_spl(n.rms()), room_a().ambient_noise_spl,
              1.0);
}

TEST(RoomTest, RenderIncludesNoiseFloor) {
  Room room(room_a(), vibguard::Rng(3));
  const Signal silence = Signal::zeros(16000, 16000.0);
  const Signal out = room.render(silence, 2.0);
  EXPECT_GT(out.rms(), 0.5 * vibguard::spl_to_rms(room_a().ambient_noise_spl));
}

TEST(RoomTest, ReverbAddsEnergyToTail) {
  Room room(room_b(), vibguard::Rng(4));
  // A click followed by silence: reflections land after the click.
  Signal src = Signal::zeros(16000, 16000.0);
  src[100] = 1.0;
  const Signal out = room.render(src, 1.0);
  double tail = 0.0;
  for (std::size_t i = 400; i < 4000; ++i) tail += std::abs(out[i]);
  EXPECT_GT(tail, 0.0);
}

TEST(RoomTest, RendersAtDifferentPositionsDiffer) {
  Room room(room_a(), vibguard::Rng(5));
  const Signal src = dsp::tone(500.0, 0.5, 16000.0, 1.0);
  const Signal a = room.render(src, 2.0);
  const Signal b = room.render(src, 2.0);
  // Per-render reflection jitter + independent noise -> not identical.
  double diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(RoomTest, DeterministicGivenSameSeed) {
  Room r1(room_a(), vibguard::Rng(7));
  Room r2(room_a(), vibguard::Rng(7));
  const Signal src = dsp::tone(500.0, 0.2, 16000.0, 1.0);
  const Signal a = r1.render(src, 2.0);
  const Signal b = r2.render(src, 2.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace vibguard::acoustics
