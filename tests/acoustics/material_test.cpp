#include "acoustics/material.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace vibguard::acoustics {
namespace {

class MaterialParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MaterialParamTest, LossIsMonotoneNonDecreasingInFrequency) {
  const Material m = material_by_name(GetParam());
  double prev = 0.0;
  for (double f = 50.0; f <= 8000.0; f *= 1.2) {
    const double loss = m.transmission_loss_db(f);
    EXPECT_GE(loss, prev - 1e-9) << m.name << " at " << f;
    prev = loss;
  }
}

TEST_P(MaterialParamTest, GainMatchesLoss) {
  const Material m = material_by_name(GetParam());
  for (double f : {100.0, 500.0, 1000.0, 4000.0}) {
    const double g = m.transmission_gain(f);
    EXPECT_GT(g, 0.0);
    EXPECT_LE(g, 1.0);
    EXPECT_NEAR(-20.0 * std::log10(g), m.transmission_loss_db(f), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMaterials, MaterialParamTest,
                         ::testing::Values("glass_window", "glass_wall",
                                           "wooden_door", "brick_wall"));

TEST(MaterialTest, BarrierEffectShape) {
  // The paper's core observation (Sec. III-B): glass/wood attenuate >500 Hz
  // far more than 85-500 Hz content.
  for (const Material& m : {glass_window(), wooden_door()}) {
    const double low = m.transmission_loss_db(200.0);
    const double high = m.transmission_loss_db(2000.0);
    EXPECT_GT(high, low + 12.0) << m.name;
  }
}

TEST(MaterialTest, BrickBlocksEverything) {
  const Material b = brick_wall();
  EXPECT_GT(b.transmission_loss_db(200.0), 40.0);
  EXPECT_GT(b.transmission_loss_db(2000.0), 50.0);
  // Brick's low-frequency loss exceeds glass's by a wide margin — why the
  // paper's adversary targets windows and doors.
  EXPECT_GT(b.transmission_loss_db(200.0),
            glass_window().transmission_loss_db(200.0) + 15.0);
}

TEST(MaterialTest, WoodLossierThanGlass) {
  EXPECT_GT(wooden_door().transmission_loss_db(300.0),
            glass_window().transmission_loss_db(300.0));
}

TEST(MaterialTest, LookupByNameRoundTrips) {
  EXPECT_EQ(material_by_name("glass_window").name, "glass_window");
  EXPECT_EQ(material_by_name("wooden_door").name, "wooden_door");
  EXPECT_THROW(material_by_name("cardboard"), vibguard::InvalidArgument);
}

TEST(MaterialTest, NonPositiveFrequencyUsesFloorLoss) {
  const Material m = glass_window();
  EXPECT_DOUBLE_EQ(m.transmission_loss_db(0.0), m.low_loss_db);
  EXPECT_DOUBLE_EQ(m.transmission_loss_db(-5.0), m.low_loss_db);
}

}  // namespace
}  // namespace vibguard::acoustics
