#include "acoustics/ambient.hpp"

#include <gtest/gtest.h>

#include "acoustics/room.hpp"
#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::acoustics {
namespace {

class AmbientKindTest : public ::testing::TestWithParam<AmbientKind> {};

TEST_P(AmbientKindTest, MatchesRequestedLevel) {
  Rng rng(1);
  const Signal n = ambient_noise(GetParam(), 2.0, 16000.0, 50.0, rng);
  EXPECT_NEAR(rms_to_spl(n.rms()), 50.0, 0.5);
}

TEST_P(AmbientKindTest, RequestedDurationAndRate) {
  Rng rng(2);
  const Signal n = ambient_noise(GetParam(), 1.5, 16000.0, 40.0, rng);
  EXPECT_NEAR(n.duration(), 1.5, 0.01);
  EXPECT_DOUBLE_EQ(n.sample_rate(), 16000.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AmbientKindTest,
                         ::testing::ValuesIn(all_ambient_kinds()));

TEST(AmbientTest, HvacIsLowFrequencyDominated) {
  Rng rng(3);
  const Signal n =
      ambient_noise(AmbientKind::kHvac, 4.0, 16000.0, 50.0, rng);
  EXPECT_GT(dsp::band_energy_fraction(n, 0.0, 300.0), 0.9);
}

TEST(AmbientTest, BabbleOccupiesSpeechBand) {
  Rng rng(4);
  const Signal n =
      ambient_noise(AmbientKind::kBabble, 4.0, 16000.0, 50.0, rng);
  EXPECT_GT(dsp::band_energy_fraction(n, 100.0, 2000.0), 0.6);
}

TEST(AmbientTest, MusicHasBeatStructure) {
  Rng rng(5);
  const Signal n =
      ambient_noise(AmbientKind::kMusic, 6.0, 16000.0, 50.0, rng);
  // Short-window level should oscillate (beat), unlike steady noise.
  const auto win = static_cast<std::size_t>(0.1 * 16000.0);
  double mx = 0.0, mn = 1e9;
  for (std::size_t i = 0; i + win < n.size(); i += win) {
    const double r = n.slice(i, i + win).rms();
    mx = std::max(mx, r);
    mn = std::min(mn, r);
  }
  EXPECT_GT(mx, 1.7 * mn);
}

TEST(AmbientTest, NamesDistinct) {
  EXPECT_EQ(ambient_name(AmbientKind::kBabble), "babble");
  EXPECT_EQ(all_ambient_kinds().size(), 4u);
}

TEST(AmbientTest, RoomConfigDefaultsToQuiet) {
  EXPECT_EQ(RoomConfig{}.ambient_kind, AmbientKind::kQuiet);
}

TEST(AmbientTest, RejectsNegativeDuration) {
  Rng rng(6);
  EXPECT_THROW(ambient_noise(AmbientKind::kQuiet, -1.0, 16000.0, 40.0, rng),
               vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::acoustics
