#include "acoustics/propagation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/generate.hpp"

namespace vibguard::acoustics {
namespace {

TEST(PropagationTest, InverseDistanceLaw) {
  EXPECT_DOUBLE_EQ(spreading_gain(1.0), 1.0);
  EXPECT_DOUBLE_EQ(spreading_gain(2.0), 0.5);
  EXPECT_DOUBLE_EQ(spreading_gain(4.0), 0.25);
}

TEST(PropagationTest, NearFieldClamped) {
  EXPECT_DOUBLE_EQ(spreading_gain(0.01), 10.0);
  EXPECT_DOUBLE_EQ(spreading_gain(0.0), 10.0);
}

TEST(PropagationTest, RejectsNegativeDistance) {
  EXPECT_THROW(spreading_gain(-1.0), vibguard::InvalidArgument);
}

TEST(PropagationTest, AirAbsorptionNegligibleAtLowFrequency) {
  EXPECT_NEAR(air_absorption_gain(100.0, 5.0), 1.0, 1e-3);
}

TEST(PropagationTest, AirAbsorptionGrowsWithFrequencyAndDistance) {
  EXPECT_LT(air_absorption_gain(8000.0, 10.0),
            air_absorption_gain(1000.0, 10.0));
  EXPECT_LT(air_absorption_gain(8000.0, 10.0),
            air_absorption_gain(8000.0, 1.0));
}

TEST(PropagationTest, PropagateScalesRmsByDistance) {
  const Signal in = dsp::tone(500.0, 0.5, 16000.0);
  const Signal out = propagate(in, 2.0);
  EXPECT_NEAR(out.rms(), in.rms() / 2.0, 0.02 * in.rms());
}

TEST(PropagationTest, PropagatePreservesShape) {
  const Signal in = dsp::tone(500.0, 0.5, 16000.0);
  const Signal out = propagate(in, 3.0);
  EXPECT_EQ(out.size(), in.size());
}

}  // namespace
}  // namespace vibguard::acoustics
