#include "sensors/accelerometer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dsp/fft.hpp"
#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::sensors {
namespace {

AccelerometerConfig quiet_config() {
  AccelerometerConfig cfg;
  cfg.body_motion_rms = 0.0;
  cfg.base_noise_rms = 0.0;
  cfg.lf_noise_coeff = 0.0;
  return cfg;
}

TEST(AccelerometerTest, OutputAtAccelRate) {
  Accelerometer acc;
  Rng rng(1);
  const Signal audio = dsp::tone(1000.0, 1.0, 16000.0, 0.05);
  const Signal vib = acc.capture(audio, rng);
  EXPECT_DOUBLE_EQ(vib.sample_rate(), 200.0);
  EXPECT_NEAR(static_cast<double>(vib.size()), 200.0, 2.0);
}

TEST(AccelerometerTest, CouplingAttenuatesLowPassesHigh) {
  Accelerometer acc;
  EXPECT_LT(acc.coupling_gain(100.0), 0.1);
  EXPECT_LT(acc.coupling_gain(300.0), 0.2);
  EXPECT_GT(acc.coupling_gain(2000.0), 0.8);
}

TEST(AccelerometerTest, HighFrequencyToneAliasesIntoBand) {
  // Effect 2: a 1030 Hz tone at 200 Hz sampling aliases to |1030-5*200|=30.
  Accelerometer acc(quiet_config());
  Rng rng(2);
  const Signal audio = dsp::tone(1030.0, 2.0, 16000.0, 0.05);
  const Signal vib = acc.capture(audio, rng);
  const auto mag = dsp::magnitude_spectrum(vib.samples());
  std::size_t best = 3;  // skip DC/LF-boost region
  for (std::size_t k = 4; k < mag.size(); ++k) {
    if (mag[k] > mag[best]) best = k;
  }
  const double f = dsp::bin_frequency(best, vib.size(), 200.0);
  EXPECT_NEAR(f, 30.0, 2.0);
}

TEST(AccelerometerTest, LowFrequencyBoostBelow5Hz) {
  Accelerometer acc;
  EXPECT_GT(acc.sensitivity_gain(1.0), 4.0);
  EXPECT_NEAR(acc.sensitivity_gain(50.0), 1.0, 0.01);
}

TEST(AccelerometerTest, ChirpResponseShowsLfArtifact) {
  // Paper Fig. 7: a 500-2500 Hz chirp produces strong 0-5 Hz response.
  Accelerometer acc;
  Rng rng(3);
  const Signal chirp_sig = dsp::chirp(500.0, 2500.0, 2.0, 16000.0, 0.05);
  const Signal vib = acc.capture(chirp_sig, rng);
  const double lf = dsp::band_energy(vib, 0.0, 5.0);
  const double rest_avg =
      dsp::band_energy(vib, 5.0, 100.0) / 19.0;  // per-5Hz-slice average
  EXPECT_GT(lf, 2.0 * rest_avg);
}

TEST(AccelerometerTest, LfDominanceMeasuresBandFraction) {
  Accelerometer acc;
  const Signal low = dsp::tone(200.0, 1.0, 16000.0, 0.05);
  const Signal high = dsp::tone(2000.0, 1.0, 16000.0, 0.05);
  EXPECT_GT(acc.lf_dominance(low), 0.95);
  EXPECT_LT(acc.lf_dominance(high), 0.05);
}

TEST(AccelerometerTest, NoiseGrowsWithLfDominance) {
  // Effect 4: the paper's key physical mechanism — low-frequency-dominated
  // excitation produces a noisier vibration capture.
  AccelerometerConfig cfg;
  cfg.body_motion_rms = 0.0;
  Accelerometer acc(cfg);
  Rng r1(4), r2(4);
  const Signal low = dsp::tone(200.0, 2.0, 16000.0, 0.05);
  const Signal high = dsp::tone(2130.0, 2.0, 16000.0, 0.05);
  const Signal vib_low = acc.capture(low, r1);
  const Signal vib_high = acc.capture(high, r2);
  // Residual noise: the low tone couples at ~0.05 so its capture is almost
  // pure noise; compare that noise against the high tone's noise by looking
  // off the deterministic bins — simplest robust check: the low capture's
  // non-deterministic energy dominates.
  const double det_low = 0.05 * acc.coupling_gain(200.0) / std::sqrt(2.0);
  EXPECT_GT(vib_low.rms(), 3.0 * det_low);
  (void)vib_high;
}

TEST(AccelerometerTest, BroadbandExcitationStaysClean) {
  AccelerometerConfig cfg;
  cfg.body_motion_rms = 0.0;
  Accelerometer acc(cfg);
  Rng rng(5);
  // 2130 Hz: NOT a multiple of 200 Hz, so it aliases to 70 Hz instead of DC.
  const Signal high = dsp::tone(2130.0, 2.0, 16000.0, 0.05);
  const Signal vib = acc.capture(high, rng);
  // Deterministic content (aliased tone) should dominate the capture:
  // total rms close to coupled amplitude / sqrt(2).
  const double det = 0.05 * acc.coupling_gain(2130.0) / std::sqrt(2.0);
  EXPECT_NEAR(vib.rms(), det, 0.5 * det);
}

TEST(AccelerometerTest, BodyMotionConfinedToLowBand) {
  AccelerometerConfig cfg = quiet_config();
  cfg.body_motion_rms = 0.05;
  Accelerometer acc(cfg);
  Rng rng(6);
  const Signal silence = Signal::zeros(32000, 16000.0);
  const Signal vib = acc.capture(silence, rng);
  EXPECT_GT(dsp::band_energy_fraction(vib, 0.0, 4.0), 0.9);
}

TEST(AccelerometerTest, SaturationCapsNoiseAtHighDrive) {
  AccelerometerConfig cfg;
  cfg.body_motion_rms = 0.0;
  Accelerometer acc(cfg);
  Rng r1(7), r2(7);
  const Signal quiet = dsp::tone(200.0, 2.0, 16000.0, 0.02);
  const Signal loud = dsp::tone(200.0, 2.0, 16000.0, 2.0);
  const double n_quiet = acc.capture(quiet, r1).rms();
  const double n_loud = acc.capture(loud, r2).rms();
  // 100x louder drive must NOT give 100x the noise (saturation), but the
  // loud capture carries a 100x bigger deterministic residual, so compare
  // against the saturation bound instead.
  const double bound = cfg.base_noise_rms +
                       cfg.lf_noise_coeff * cfg.lf_noise_saturation_rms +
                       2.0 * acc.coupling_gain(200.0);
  EXPECT_LT(n_loud, bound);
  EXPECT_GT(n_quiet, 0.0);
}

TEST(AccelerometerTest, RejectsUndersampledAudio) {
  Accelerometer acc;
  Rng rng(8);
  const Signal audio({1.0, 2.0}, 300.0);
  EXPECT_THROW(acc.capture(audio, rng), vibguard::InvalidArgument);
}

TEST(AccelerometerTest, EmptyAudioEmptyVibration) {
  Accelerometer acc;
  Rng rng(9);
  const Signal audio({}, 16000.0);
  EXPECT_TRUE(acc.capture(audio, rng).empty());
}

}  // namespace
}  // namespace vibguard::sensors
