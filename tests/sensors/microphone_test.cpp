#include "sensors/microphone.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/generate.hpp"

namespace vibguard::sensors {
namespace {

TEST(MicrophoneTest, PassbandNearUnity) {
  Microphone mic;
  for (double f : {300.0, 1000.0, 3000.0}) {
    EXPECT_NEAR(mic.response(f), 1.0, 0.1) << f;
  }
}

TEST(MicrophoneTest, RollsOffAtBandEdges) {
  Microphone mic;
  EXPECT_LT(mic.response(10.0), 0.1);
  EXPECT_LT(mic.response(12000.0), 0.3);
}

TEST(MicrophoneTest, RecordingAddsNoiseFloor) {
  Microphone mic;
  Rng rng(1);
  const Signal silence = Signal::zeros(16000, 16000.0);
  const Signal rec = mic.record(silence, rng);
  EXPECT_NEAR(rec.rms(), mic.config().noise_floor_rms,
              0.1 * mic.config().noise_floor_rms);
}

TEST(MicrophoneTest, ClipsAtConfiguredLevel) {
  MicrophoneConfig cfg;
  cfg.clip_level = 0.5;
  Microphone mic(cfg);
  Rng rng(2);
  const Signal loud = dsp::tone(1000.0, 0.1, 16000.0, 10.0);
  const Signal rec = mic.record(loud, rng);
  EXPECT_LE(rec.peak(), 0.5 + 1e-9);
}

TEST(MicrophoneTest, ResamplesForeignRates) {
  Microphone mic;
  Rng rng(3);
  const Signal in = dsp::tone(1000.0, 0.5, 48000.0, 0.1);
  const Signal rec = mic.record(in, rng);
  EXPECT_DOUBLE_EQ(rec.sample_rate(), 16000.0);
  EXPECT_NEAR(static_cast<double>(rec.size()), 8000.0, 5.0);
}

TEST(MicrophoneTest, SignalDominatesNoiseAtSpeechLevels) {
  Microphone mic;
  Rng rng(4);
  const Signal speech = dsp::tone(500.0, 0.5, 16000.0, 0.05);
  const Signal rec = mic.record(speech, rng);
  EXPECT_NEAR(rec.rms(), speech.rms(), 0.1 * speech.rms());
}

TEST(MicrophoneTest, RejectsBadConfig) {
  MicrophoneConfig cfg;
  cfg.sample_rate = 0.0;
  EXPECT_THROW(Microphone{cfg}, vibguard::InvalidArgument);
  MicrophoneConfig cfg2;
  cfg2.low_cut_hz = 5000.0;
  cfg2.high_cut_hz = 100.0;
  EXPECT_THROW(Microphone{cfg2}, vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::sensors
