#include "sensors/speaker.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::sensors {
namespace {

TEST(SpeakerTest, WearableSpeakerWeakBelow350) {
  Speaker s(wearable_speaker());
  EXPECT_LT(s.response(100.0), 0.15);
  EXPECT_NEAR(s.response(2000.0), 1.0, 0.1);
}

TEST(SpeakerTest, PlaybackLoudspeakerFullerRange) {
  Speaker playback(playback_loudspeaker());
  Speaker wearable(wearable_speaker());
  EXPECT_GT(playback.response(150.0), 3.0 * wearable.response(150.0));
}

TEST(SpeakerTest, RenderShiftsBalanceUpward) {
  Rng rng(1);
  const Signal in = dsp::pink_noise(1.0, 16000.0, 0.1, rng);
  Speaker s(wearable_speaker());
  const Signal out = s.render(in);
  EXPECT_GT(dsp::spectral_centroid(out), dsp::spectral_centroid(in));
}

TEST(SpeakerTest, LinearSpeakerPreservesWaveformShape) {
  SpeakerConfig cfg = playback_loudspeaker();
  cfg.distortion = 0.0;
  Speaker s(cfg);
  const Signal in = dsp::tone(1000.0, 0.2, 16000.0, 0.1);
  const Signal out = s.render(in);
  // Mid-band tone passes nearly unchanged.
  EXPECT_NEAR(out.rms(), in.rms(), 0.05 * in.rms());
}

TEST(SpeakerTest, DistortionAddsHarmonics) {
  SpeakerConfig cfg = playback_loudspeaker();
  cfg.distortion = 0.3;
  Speaker s(cfg);
  const Signal in = dsp::tone(500.0, 0.5, 16000.0, 1.0);
  const Signal out = s.render(in);
  // Odd-order distortion puts energy at 1500 Hz.
  EXPECT_GT(dsp::band_energy(out, 1400.0, 1600.0),
            5.0 * dsp::band_energy(in, 1400.0, 1600.0) + 1e-12);
}

TEST(SpeakerTest, RejectsBadConfig) {
  SpeakerConfig cfg{1000.0, 100.0, 0.0};
  EXPECT_THROW(Speaker{cfg}, vibguard::InvalidArgument);
  SpeakerConfig cfg2{100.0, 1000.0, -0.1};
  EXPECT_THROW(Speaker{cfg2}, vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::sensors
