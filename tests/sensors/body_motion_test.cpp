#include "sensors/body_motion.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dsp/spectral.hpp"
#include "sensors/accelerometer.hpp"
#include "dsp/generate.hpp"

namespace vibguard::sensors {
namespace {

class ActivityTest : public ::testing::TestWithParam<Activity> {};

TEST_P(ActivityTest, GeneratesRequestedDuration) {
  Rng rng(1);
  const Signal m = body_motion(GetParam(), 3.0, 200.0, rng);
  EXPECT_NEAR(m.duration(), 3.0, 0.01);
  EXPECT_DOUBLE_EQ(m.sample_rate(), 200.0);
}

TEST_P(ActivityTest, EnergyConfinedToDailyActivityBand) {
  // Paper ref [22]: daily activities live in ~0.3-3.5 Hz.
  Rng rng(2);
  const Signal m = body_motion(GetParam(), 10.0, 200.0, rng);
  if (m.rms() > 0.0) {
    EXPECT_GT(dsp::band_energy_fraction(m, 0.0, 12.0), 0.9)
        << activity_name(GetParam());
  }
}

TEST_P(ActivityTest, ScaleIsLinear) {
  Rng r1(3), r2(3);
  const Signal a = body_motion(GetParam(), 2.0, 200.0, r1, 1.0);
  const Signal b = body_motion(GetParam(), 2.0, 200.0, r2, 2.0);
  if (a.rms() > 0.0) {
    EXPECT_NEAR(b.rms() / a.rms(), 2.0, 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivities, ActivityTest,
                         ::testing::ValuesIn(all_activities()));

TEST(BodyMotionTest, IntensityOrdering) {
  Rng rng(4);
  const double rest =
      body_motion(Activity::kResting, 5.0, 200.0, rng).rms();
  const double walk =
      body_motion(Activity::kWalking, 5.0, 200.0, rng).rms();
  const double run =
      body_motion(Activity::kRunning, 5.0, 200.0, rng).rms();
  EXPECT_LT(rest, walk);
  EXPECT_LT(walk, run);
}

TEST(BodyMotionTest, WalkingIsPeriodicNearTwoHz) {
  Rng rng(5);
  const Signal m = body_motion(Activity::kWalking, 20.0, 200.0, rng);
  EXPECT_GT(dsp::band_energy_fraction(m, 1.4, 2.8), 0.5);
}

TEST(BodyMotionTest, ActivityNamesDistinct) {
  EXPECT_EQ(activity_name(Activity::kWalking), "walking");
  EXPECT_EQ(all_activities().size(), 4u);
}

TEST(BodyMotionTest, RejectsBadArguments) {
  Rng rng(6);
  EXPECT_THROW(body_motion(Activity::kResting, -1.0, 200.0, rng),
               vibguard::InvalidArgument);
  EXPECT_THROW(body_motion(Activity::kResting, 1.0, 0.0, rng),
               vibguard::InvalidArgument);
}

TEST(CaptureWithMotionTest, MotionAppearsInLowBand) {
  Accelerometer acc;
  Rng r1(7), r2(7), rm(8);
  const Signal audio = dsp::tone(2130.0, 3.0, 16000.0, 0.02);
  const Signal motion =
      body_motion(Activity::kRunning, 3.2, 200.0, rm, 1.0);
  const Signal with = acc.capture_with_motion(audio, motion, r1);
  const Signal without =
      acc.capture_with_motion(audio, Signal({}, 200.0), r2);
  EXPECT_GT(dsp::band_energy(with, 0.0, 5.0),
            2.0 * dsp::band_energy(without, 0.0, 5.0));
}

TEST(CaptureWithMotionTest, RejectsWrongRateMotion) {
  Accelerometer acc;
  Rng rng(9);
  const Signal audio = dsp::tone(1000.0, 1.0, 16000.0, 0.02);
  const Signal motion = Signal::zeros(100, 100.0);
  EXPECT_THROW(acc.capture_with_motion(audio, motion, rng),
               vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::sensors
