#include "speech/phoneme.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace vibguard::speech {
namespace {

TEST(PhonemeTest, ThirtySevenCommonPhonemes) {
  EXPECT_EQ(common_phonemes().size(), 37u);
}

TEST(PhonemeTest, SymbolsAreUnique) {
  std::set<std::string> seen;
  for (const Phoneme& p : common_phonemes()) {
    EXPECT_TRUE(seen.insert(p.symbol).second) << "duplicate " << p.symbol;
  }
}

TEST(PhonemeTest, TimitInventoryHas63Entries) {
  EXPECT_EQ(timit_symbols().size(), 63u);
}

TEST(PhonemeTest, TableIIAppearanceCounts) {
  // Spot-check Table II counts.
  EXPECT_EQ(phoneme_by_symbol("t").command_frequency, 129);
  EXPECT_EQ(phoneme_by_symbol("n").command_frequency, 108);
  EXPECT_EQ(phoneme_by_symbol("ah").command_frequency, 107);
  EXPECT_EQ(phoneme_by_symbol("s").command_frequency, 101);
  EXPECT_EQ(phoneme_by_symbol("uh").command_frequency, 6);
}

TEST(PhonemeTest, VowelsAreVoicedWithThreeFormants) {
  for (const Phoneme& p : common_phonemes()) {
    if (p.cls == PhonemeClass::kVowel || p.cls == PhonemeClass::kDiphthong) {
      EXPECT_TRUE(p.voiced) << p.symbol;
      EXPECT_EQ(p.formants.size(), 3u) << p.symbol;
      EXPECT_FALSE(p.frication.has_value()) << p.symbol;
    }
  }
}

TEST(PhonemeTest, UnvoicedFricativesHaveNoFormants) {
  for (const char* sym : {"s", "sh", "f", "th", "hh"}) {
    const Phoneme& p = phoneme_by_symbol(sym);
    EXPECT_FALSE(p.voiced) << sym;
    EXPECT_TRUE(p.formants.empty()) << sym;
    EXPECT_TRUE(p.frication.has_value()) << sym;
  }
}

TEST(PhonemeTest, VoicedFricativesHaveBoth) {
  for (const char* sym : {"z", "v", "dh"}) {
    const Phoneme& p = phoneme_by_symbol(sym);
    EXPECT_TRUE(p.voiced) << sym;
    EXPECT_FALSE(p.formants.empty()) << sym;
    EXPECT_TRUE(p.frication.has_value()) << sym;
  }
}

TEST(PhonemeTest, LoudVowelsLouderThanWeakFricatives) {
  // The intensity ordering the selection criteria depend on.
  EXPECT_GT(phoneme_by_symbol("aa").intensity_db,
            phoneme_by_symbol("ih").intensity_db);
  EXPECT_GT(phoneme_by_symbol("ao").intensity_db,
            phoneme_by_symbol("eh").intensity_db);
  EXPECT_GT(phoneme_by_symbol("ih").intensity_db,
            phoneme_by_symbol("f").intensity_db);
  EXPECT_GT(phoneme_by_symbol("f").intensity_db,
            phoneme_by_symbol("th").intensity_db);
}

TEST(PhonemeTest, FormantsWithinSpeechRange) {
  for (const Phoneme& p : common_phonemes()) {
    for (const Formant& f : p.formants) {
      EXPECT_GT(f.frequency_hz, 100.0) << p.symbol;
      EXPECT_LT(f.frequency_hz, 4000.0) << p.symbol;
      EXPECT_GT(f.bandwidth_hz, 0.0) << p.symbol;
    }
  }
}

TEST(PhonemeTest, FricationBandsValid) {
  for (const Phoneme& p : common_phonemes()) {
    if (p.frication.has_value()) {
      EXPECT_LT(p.frication->low_hz, p.frication->high_hz) << p.symbol;
      EXPECT_LE(p.frication->high_hz, 8000.0) << p.symbol;
    }
  }
}

TEST(PhonemeTest, DurationsPositiveAndPlausible) {
  for (const Phoneme& p : common_phonemes()) {
    EXPECT_GT(p.duration_s, 0.02) << p.symbol;
    EXPECT_LT(p.duration_s, 0.5) << p.symbol;
  }
}

TEST(PhonemeTest, LookupFailsForUnknown) {
  EXPECT_THROW(phoneme_by_symbol("qq"), vibguard::InvalidArgument);
  EXPECT_FALSE(is_common_phoneme("qq"));
  EXPECT_TRUE(is_common_phoneme("ae"));
}

TEST(PhonemeTest, NasalsShareLowFirstFormant) {
  for (const char* sym : {"m", "n", "ng"}) {
    EXPECT_NEAR(phoneme_by_symbol(sym).formants[0].frequency_hz, 280.0, 1.0);
  }
}

}  // namespace
}  // namespace vibguard::speech
