#include "speech/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace vibguard::speech {
namespace {

CorpusConfig small_config() {
  CorpusConfig cfg;
  cfg.segments_per_phoneme = 10;
  return cfg;
}

TEST(CorpusTest, BalancedSpeakerPanel) {
  PhonemeCorpus corpus(small_config(), 1);
  EXPECT_EQ(corpus.speakers().size(), 10u);
  std::size_t males = 0;
  for (const auto& s : corpus.speakers()) {
    if (s.sex == Sex::kMale) ++males;
  }
  EXPECT_EQ(males, 5u);
}

TEST(CorpusTest, SegmentsPerPhonemeMatchesConfig) {
  PhonemeCorpus corpus(small_config(), 2);
  const auto segs = corpus.segments("ae");
  EXPECT_EQ(segs.size(), 10u);
  for (const auto& s : segs) {
    EXPECT_EQ(s.symbol, "ae");
    EXPECT_FALSE(s.audio.empty());
  }
}

TEST(CorpusTest, SegmentsRotateAcrossSpeakers) {
  PhonemeCorpus corpus(small_config(), 3);
  const auto segs = corpus.segments("t");
  std::set<std::string> speakers;
  for (const auto& s : segs) speakers.insert(s.speaker_id);
  EXPECT_EQ(speakers.size(), 10u);
}

TEST(CorpusTest, DeterministicAndOrderIndependent) {
  PhonemeCorpus c1(small_config(), 42);
  PhonemeCorpus c2(small_config(), 42);
  // Query in a different order; per-phoneme streams must not shift.
  const auto b_first = c2.segments("b");
  const auto a1 = c1.segments("ae");
  const auto a2 = c2.segments("ae");
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    ASSERT_EQ(a1[i].audio.size(), a2[i].audio.size());
    for (std::size_t k = 0; k < a1[i].audio.size(); ++k) {
      ASSERT_DOUBLE_EQ(a1[i].audio[k], a2[i].audio[k]);
    }
  }
  (void)b_first;
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  PhonemeCorpus c1(small_config(), 1);
  PhonemeCorpus c2(small_config(), 2);
  const auto s1 = c1.segments("ae");
  const auto s2 = c2.segments("ae");
  bool differs = false;
  for (std::size_t k = 0; k < std::min(s1[0].audio.size(),
                                       s2[0].audio.size());
       ++k) {
    if (s1[0].audio[k] != s2[0].audio[k]) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(CorpusTest, AllSegmentsCoversEveryPhoneme) {
  CorpusConfig cfg;
  cfg.segments_per_phoneme = 2;
  PhonemeCorpus corpus(cfg, 5);
  const auto all = corpus.all_segments();
  EXPECT_EQ(all.size(), 37u * 2u);
  std::set<std::string> symbols;
  for (const auto& s : all) symbols.insert(s.symbol);
  EXPECT_EQ(symbols.size(), 37u);
}

TEST(CorpusTest, UnknownPhonemeRejected) {
  PhonemeCorpus corpus(small_config(), 6);
  EXPECT_THROW(corpus.segments("zz"), vibguard::InvalidArgument);
}

TEST(CorpusTest, RejectsDegenerateConfig) {
  CorpusConfig cfg;
  cfg.segments_per_phoneme = 0;
  EXPECT_THROW(PhonemeCorpus(cfg, 1), vibguard::InvalidArgument);
  CorpusConfig cfg2;
  cfg2.num_males = 0;
  cfg2.num_females = 0;
  EXPECT_THROW(PhonemeCorpus(cfg2, 1), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::speech
