#include "speech/speaker.hpp"

#include <gtest/gtest.h>

namespace vibguard::speech {
namespace {

TEST(SpeakerTest, MaleAndFemaleF0RangesDisjoint) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto m = sample_speaker(Sex::kMale, rng);
    const auto f = sample_speaker(Sex::kFemale, rng);
    EXPECT_GE(m.f0_hz, 95.0);
    EXPECT_LE(m.f0_hz, 145.0);
    EXPECT_GE(f.f0_hz, 175.0);
    EXPECT_LE(f.f0_hz, 240.0);
    EXPECT_LT(m.f0_hz, f.f0_hz);
  }
}

TEST(SpeakerTest, FemaleFormantScaleHigher) {
  Rng rng(2);
  const auto m = sample_speaker(Sex::kMale, rng);
  const auto f = sample_speaker(Sex::kFemale, rng);
  EXPECT_LT(m.formant_scale, f.formant_scale);
}

TEST(SpeakerTest, PopulationAlternatesSexAndNamesSequentially) {
  Rng rng(3);
  const auto pop = sample_population(6, rng);
  ASSERT_EQ(pop.size(), 6u);
  EXPECT_EQ(pop[0].sex, Sex::kMale);
  EXPECT_EQ(pop[1].sex, Sex::kFemale);
  EXPECT_EQ(pop[0].id, "spk00");
  EXPECT_EQ(pop[5].id, "spk05");
}

TEST(SpeakerTest, PopulationIsDiverse) {
  Rng rng(4);
  const auto pop = sample_population(10, rng);
  for (std::size_t i = 1; i < pop.size(); ++i) {
    EXPECT_NE(pop[i].f0_hz, pop[0].f0_hz);
  }
}

TEST(SpeakerTest, CloneApproximatesTarget) {
  Rng rng(5);
  const auto target = sample_speaker(Sex::kFemale, rng);
  const auto clone = clone_with_estimation_error(target, rng);
  // F0 recovered within ~10%.
  EXPECT_NEAR(clone.f0_hz, target.f0_hz, 0.12 * target.f0_hz);
  EXPECT_NEAR(clone.formant_scale, target.formant_scale,
              0.08 * target.formant_scale);
  EXPECT_EQ(clone.sex, target.sex);
}

TEST(SpeakerTest, CloneIsOverSmoothed) {
  Rng rng(6);
  const auto target = sample_speaker(Sex::kMale, rng);
  const auto clone = clone_with_estimation_error(target, rng);
  // Vocoder artifact: reduced micro-variability.
  EXPECT_LT(clone.f0_jitter, target.f0_jitter);
  EXPECT_LT(clone.shimmer, target.shimmer);
  EXPECT_GE(clone.breathiness, target.breathiness);
}

TEST(SpeakerTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const auto s1 = sample_speaker(Sex::kMale, a);
  const auto s2 = sample_speaker(Sex::kMale, b);
  EXPECT_DOUBLE_EQ(s1.f0_hz, s2.f0_hz);
  EXPECT_DOUBLE_EQ(s1.formant_scale, s2.formant_scale);
}

}  // namespace
}  // namespace vibguard::speech
