#include "speech/synthesizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/db.hpp"
#include "common/error.hpp"
#include "dsp/spectral.hpp"

namespace vibguard::speech {
namespace {

SpeakerProfile test_speaker() {
  Rng rng(42);
  return sample_speaker(Sex::kMale, rng);
}

class PhonemeSynthesisTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PhonemeSynthesisTest, ProducesFiniteNonEmptyAudio) {
  Synthesizer synth;
  Rng rng(1);
  const Signal s = synth.synthesize(phoneme_by_symbol(GetParam()),
                                    test_speaker(), rng);
  EXPECT_FALSE(s.empty());
  EXPECT_GT(s.rms(), 0.0);
  for (double v : s) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(PhonemeSynthesisTest, RmsEncodesRelativeIntensity) {
  Synthesizer synth;
  Rng rng(2);
  const Phoneme& p = phoneme_by_symbol(GetParam());
  const Signal s = synth.synthesize(p, test_speaker(), rng);
  const double expected = kReferenceRms * db_to_amplitude(p.intensity_db);
  EXPECT_NEAR(s.rms(), expected, 0.05 * expected) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllCommonPhonemes, PhonemeSynthesisTest,
                         ::testing::Values("aa", "ae", "ah", "ao", "aw",
                                           "ay", "b", "ch", "d", "dh", "eh",
                                           "er", "ey", "f", "g", "hh", "ih",
                                           "iy", "jh", "k", "l", "m", "n",
                                           "ng", "ow", "p", "r", "s", "sh",
                                           "t", "th", "uh", "uw", "v", "w",
                                           "y", "z"));

TEST(SynthesizerTest, VowelEnergyPeaksNearFormants) {
  Synthesizer synth;
  Rng rng(3);
  const Phoneme& ae = phoneme_by_symbol("ae");  // F1 660, F2 1720
  const Signal s = synth.synthesize(ae, test_speaker(), rng);
  const double near_f1 = dsp::band_energy(s, 500.0, 900.0);
  const double between = dsp::band_energy(s, 2800.0, 3800.0);
  EXPECT_GT(near_f1, 3.0 * between);
}

TEST(SynthesizerTest, FricativeEnergyInFricationBand) {
  Synthesizer synth;
  Rng rng(4);
  const Signal s =
      synth.synthesize(phoneme_by_symbol("s"), test_speaker(), rng);
  // /s/: 4-7.8 kHz band.
  EXPECT_GT(dsp::band_energy_fraction(s, 3500.0, 8000.0), 0.8);
}

TEST(SynthesizerTest, VowelIsLowFrequencyDominatedVsFricative) {
  Synthesizer synth;
  Rng rng(5);
  const Signal aa =
      synth.synthesize(phoneme_by_symbol("aa"), test_speaker(), rng);
  const Signal s =
      synth.synthesize(phoneme_by_symbol("s"), test_speaker(), rng);
  EXPECT_GT(dsp::band_energy_fraction(aa, 0.0, 1500.0), 0.9);
  EXPECT_LT(dsp::band_energy_fraction(s, 0.0, 1500.0), 0.2);
}

TEST(SynthesizerTest, PlosiveHasSilentClosureThenBurst) {
  Synthesizer synth;
  Rng rng(6);
  const Signal t =
      synth.synthesize(phoneme_by_symbol("t"), test_speaker(), rng);
  const std::size_t third = t.size() / 3;
  const double closure_rms = t.slice(0, third).rms();
  const double burst_rms = t.slice(t.size() - third, t.size()).rms();
  EXPECT_GT(burst_rms, 3.0 * closure_rms);
}

TEST(SynthesizerTest, VoicedPlosiveHasVoiceBar) {
  Synthesizer synth;
  Rng rng(7);
  const Signal b =
      synth.synthesize(phoneme_by_symbol("b"), test_speaker(), rng);
  const Signal p =
      synth.synthesize(phoneme_by_symbol("p"), test_speaker(), rng);
  // /b/ closure carries low-frequency voicing; /p/ closure is silent.
  const double b_closure = b.slice(0, b.size() / 3).rms();
  const double p_closure = p.slice(0, p.size() / 3).rms();
  EXPECT_GT(b_closure, 2.0 * p_closure);
}

TEST(SynthesizerTest, FemaleFormantsShiftedUp) {
  Synthesizer synth;
  Rng rng(8);
  SpeakerProfile male = test_speaker();
  SpeakerProfile female = male;
  female.formant_scale = 1.18;
  female.f0_hz = 210.0;
  const Phoneme& iy = phoneme_by_symbol("iy");
  Rng r1(9), r2(9);
  const Signal sm = synth.synthesize(iy, male, r1);
  const Signal sf = synth.synthesize(iy, female, r2);
  EXPECT_GT(dsp::spectral_centroid(sf), dsp::spectral_centroid(sm));
}

TEST(SynthesizerTest, FormantGainPeaksAtFormantFrequency) {
  const Phoneme& aa = phoneme_by_symbol("aa");
  SpeakerProfile spk = test_speaker();
  spk.formant_scale = 1.0;
  const double at_f1 = Synthesizer::formant_gain(aa, spk, 730.0);
  const double off = Synthesizer::formant_gain(aa, spk, 1800.0);
  EXPECT_GT(at_f1, 2.0 * off);
}

TEST(SynthesizerTest, SequenceConcatenatesWithCrossfade) {
  Synthesizer synth;
  Rng rng(10);
  std::vector<Phoneme> seq = {phoneme_by_symbol("aa"),
                              phoneme_by_symbol("s")};
  const Signal s = synth.synthesize_sequence(seq, test_speaker(), rng);
  // Shorter than the sum (cross-fade) but longer than either part alone.
  EXPECT_GT(s.duration(), phoneme_by_symbol("aa").duration_s * 0.7);
  EXPECT_GT(s.duration(), 0.15);
}

TEST(SynthesizerTest, DurationScaleStretchesOutput) {
  Synthesizer synth;
  Rng r1(11), r2(11);
  const Phoneme& ae = phoneme_by_symbol("ae");
  const Signal s1 = synth.synthesize(ae, test_speaker(), r1, 1.0);
  const Signal s2 = synth.synthesize(ae, test_speaker(), r2, 2.0);
  EXPECT_NEAR(s2.duration() / s1.duration(), 2.0, 0.1);
}

TEST(SynthesizerTest, RejectsBadConfig) {
  SynthesizerConfig cfg;
  cfg.max_harmonic_hz = 9000.0;  // above Nyquist for 16 kHz
  EXPECT_THROW(Synthesizer{cfg}, vibguard::InvalidArgument);
}

TEST(SynthesizerTest, EdgesAreRamped) {
  Synthesizer synth;
  Rng rng(12);
  const Signal s =
      synth.synthesize(phoneme_by_symbol("aa"), test_speaker(), rng);
  EXPECT_LT(std::abs(s[0]), 1e-9);
  EXPECT_LT(std::abs(s[s.size() - 1]), 1e-9);
}


TEST(SynthesizerTest, DiphthongFormantsGlide) {
  // /ay/ glides F2 from ~1220 Hz to ~1900 Hz: the F2-target band's energy
  // share must grow from the first half to the second. (The overall
  // centroid is ambiguous because F1 simultaneously falls.)
  Synthesizer synth;
  Rng rng(13);
  const Signal s =
      synth.synthesize(phoneme_by_symbol("ay"), test_speaker(), rng);
  const Signal first = s.slice(0, s.size() / 2);
  const Signal second = s.slice(s.size() / 2, s.size());
  EXPECT_GT(dsp::band_energy_fraction(second, 1700.0, 2200.0),
            1.5 * dsp::band_energy_fraction(first, 1700.0, 2200.0));
}

TEST(SynthesizerTest, StaticVowelDoesNotGlide) {
  Synthesizer synth;
  Rng rng(14);
  const Signal s =
      synth.synthesize(phoneme_by_symbol("aa"), test_speaker(), rng);
  const Signal first = s.slice(0, s.size() / 2);
  const Signal second = s.slice(s.size() / 2, s.size());
  EXPECT_NEAR(dsp::spectral_centroid(second),
              dsp::spectral_centroid(first), 150.0);
}

TEST(PhonemeTableTest, DiphthongsHaveGlideTargets) {
  for (const char* sym : {"ey", "ay", "aw", "ow"}) {
    const Phoneme& p = phoneme_by_symbol(sym);
    ASSERT_EQ(p.end_formants.size(), p.formants.size()) << sym;
  }
  EXPECT_TRUE(phoneme_by_symbol("aa").end_formants.empty());
}

}  // namespace
}  // namespace vibguard::speech
