#include "speech/recognizer.hpp"

#include <gtest/gtest.h>

#include "acoustics/barrier.hpp"
#include "common/db.hpp"
#include "common/error.hpp"
#include "speech/command.hpp"

namespace vibguard::speech {
namespace {

Utterance say(const char* text, const SpeakerProfile& spk,
              std::uint64_t seed) {
  UtteranceBuilder builder;
  Rng rng(seed);
  auto utt = builder.build(command_by_text(text), spk, rng);
  utt.audio = utt.audio.scaled_to_rms(spl_to_rms(70.0));
  return utt;
}

SpeakerProfile speaker(std::uint64_t seed) {
  Rng rng(seed);
  return sample_speaker(seed % 2 == 0 ? Sex::kMale : Sex::kFemale, rng);
}

WakeWordRecognizer enrolled_recognizer(const SpeakerProfile& spk) {
  WakeWordRecognizer rec;
  for (std::uint64_t i = 0; i < 3; ++i) {
    rec.enroll(say("ok google", spk, 100 + i).audio);
  }
  return rec;
}

TEST(RecognizerTest, MatchesFreshUtteranceOfSameWord) {
  const auto spk = speaker(2);
  auto rec = enrolled_recognizer(spk);
  EXPECT_EQ(rec.num_templates(), 3u);
  const auto result = rec.match(say("ok google", spk, 999).audio);
  EXPECT_TRUE(result.matched);
}

TEST(RecognizerTest, RejectsDifferentCommand) {
  const auto spk = speaker(2);
  auto rec = enrolled_recognizer(spk);
  const double same = rec.distance(say("ok google", spk, 999).audio);
  const double other = rec.distance(say("good morning", spk, 999).audio);
  EXPECT_LT(same, other);
}

TEST(RecognizerTest, CrossSpeakerDistanceHigherButSameWordCloser) {
  const auto enrollee = speaker(2);
  const auto other = speaker(3);
  auto rec = enrolled_recognizer(enrollee);
  const double same_word = rec.distance(say("ok google", other, 7).audio);
  const double diff_word = rec.distance(say("next song", other, 7).audio);
  EXPECT_LT(same_word, diff_word);
}

TEST(RecognizerTest, BarrierFilteringIncreasesDistance) {
  // The recognition penalty the attack study models: thru-barrier audio is
  // farther from the enrolled templates.
  const auto spk = speaker(4);
  auto rec = enrolled_recognizer(spk);
  const auto utt = say("ok google", spk, 55);
  acoustics::Barrier barrier(acoustics::glass_window());
  const double direct = rec.distance(utt.audio);
  const double through = rec.distance(barrier.transmit(utt.audio));
  EXPECT_GT(through, direct);
}

TEST(RecognizerTest, RequiresEnrollment) {
  WakeWordRecognizer rec;
  EXPECT_THROW(rec.match(Signal({0.1, 0.2}, 16000.0)),
               vibguard::InvalidArgument);
  EXPECT_THROW(rec.enroll(Signal({}, 16000.0)), vibguard::InvalidArgument);
}

TEST(RecognizerTest, BestTemplateIndexValid) {
  const auto spk = speaker(6);
  auto rec = enrolled_recognizer(spk);
  const auto result = rec.match(say("ok google", spk, 42).audio);
  EXPECT_LT(result.best_template, rec.num_templates());
}

}  // namespace
}  // namespace vibguard::speech
