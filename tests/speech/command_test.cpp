#include "speech/command.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace vibguard::speech {
namespace {

TEST(CommandTest, LexiconHasTwentyCommands) {
  EXPECT_EQ(command_lexicon().size(), 20u);
}

TEST(CommandTest, ThreeWakeWords) {
  EXPECT_EQ(wake_words().size(), 3u);
}

TEST(CommandTest, AllTranscriptionsUseCommonPhonemes) {
  for (const auto& cmd : command_lexicon()) {
    for (const auto& sym : cmd.phonemes) {
      EXPECT_TRUE(is_common_phoneme(sym)) << cmd.text << ": " << sym;
    }
  }
  for (const auto& cmd : wake_words()) {
    for (const auto& sym : cmd.phonemes) {
      EXPECT_TRUE(is_common_phoneme(sym)) << cmd.text << ": " << sym;
    }
  }
}

TEST(CommandTest, LookupByText) {
  EXPECT_EQ(command_by_text("alexa").phonemes.size(), 6u);
  EXPECT_EQ(command_by_text("stop").phonemes.size(), 4u);
  EXPECT_THROW(command_by_text("fly me to the moon"),
               vibguard::InvalidArgument);
}

TEST(UtteranceBuilderTest, AudioAndAlignmentConsistent) {
  UtteranceBuilder builder;
  Rng rng(1);
  const auto& cmd = command_by_text("turn on the lights");
  SpeakerProfile spk = sample_speaker(Sex::kFemale, rng);
  const Utterance utt = builder.build(cmd, spk, rng);

  ASSERT_EQ(utt.alignment.size(), cmd.phonemes.size());
  EXPECT_FALSE(utt.audio.empty());
  EXPECT_EQ(utt.text, cmd.text);

  // Spans are ordered, non-overlapping and cover the whole signal.
  EXPECT_EQ(utt.alignment.front().begin, 0u);
  EXPECT_EQ(utt.alignment.back().end, utt.audio.size());
  for (std::size_t i = 0; i < utt.alignment.size(); ++i) {
    EXPECT_LT(utt.alignment[i].begin, utt.alignment[i].end);
    EXPECT_EQ(utt.alignment[i].symbol, cmd.phonemes[i]);
    if (i > 0) {
      EXPECT_EQ(utt.alignment[i].begin, utt.alignment[i - 1].end);
    }
  }
}

TEST(UtteranceBuilderTest, DurationIsPlausible) {
  UtteranceBuilder builder;
  Rng rng(2);
  SpeakerProfile spk = sample_speaker(Sex::kMale, rng);
  const Utterance utt =
      builder.build(command_by_text("turn on the lights"), spk, rng);
  EXPECT_GT(utt.audio.duration(), 0.5);
  EXPECT_LT(utt.audio.duration(), 3.0);
}

TEST(UtteranceBuilderTest, RandomSequenceHasRequestedLength) {
  UtteranceBuilder builder;
  Rng rng(3);
  SpeakerProfile spk = sample_speaker(Sex::kMale, rng);
  const Utterance utt = builder.build_random(12, spk, rng);
  EXPECT_EQ(utt.alignment.size(), 12u);
  EXPECT_EQ(utt.text, "<random>");
}

TEST(UtteranceBuilderTest, RandomSequenceFollowsFrequencyWeights) {
  UtteranceBuilder builder;
  Rng rng(4);
  SpeakerProfile spk = sample_speaker(Sex::kMale, rng);
  // /t/ appears 129 times vs /uh/ 6 times in Table II; over a long draw the
  // ratio should show.
  std::size_t t_count = 0, uh_count = 0;
  const Utterance utt = builder.build_random(400, spk, rng);
  for (const auto& span : utt.alignment) {
    if (span.symbol == "t") ++t_count;
    if (span.symbol == "uh") ++uh_count;
  }
  EXPECT_GT(t_count, uh_count + 10);
}

TEST(UtteranceBuilderTest, DifferentSpeakersDifferentAudio) {
  UtteranceBuilder builder;
  Rng rng(5);
  const auto& cmd = command_by_text("stop");
  SpeakerProfile a = sample_speaker(Sex::kMale, rng);
  SpeakerProfile b = sample_speaker(Sex::kFemale, rng);
  Rng r1(6), r2(6);
  const Utterance u1 = builder.build(cmd, a, r1);
  const Utterance u2 = builder.build(cmd, b, r2);
  EXPECT_NE(u1.audio.size(), 0u);
  bool differs = u1.audio.size() != u2.audio.size();
  if (!differs) {
    for (std::size_t i = 0; i < u1.audio.size(); ++i) {
      if (u1.audio[i] != u2.audio[i]) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(UtteranceBuilderTest, RejectsEmptyCommand) {
  UtteranceBuilder builder;
  Rng rng(7);
  SpeakerProfile spk = sample_speaker(Sex::kMale, rng);
  VoiceCommand empty{"", {}};
  EXPECT_THROW(builder.build(empty, spk, rng), vibguard::InvalidArgument);
  EXPECT_THROW(builder.build_random(0, spk, rng), vibguard::InvalidArgument);
}

}  // namespace
}  // namespace vibguard::speech
