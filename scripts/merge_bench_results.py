#!/usr/bin/env python3
"""Merge scalar- and auto-level google-benchmark JSON runs.

Produces the committed BENCH_microbench.json: one entry per benchmark with
scalar_ns, auto_ns and the scalar/auto speedup, plus enough context (host,
dispatch level, date fields passed through from the auto run) to interpret
the numbers later.

Usage: merge_bench_results.py scalar.json auto.json out.json
"""
import json
import sys


def load_results(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = float(bench["real_time"])
    return doc, out


def main(argv):
    if len(argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    scalar_doc, scalar_ns = load_results(argv[1])
    auto_doc, auto_ns = load_results(argv[2])

    names = sorted(set(scalar_ns) & set(auto_ns))
    missing = sorted(set(scalar_ns) ^ set(auto_ns))
    if missing:
        print(f"warning: benchmarks present in only one run: {missing}",
              file=sys.stderr)

    benchmarks = []
    for name in names:
        s, a = scalar_ns[name], auto_ns[name]
        benchmarks.append({
            "name": name,
            "scalar_ns": s,
            "auto_ns": a,
            "speedup": s / a if a > 0 else None,
        })

    context = auto_doc.get("context", {})
    merged = {
        "schema": "vibguard-bench-v1",
        "context": {
            "host_name": context.get("host_name"),
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "cpu_scaling_enabled": context.get("cpu_scaling_enabled"),
            "library_build_type": context.get("library_build_type"),
            "auto_level": context.get("vibguard_simd"),
        },
        "benchmarks": benchmarks,
    }
    with open(argv[3], "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")

    width = max((len(n) for n in names), default=4)
    print(f"{'benchmark':<{width}}  {'scalar_ns':>12}  {'auto_ns':>12}  speedup")
    for b in benchmarks:
        print(f"{b['name']:<{width}}  {b['scalar_ns']:>12.1f}  "
              f"{b['auto_ns']:>12.1f}  {b['speedup']:>6.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
