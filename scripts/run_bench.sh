#!/usr/bin/env bash
# Runs the microbenchmark suite at the scalar and auto-detected SIMD
# dispatch levels and merges the two runs into BENCH_microbench.json
# (committed at the repo root), recording per-benchmark scalar_ns, auto_ns
# and the speedup ratio. scripts/check_bench_regression.py consumes the
# same file as its baseline.
#
# Usage: scripts/run_bench.sh [build-dir] [output-json]
#   build-dir    Release build directory (default: build-bench, configured
#                and built here if missing).
#   output-json  merged result path (default: BENCH_microbench.json).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-bench}"
OUT_JSON="${2:-${REPO_ROOT}/BENCH_microbench.json}"
# The slow whole-experiment benchmarks are not dispatch-sensitive enough to
# justify their runtime in the smoke loop; the kernel set below is the one
# the regression gate tracks.
FILTER="${BENCH_FILTER:-BM_FftPow2|BM_FftBluestein|BM_Rfft|BM_StftPower|BM_StftPlanned|BM_Mfcc|BM_Mel|BM_Resample|BM_Correlation2d|BM_FullPipelineScore|BM_StreamingScore|BM_ShardSteal}"

if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release \
    -DVIBGUARD_BUILD_BENCHMARKS=ON
fi
# Always build: an incremental no-op is cheap, and a stale binary would
# silently benchmark old code.
cmake --build "${BUILD_DIR}" --target bench_microbench -j "$(nproc)"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

echo "== bench: VIBGUARD_SIMD=scalar =="
VIBGUARD_SIMD=scalar "${BUILD_DIR}/bench/bench_microbench" \
  --benchmark_filter="${FILTER}" \
  --benchmark_out="${TMP_DIR}/scalar.json" --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  --benchmark_report_aggregates_only=false

echo "== bench: VIBGUARD_SIMD=auto =="
VIBGUARD_SIMD=auto "${BUILD_DIR}/bench/bench_microbench" \
  --benchmark_filter="${FILTER}" \
  --benchmark_out="${TMP_DIR}/auto.json" --benchmark_out_format=json \
  --benchmark_repetitions="${BENCH_REPS:-1}" \
  --benchmark_report_aggregates_only=false

python3 "${REPO_ROOT}/scripts/merge_bench_results.py" \
  "${TMP_DIR}/scalar.json" "${TMP_DIR}/auto.json" "${OUT_JSON}"

echo "wrote ${OUT_JSON}"
