#!/usr/bin/env bash
# Sanitizer gate: builds with VIBGUARD_SANITIZE=ON (ASan + UBSan, recovery
# disabled) and runs the tier-1 smoke tests plus the differential fuzz soak
# slice. Any sanitizer report aborts the offending test, which fails ctest,
# which fails this script — so a clean exit means 1000+ seeded iterations
# per kernel ran UB- and leak-free.
#
# Usage: scripts/check_sanitize.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

# Belt and braces: -fno-sanitize-recover=all already makes reports fatal,
# these options make the failure mode explicit and stack traces readable.
export ASAN_OPTIONS="abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1:${UBSAN_OPTIONS:-}"

cmake --preset sanitize
cmake --build --preset sanitize -j"$(nproc)"
ctest --preset sanitize -j"$(nproc)" "$@"
