#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated BENCH_microbench.json against the committed
baseline and fails (exit 1) if any benchmark's auto-level time regressed by
more than the threshold (default 15%).

Coverage is part of the gate: a benchmark present on only one side is a
hard failure, not a note. A kernel missing from the current run means the
gate silently stopped measuring it (a renamed or dropped benchmark slips
through ungated); a kernel missing from the baseline means a new benchmark
landed without a committed reference. Pass --allow-missing to downgrade
both to notes when intentionally adding or retiring benchmarks.

Usage:
  check_bench_regression.py --baseline BENCH_microbench.json \
      --current new.json [--threshold 0.15] [--metric auto_ns] \
      [--allow-missing]
  check_bench_regression.py --self-test
"""
import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "vibguard-bench-v1":
        print(f"warning: {path} has unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def compare(baseline, current, threshold, metric, allow_missing):
    """Returns (failure_lines, report_lines) for the two benchmark maps."""
    failures = []
    report = []

    only_base = sorted(set(baseline) - set(current))
    only_curr = sorted(set(current) - set(baseline))
    for name in only_base:
        msg = (f"{name}: in the baseline but missing from the current run "
               f"— the gate no longer measures it (renamed or dropped "
               f"without updating the baseline?)")
        if allow_missing:
            report.append(f"note: {msg}")
        else:
            failures.append(msg)
    for name in only_curr:
        msg = (f"{name}: in the current run but missing from the baseline "
               f"— new benchmark with no committed reference (re-run "
               f"scripts/run_bench.sh and commit BENCH_microbench.json, "
               f"or pass --allow-missing)")
        if allow_missing:
            report.append(f"note: {msg}")
        else:
            failures.append(msg)

    report.append(
        f"{'benchmark':<28} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(set(baseline) & set(current)):
        base = baseline[name].get(metric)
        curr = current[name].get(metric)
        if not base or not curr:
            failures.append(
                f"{name}: metric {metric!r} missing or zero on one side "
                f"(baseline={base!r}, current={curr!r}) — cannot compare")
            continue
        delta = (curr - base) / base
        marker = ""
        if delta > threshold:
            failures.append(f"{name}: regressed {delta:+.1%} on {metric}")
            marker = "  << REGRESSION"
        report.append(f"{name:<28} {base:>12.1f} {curr:>12.1f} "
                      f"{delta:>+7.1%}{marker}")
    return failures, report


def self_test():
    """Exercises the gate's own failure modes on synthetic inputs."""
    fast = {"a": {"name": "a", "auto_ns": 100.0}}
    slow = {"a": {"name": "a", "auto_ns": 200.0}}
    extra = {"a": {"name": "a", "auto_ns": 100.0},
             "b": {"name": "b", "auto_ns": 50.0}}
    broken = {"a": {"name": "a"}}

    cases = [
        ("identical runs pass",
         compare(fast, fast, 0.15, "auto_ns", False)[0] == []),
        ("2x slowdown fails",
         len(compare(fast, slow, 0.15, "auto_ns", False)[0]) == 1),
        ("2x speedup passes",
         compare(slow, fast, 0.15, "auto_ns", False)[0] == []),
        ("benchmark missing from current fails",
         any("missing from the current run" in f
             for f in compare(extra, fast, 0.15, "auto_ns", False)[0])),
        ("benchmark missing from baseline fails",
         any("missing from the baseline" in f
             for f in compare(fast, extra, 0.15, "auto_ns", False)[0])),
        ("--allow-missing downgrades coverage gaps to notes",
         compare(extra, fast, 0.15, "auto_ns", True)[0] == []),
        ("missing metric value fails instead of being skipped",
         any("cannot compare" in f
             for f in compare(fast, broken, 0.15, "auto_ns", False)[0])),
    ]
    failed = [name for name, ok in cases if not ok]
    for name, ok in cases:
        print(f"  {'ok' if ok else 'FAIL'}: {name}")
    if failed:
        print(f"\nSELF-TEST FAIL: {len(failed)} case(s)")
        return 1
    print(f"\nself-test OK: {len(cases)} cases")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        help="committed BENCH_microbench.json")
    parser.add_argument("--current",
                        help="freshly generated result file")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--metric", default="auto_ns",
                        choices=["auto_ns", "scalar_ns"],
                        help="which per-benchmark time to compare")
    parser.add_argument("--allow-missing", action="store_true",
                        help="report benchmarks present on only one side "
                             "as notes instead of failing")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate's own failure-mode checks and "
                             "exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required "
                     "(unless --self-test)")

    baseline = load(args.baseline)
    current = load(args.current)
    failures, report = compare(baseline, current, args.threshold,
                               args.metric, args.allow_missing)
    for line in report:
        print(line)

    if failures:
        print(f"\nFAIL: {len(failures)} problem(s) "
              f"(threshold {args.threshold:.0%} on {args.metric}):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"on {args.metric}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
