#!/usr/bin/env python3
"""Benchmark regression gate.

Compares a freshly generated BENCH_microbench.json against the committed
baseline and fails (exit 1) if any benchmark's auto-level time regressed by
more than the threshold (default 15%). Benchmarks present only on one side
are reported but do not fail the gate (they are new or retired, not
regressed).

Usage:
  check_bench_regression.py --baseline BENCH_microbench.json \
      --current new.json [--threshold 0.15] [--metric auto_ns]
"""
import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "vibguard-bench-v1":
        print(f"warning: {path} has unexpected schema "
              f"{doc.get('schema')!r}", file=sys.stderr)
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_microbench.json")
    parser.add_argument("--current", required=True,
                        help="freshly generated result file")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown (default 0.15)")
    parser.add_argument("--metric", default="auto_ns",
                        choices=["auto_ns", "scalar_ns"],
                        help="which per-benchmark time to compare")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)

    only_base = sorted(set(baseline) - set(current))
    only_curr = sorted(set(current) - set(baseline))
    for name in only_base:
        print(f"note: {name} only in baseline (retired?)")
    for name in only_curr:
        print(f"note: {name} only in current run (new benchmark)")

    failures = []
    print(f"{'benchmark':<28} {'baseline':>12} {'current':>12} {'delta':>8}")
    for name in sorted(set(baseline) & set(current)):
        base = baseline[name].get(args.metric)
        curr = current[name].get(args.metric)
        if not base or not curr:
            continue
        delta = (curr - base) / base
        marker = ""
        if delta > args.threshold:
            failures.append((name, delta))
            marker = "  << REGRESSION"
        print(f"{name:<28} {base:>12.1f} {curr:>12.1f} "
              f"{delta:>+7.1%}{marker}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} on {args.metric}:")
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"on {args.metric}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
