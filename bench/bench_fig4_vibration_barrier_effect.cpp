// Figure 4: phoneme spectra before/after the barrier in the VIBRATION
// domain — the same /ae/ and /v/ segments as Fig. 3, but captured through
// the wearable's speaker→accelerometer cross-domain path (0-100 Hz band).
#include "bench_util.hpp"

#include "acoustics/barrier.hpp"
#include "acoustics/propagation.hpp"
#include "common/db.hpp"
#include "dsp/spectral.hpp"
#include "device/wearable.hpp"
#include "speech/corpus.hpp"

namespace vibguard {
namespace {

constexpr std::size_t kPoints = 26;  // 4 Hz grid to 100 Hz
constexpr double kMaxHz = 100.0;

std::vector<double> average_vibration_spectrum(
    const std::vector<speech::PhonemeSegment>& segments,
    const acoustics::Barrier* barrier, const device::Wearable& wearable,
    Rng& rng) {
  std::vector<std::vector<double>> spectra;
  for (const auto& seg : segments) {
    Signal s = seg.audio.scaled_to_rms(spl_to_rms(75.0));
    if (barrier != nullptr) s = barrier->transmit(s);
    s = acoustics::propagate(s, 0.25);
    const Signal rec = wearable.record(s, rng);
    const Signal vib = wearable.cross_domain_capture(rec, rng);
    spectra.push_back(dsp::magnitude_spectrum_resampled(vib, kMaxHz, kPoints));
  }
  return dsp::average_spectra(spectra);
}

void run_fig4() {
  bench::print_header(
      "Figure 4: average FFT magnitude before/after barrier "
      "(vibration domain)");
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = bench::trials_per_point(100);
  speech::PhonemeCorpus corpus(ccfg, 42);
  acoustics::Barrier barrier(acoustics::glass_window());
  device::Wearable wearable;
  Rng rng(11);

  double ae_after_mean = 0.0, v_before_mean = 0.0;
  for (const char* sym : {"ae", "v"}) {
    const auto segments = corpus.segments(sym);
    const auto before =
        average_vibration_spectrum(segments, nullptr, wearable, rng);
    const auto after =
        average_vibration_spectrum(segments, &barrier, wearable, rng);
    std::printf("\n/%s/:  %10s  %14s  %14s\n", sym, "freq(Hz)", "before",
                "after");
    for (std::size_t i = 0; i < kPoints; ++i) {
      const double f =
          kMaxHz * static_cast<double>(i) / static_cast<double>(kPoints - 1);
      std::printf("      %10.0f  %14.6f  %14.6f\n", f, before[i], after[i]);
      if (f > 5.0) {
        if (std::string(sym) == "ae") ae_after_mean += after[i];
        if (std::string(sym) == "v") v_before_mean += before[i];
      }
    }
  }
  std::printf(
      "\nDiscriminability check (paper Sec. IV-A): thru-barrier /ae/ mean "
      "magnitude = %.5f,\ndirect /v/ mean magnitude = %.5f -> ratio %.2f "
      "(distinguishable in the vibration\ndomain, unlike Fig. 3's audio "
      "domain).\n",
      ae_after_mean / (kPoints - 2), v_before_mean / (kPoints - 2),
      v_before_mean / std::max(ae_after_mean, 1e-12));
}

void BM_Fig4(benchmark::State& state) {
  for (auto _ : state) run_fig4();
}
BENCHMARK(BM_Fig4)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
