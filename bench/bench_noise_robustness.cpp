// Ambient-noise robustness: the defense under HVAC rumble, background
// music and multi-talker babble at increasing levels. Babble is the
// interesting adversary-independent confounder — it contains real speech
// energy at the phoneme frequencies.
#include "bench_util.hpp"

#include "acoustics/ambient.hpp"

namespace vibguard {
namespace {

void run_noise() {
  bench::print_header(
      "Ambient-noise robustness (replay attacks, Room A)");
  std::printf("%-10s %12s %12s %12s\n", "ambient", "45 dB EER",
              "55 dB EER", "65 dB EER");
  std::uint64_t seed = 9500;
  for (acoustics::AmbientKind kind : acoustics::all_ambient_kinds()) {
    std::printf("%-10s ", acoustics::ambient_name(kind).c_str());
    for (double spl : {45.0, 55.0, 65.0}) {
      eval::ExperimentConfig cfg;
      cfg.scenario.room.ambient_kind = kind;
      cfg.scenario.room.ambient_noise_spl = spl;
      cfg.legit_trials = bench::trials_per_point();
      cfg.attack_trials = bench::trials_per_point();
      const auto rocs = bench::run_point(cfg, attacks::AttackType::kReplay,
                                         {core::DefenseMode::kFull}, seed++);
      std::printf("%12.3f ", rocs.at(core::DefenseMode::kFull).eer);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected: the comparison-based design is remarkably noise-robust\n"
      "-- ambient noise raises BOTH devices' floors, hurting attack\n"
      "correlations as much as legitimate ones, so EER stays low even with\n"
      "a 65 dB floor under 65-75 dB commands.\n");
}

void BM_NoiseRobustness(benchmark::State& state) {
  for (auto _ : state) run_noise();
}
BENCHMARK(BM_NoiseRobustness)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
