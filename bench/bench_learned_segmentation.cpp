// End-to-end with LEARNED segmentation: the deployed system runs the
// MFCC+BiLSTM phoneme detector (Sec. V-B), not ground-truth alignment.
// This bench trains the detector, then compares full-system AUC/EER under
// replay attacks with (a) oracle alignment and (b) the trained BRNN.
#include "bench_util.hpp"

#include "acoustics/barrier.hpp"
#include "common/db.hpp"
#include "core/segmentation.hpp"

namespace vibguard {
namespace {

core::BrnnSegmenter train_segmenter() {
  core::BrnnSegmenter::Config cfg;
  cfg.brnn.hidden_dim = 32;
  cfg.brnn.adam.learning_rate = 4e-3;
  core::BrnnSegmenter segmenter(cfg, 2024);
  acoustics::Barrier barrier(acoustics::glass_window());

  speech::UtteranceBuilder builder;
  Rng rng(1);
  auto speakers = speech::sample_population(8, rng);
  const auto lexicon = speech::command_lexicon();
  std::vector<nn::LabeledSequence> train;
  const std::size_t n = bench::trials_per_point(30);
  for (std::size_t i = 0; i < n; ++i) {
    auto utt = builder.build(lexicon[i % lexicon.size()],
                             speakers[i % speakers.size()], rng);
    Signal direct = utt.audio.scaled_to_rms(spl_to_rms(70.0));
    train.push_back(segmenter.make_sequence(
        direct, utt.alignment, eval::reference_sensitive_set()));
    Signal through = barrier.transmit(direct);
    train.push_back(segmenter.make_sequence(
        through, utt.alignment, eval::reference_sensitive_set()));
  }
  Rng train_rng(2);
  for (int epoch = 0; epoch < 40; ++epoch) {
    segmenter.train_epoch(train, 6, train_rng);
  }
  std::printf("trained BRNN segmenter: frame accuracy %.3f on %zu seqs\n",
              segmenter.evaluate(train), train.size());
  return segmenter;
}

void run_learned() {
  bench::print_header(
      "End-to-end with learned segmentation (BRNN) vs oracle alignment");

  const core::BrnnSegmenter segmenter = train_segmenter();

  eval::ExperimentConfig oracle_cfg;
  oracle_cfg.legit_trials = bench::trials_per_point();
  oracle_cfg.attack_trials = bench::trials_per_point();
  eval::ExperimentConfig learned_cfg = oracle_cfg;
  learned_cfg.segmenter = &segmenter;

  const auto oracle = bench::run_point(
      oracle_cfg, attacks::AttackType::kReplay, {core::DefenseMode::kFull},
      9900);
  const auto learned = bench::run_point(
      learned_cfg, attacks::AttackType::kReplay, {core::DefenseMode::kFull},
      9900);

  std::printf("\n%-26s %10s %10s\n", "segmentation", "AUC", "EER");
  std::printf("%-26s %10.3f %10.3f\n", "oracle alignment",
              oracle.at(core::DefenseMode::kFull).auc,
              oracle.at(core::DefenseMode::kFull).eer);
  std::printf("%-26s %10.3f %10.3f\n", "learned (BRNN)",
              learned.at(core::DefenseMode::kFull).auc,
              learned.at(core::DefenseMode::kFull).eer);
  std::printf(
      "\nExpected: the learned detector costs little relative to oracle\n"
      "alignment (paper: 91-94%% frame accuracy suffices).\n");
}

void BM_LearnedSegmentation(benchmark::State& state) {
  for (auto _ : state) run_learned();
}
BENCHMARK(BM_LearnedSegmentation)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
