// Figure 7: accelerometer response to a 500-2500 Hz audio chirp — the
// 0-5 Hz high-sensitivity artifact that motivates the feature extractor's
// low-frequency crop.
#include "bench_util.hpp"

#include "dsp/generate.hpp"
#include "dsp/spectral.hpp"
#include "sensors/accelerometer.hpp"

namespace vibguard {
namespace {

void run_fig7() {
  bench::print_header(
      "Figure 7: accelerometer response to a 500-2500 Hz chirp");
  sensors::Accelerometer accel;
  Rng rng(3);
  const Signal chirp_sig = dsp::chirp(500.0, 2500.0, 4.0, 16000.0, 0.05);
  const Signal vib = accel.capture(chirp_sig, rng);
  const auto mag = dsp::magnitude_spectrum_resampled(vib, 100.0, 51);

  std::printf("%10s  %14s\n", "freq(Hz)", "FFT magnitude");
  for (std::size_t i = 0; i < mag.size(); ++i) {
    std::printf("%10.0f  %14.6f\n", static_cast<double>(i) * 2.0, mag[i]);
  }
  const double lf = dsp::band_energy(vib, 0.0, 5.0);
  const double per_band = dsp::band_energy(vib, 5.0, 100.0) / 19.0;
  std::printf(
      "\n0-5 Hz band energy = %.6g; average 5 Hz-slice above = %.6g\n"
      "ratio = %.1fx (paper: highly sensitive 0-5 Hz range)\n",
      lf, per_band, lf / std::max(per_band, 1e-15));
}

void BM_Fig7(benchmark::State& state) {
  for (auto _ : state) run_fig7();
}
BENCHMARK(BM_Fig7)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
