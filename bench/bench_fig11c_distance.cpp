// Figure 11(c): full-system EER as the barrier-to-VA distance grows
// (3/4/5 m) with the barrier-to-wearable distance fixed at 2 m.
#include "bench_util.hpp"

namespace vibguard {
namespace {

void run_fig11c() {
  bench::print_header("Figure 11(c): impact of barrier-to-VA distance");
  std::printf("%-10s %-10s %-10s %-12s %-12s\n", "distance", "random",
              "replay", "synthesis", "hidden");
  for (double dist : {3.0, 4.0, 5.0}) {
    std::printf("%-9.0fm ", dist);
    std::uint64_t seed = 3300 + static_cast<std::uint64_t>(dist) * 17;
    for (auto attack : attacks::all_attack_types()) {
      eval::ExperimentConfig cfg;
      cfg.scenario.barrier_to_va_m = dist;
      // The user speaks from near the wearable; growing VA distance lowers
      // the VA-side signal quality (paper: slight EER rise at 5 m).
      cfg.scenario.user_to_va_m = dist - 1.0;
      cfg.legit_trials = bench::trials_per_point();
      cfg.attack_trials = bench::trials_per_point();
      const auto rocs =
          bench::run_point(cfg, attack, {core::DefenseMode::kFull}, seed++);
      std::printf("%-11.3f ", rocs.at(core::DefenseMode::kFull).eer);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: EER below ~5%% at all distances, slightly higher at\n"
      "5 m (weaker user signal at the VA).\n");
}

void BM_Fig11c(benchmark::State& state) {
  for (auto _ : state) run_fig11c();
}
BENCHMARK(BM_Fig11c)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
