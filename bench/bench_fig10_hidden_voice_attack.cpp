// Figure 10: ROC/AUC/EER against hidden voice attacks (obfuscated wideband
// commands recognizable to machines but not humans).
#include "bench_util.hpp"

namespace vibguard {
namespace {

void run_fig10() {
  bench::print_header("Figure 10: defense against hidden voice attacks");
  eval::ExperimentConfig cfg;
  cfg.legit_trials = bench::trials_per_point();
  cfg.attack_trials = bench::trials_per_point();

  const auto rocs = bench::run_point(cfg, attacks::AttackType::kHiddenVoice,
                                     bench::all_modes(), 77);
  const double paper_auc[3] = {0.742, 0.883, 1.0};
  const double paper_eer[3] = {0.35, 0.231, 0.06};
  std::printf("%-28s %10s %10s %12s %12s\n", "method", "AUC", "EER",
              "paper AUC", "paper EER");
  int m = 0;
  for (core::DefenseMode mode : bench::all_modes()) {
    const auto& roc = rocs.at(mode);
    std::printf("%-28s %10.3f %10.3f %12.3f %12.3f\n",
                bench::mode_label(mode), roc.auc, roc.eer, paper_auc[m],
                paper_eer[m]);
    ++m;
  }

  // ROC curve points of the full system (figure series).
  const auto& full = rocs.at(core::DefenseMode::kFull);
  std::printf("\nFull-system ROC (FDR, TDR):\n");
  for (std::size_t i = 0; i < full.points.size();
       i += std::max<std::size_t>(1, full.points.size() / 20)) {
    std::printf("  %6.3f  %6.3f\n", full.points[i].fdr, full.points[i].tdr);
  }
  std::printf(
      "\nPaper shape: hidden voice commands span 0-6 kHz, so the barrier's\n"
      "frequency selectivity is most visible; the full system approaches\n"
      "AUC 1.0.\n");
}

void BM_Fig10(benchmark::State& state) {
  for (auto _ : state) run_fig10();
}
BENCHMARK(BM_Fig10)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
