// Sec. V-B: BRNN phoneme detection accuracy.
//
// Trains the MFCC+BiLSTM frame classifier on aligned synthetic utterances
// and evaluates frame accuracy on held-out recordings, both without a
// barrier and through the glass window (paper: 94% / 91%).
#include "bench_util.hpp"

#include "acoustics/barrier.hpp"
#include "common/db.hpp"
#include "core/segmentation.hpp"
#include "speech/command.hpp"

namespace vibguard {
namespace {

std::vector<speech::Utterance> make_utterances(std::size_t count,
                                               std::uint64_t seed) {
  speech::UtteranceBuilder builder;
  Rng rng(seed);
  auto speakers = speech::sample_population(8, rng);
  const auto lexicon = speech::command_lexicon();
  std::vector<speech::Utterance> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(builder.build(lexicon[i % lexicon.size()],
                                speakers[i % speakers.size()], rng));
  }
  return out;
}

nn::LabeledSequence to_sequence(const core::BrnnSegmenter& seg,
                                const speech::Utterance& utt,
                                const acoustics::Barrier* barrier) {
  Signal audio = utt.audio.scaled_to_rms(spl_to_rms(70.0));
  if (barrier != nullptr) audio = barrier->transmit(audio);
  return seg.make_sequence(audio, utt.alignment,
                           eval::reference_sensitive_set());
}

void run_sec5() {
  bench::print_header("Sec. V-B: BRNN phoneme detection accuracy");
  core::BrnnSegmenter::Config cfg;
  cfg.brnn.hidden_dim = 32;
  cfg.brnn.adam.learning_rate = 4e-3;
  core::BrnnSegmenter segmenter(cfg, 2024);
  acoustics::Barrier barrier(acoustics::glass_window());

  // Training set: direct + thru-barrier renditions (the paper trains on
  // TIMIT and evaluates on both conditions; mixed-condition training keeps
  // the detector robust to barrier-attenuated inputs).
  const std::size_t n_train = bench::trials_per_point(40);
  const auto train_utts = make_utterances(n_train, 1);
  std::vector<nn::LabeledSequence> train;
  for (const auto& utt : train_utts) {
    train.push_back(to_sequence(segmenter, utt, nullptr));
    train.push_back(to_sequence(segmenter, utt, &barrier));
  }

  Rng rng(2);
  std::printf("training on %zu sequences (%zu utterances x 2 conditions)\n",
              train.size(), train_utts.size());
  for (int epoch = 0; epoch < 50; ++epoch) {
    const double loss = segmenter.train_epoch(train, 6, rng);
    if (epoch % 10 == 9) {
      std::printf("  epoch %2d: loss %.4f, train accuracy %.3f\n", epoch + 1,
                  loss, segmenter.evaluate(train));
    }
  }

  // Held-out evaluation.
  const auto test_utts = make_utterances(12, 99);
  std::vector<nn::LabeledSequence> direct, through;
  for (const auto& utt : test_utts) {
    direct.push_back(to_sequence(segmenter, utt, nullptr));
    through.push_back(to_sequence(segmenter, utt, &barrier));
  }
  const double acc_direct = segmenter.evaluate(direct);
  const double acc_through = segmenter.evaluate(through);
  std::printf(
      "\n%-34s %10s %12s\n%-34s %10.3f %12s\n%-34s %10.3f %12s\n",
      "condition", "accuracy", "paper", "without barrier", acc_direct,
      "0.94", "through barrier", acc_through, "0.91");
  std::printf(
      "\nPaper shape: both conditions above ~90%%, direct slightly better\n"
      "than thru-barrier.\n");
}

void BM_Sec5(benchmark::State& state) {
  for (auto _ : state) run_sec5();
}
BENCHMARK(BM_Sec5)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
