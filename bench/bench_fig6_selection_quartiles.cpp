// Figure 6: third-quartile vibration spectra of /er/ with and without the
// barrier, against the selection threshold α — the visual demonstration of
// Criteria I and II.
#include "bench_util.hpp"

#include "acoustics/barrier.hpp"
#include "core/phoneme_selection.hpp"
#include "speech/corpus.hpp"

namespace vibguard {
namespace {

void run_fig6() {
  bench::print_header(
      "Figure 6: Q3 vibration spectra of /er/ with/without barrier vs alpha");
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = bench::trials_per_point(30);
  speech::PhonemeCorpus corpus(ccfg, 42);
  core::SelectionConfig scfg;
  core::PhonemeSelector selector(scfg, device::Wearable{});
  acoustics::Barrier barrier(acoustics::glass_window());
  Rng rng(7);
  const auto result = selector.select(corpus, barrier, rng);
  const auto& er = result.info("er");

  std::printf("alpha = %.5f\n\n%10s  %16s  %16s\n", result.alpha, "freq(Hz)",
              "Q3 with barrier", "Q3 without barrier");
  for (std::size_t b = 0; b < er.q3_with_barrier.size(); ++b) {
    std::printf("%10.1f  %16.5f  %16.5f\n",
                static_cast<double>(b) * result.bin_hz,
                er.q3_with_barrier[b], er.q3_without_barrier[b]);
  }
  std::printf(
      "\nCriterion I: max_f Q3_adv = %.5f %s alpha (%s)\n"
      "Criterion II: min_f Q3_user = %.5f %s alpha (%s)\n"
      "/er/ selected: %s (paper selects /er/)\n",
      er.max_q3_with_barrier,
      er.max_q3_with_barrier < result.alpha ? "<" : ">=",
      er.passes_criterion1 ? "passes" : "FAILS", er.min_q3_without_barrier,
      er.min_q3_without_barrier > result.alpha ? ">" : "<=",
      er.passes_criterion2 ? "passes" : "FAILS",
      er.selected ? "yes" : "no");
}

void BM_Fig6(benchmark::State& state) {
  for (auto _ : state) run_fig6();
}
BENCHMARK(BM_Fig6)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
