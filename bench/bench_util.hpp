// Shared helpers for the reproduction benchmarks.
//
// Each bench binary reproduces one table or figure of the paper: it runs the
// corresponding experiment, prints the rows/series the paper reports, and
// registers the end-to-end run with google-benchmark so wall-clock cost is
// tracked alongside the scientific output.
//
// Trial counts default to paper-shaped but laptop-friendly values; set
// VIBGUARD_TRIALS to raise or lower them (e.g. VIBGUARD_TRIALS=100 for
// tighter confidence, =10 for a smoke run).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "core/pipeline.hpp"
#include "eval/experiment.hpp"

namespace vibguard::bench {

/// Number of legit/attack trials per experiment point (env-overridable).
inline std::size_t trials_per_point(std::size_t fallback = 30) {
  if (const char* env = std::getenv("VIBGUARD_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return fallback;
}

/// The three evaluation arms of the paper's Figs. 9-10.
inline std::vector<core::DefenseMode> all_modes() {
  return {core::DefenseMode::kAudioBaseline,
          core::DefenseMode::kVibrationBaseline, core::DefenseMode::kFull};
}

/// Paper-facing mode labels.
inline const char* mode_label(core::DefenseMode mode) {
  switch (mode) {
    case core::DefenseMode::kAudioBaseline: return "Audio-domain baseline";
    case core::DefenseMode::kVibrationBaseline:
      return "Vibration-domain baseline";
    case core::DefenseMode::kFull: return "Our defense system";
  }
  return "?";
}

/// Runs one experiment point and returns ROC curves per mode.
inline std::map<core::DefenseMode, eval::RocCurve> run_point(
    const eval::ExperimentConfig& cfg, attacks::AttackType attack,
    const std::vector<core::DefenseMode>& modes, std::uint64_t seed) {
  eval::ExperimentRunner runner(cfg, seed);
  auto results = runner.run(attack, modes);
  std::map<core::DefenseMode, eval::RocCurve> out;
  for (const auto& [mode, pops] : results) out.emplace(mode, pops.roc());
  return out;
}

inline void print_header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Prints a numeric series as aligned columns (figure data in text form).
inline void print_series(const char* name, const std::vector<double>& xs,
                         const std::vector<double>& ys) {
  std::printf("%s\n", name);
  for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
    std::printf("  %10.3f  %12.6f\n", xs[i], ys[i]);
  }
}

}  // namespace vibguard::bench
