// Micro-benchmarks for the hot computational kernels: FFT, STFT, MFCC,
// cross-correlation sync, cross-domain capture and the full pipeline score.
#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "core/streaming.hpp"
#include "device/sync.hpp"
#include "dsp/fft.hpp"
#include "dsp/generate.hpp"
#include "dsp/mel.hpp"
#include "dsp/resample.hpp"
#include "dsp/simd.hpp"
#include "dsp/stft.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"
#include "serving/shard.hpp"

namespace vibguard {
namespace {

void BM_FftPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<dsp::Complex> buf(n);
  for (auto& v : buf) v = dsp::Complex(rng.gaussian(), 0.0);
  for (auto _ : state) {
    auto copy = buf;
    dsp::fft_pow2(copy, false);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_FftPow2)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FftBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<dsp::Complex> buf(n);
  for (auto& v : buf) v = dsp::Complex(rng.gaussian(), 0.0);
  for (auto _ : state) {
    auto out = dsp::fft(buf);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_FftBluestein)->Arg(1000)->Arg(6300);

void BM_Rfft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<double> buf(n);
  for (auto& v : buf) v = rng.gaussian();
  for (auto _ : state) {
    auto spec = dsp::rfft(buf);
    benchmark::DoNotOptimize(spec);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_Rfft)->Arg(64)->Arg(1024)->Arg(16384);

void BM_StftPower(benchmark::State& state) {
  Rng rng(3);
  const Signal vib = dsp::white_noise(5.0, 200.0, 0.01, rng);
  for (auto _ : state) {
    auto spec = dsp::stft_power(vib, 64, 16);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_StftPower);

void BM_StftPlanned(benchmark::State& state) {
  // Audio-baseline shape: 16 kHz recording, 512-point window, 128 hop —
  // exercises the plan cache and the allocation-free frame loop at the
  // audio rate (BM_StftPower covers the 200 Hz accelerometer shape).
  Rng rng(12);
  const Signal audio = dsp::white_noise(1.0, 16000.0, 0.05, rng);
  for (auto _ : state) {
    auto spec = dsp::stft_power(audio, 512, 128);
    benchmark::DoNotOptimize(spec);
  }
}
BENCHMARK(BM_StftPlanned);

void BM_Mfcc(benchmark::State& state) {
  Rng rng(4);
  const Signal audio = dsp::white_noise(1.0, 16000.0, 0.05, rng);
  for (auto _ : state) {
    auto mfcc = dsp::compute_mfcc(audio);
    benchmark::DoNotOptimize(mfcc);
  }
}
BENCHMARK(BM_Mfcc);

void BM_Mel(benchmark::State& state) {
  // Filterbank apply + DCT-II on one frame's power spectrum — the
  // per-frame inner step of MFCC extraction, isolated from the FFT.
  Rng rng(13);
  const auto bank = dsp::mel_filterbank(40, 512, 16000.0, 0.0, 900.0);
  std::vector<double> power(bank.bins());
  for (auto& v : power) v = rng.uniform(0.0, 1.0);
  std::vector<double> mel(bank.size());
  std::vector<double> coeffs(14);
  for (auto _ : state) {
    bank.apply(power, mel);
    for (double& v : mel) v = std::log(v + 1e-12);
    dsp::dct2_into(mel, coeffs);
    benchmark::DoNotOptimize(coeffs);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(bank.size()));
}
BENCHMARK(BM_Mel);

void BM_Resample(benchmark::State& state) {
  // The 16 kHz -> 200 Hz downsampling path: 101-tap anti-alias FIR plus
  // linear interpolation, the exact shape the cross-domain capture uses.
  Rng rng(14);
  const Signal audio = dsp::white_noise(1.0, 16000.0, 0.05, rng);
  for (auto _ : state) {
    auto low = dsp::resample(audio, 200.0);
    benchmark::DoNotOptimize(low);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(audio.size()));
}
BENCHMARK(BM_Resample);

void BM_Correlation2d(benchmark::State& state) {
  // Fused five-moment Pearson over a pair of full-size spectrograms.
  Rng rng(15);
  dsp::Spectrogram a(256, 33, 1.0, 0.01), b(256, 33, 1.0, 0.01);
  for (double& v : a.values()) v = rng.gaussian(0.5, 1.0);
  for (double& v : b.values()) v = rng.gaussian(0.4, 1.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::correlation_2d(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.frames() * a.bins()));
}
BENCHMARK(BM_Correlation2d);

void BM_SyncEstimate(benchmark::State& state) {
  Rng rng(5);
  device::SyncChannel sync;
  const Signal scene = dsp::white_noise(1.5, 16000.0, 0.05, rng);
  const Signal delayed = sync.delayed_view(scene, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sync.estimate_delay_s(scene, delayed));
  }
}
BENCHMARK(BM_SyncEstimate);

void BM_CrossDomainCapture(benchmark::State& state) {
  Rng rng(6);
  device::Wearable wearable;
  const Signal rec = dsp::white_noise(1.5, 16000.0, 0.05, rng);
  for (auto _ : state) {
    Rng r(7);
    auto vib = wearable.cross_domain_capture(rec, r);
    benchmark::DoNotOptimize(vib);
  }
}
BENCHMARK(BM_CrossDomainCapture);

void BM_FullPipelineScore(benchmark::State& state) {
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 8);
  Rng rng(9);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto trial = sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), user);
  core::OracleSegmenter segmenter(trial.alignment,
                                  eval::reference_sensitive_set());
  core::DefenseSystem system{core::DefenseConfig{}};
  for (auto _ : state) {
    Rng r(10);
    benchmark::DoNotOptimize(
        system.score(trial.va, trial.wearable, &segmenter, r));
  }
}
BENCHMARK(BM_FullPipelineScore);

void BM_StreamingScore(benchmark::State& state) {
  // Time-to-verdict of the streaming pipeline after consuming the given
  // percentage of the trial's frames (the benchmark arg). 40% and 70% time
  // the anytime path — ingest, block processing and a provisional verdict
  // over the prefix; 100% runs to completion in kExactBatch mode, i.e. the
  // full streaming overhead plus the bit-identical batch re-score. Compare
  // against BM_FullPipelineScore for the streaming layer's overhead.
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 8);
  Rng rng(9);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto trial = sim.legitimate_trial(
      speech::command_by_text("turn on the lights"), user);
  core::OracleSegmenter segmenter(trial.alignment,
                                  eval::reference_sensitive_set());
  core::DefenseSystem system{core::DefenseConfig{}};

  const double pct = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t va_limit =
      static_cast<std::size_t>(pct * static_cast<double>(trial.va.size()));
  const std::size_t wear_limit = static_cast<std::size_t>(
      pct * static_cast<double>(trial.wearable.size()));
  core::StreamingConfig cfg;
  cfg.finalize = state.range(0) >= 100
                     ? core::StreamingConfig::Finalize::kExactBatch
                     : core::StreamingConfig::Finalize::kProvisional;
  core::StreamingPipeline pipeline(system, cfg);
  constexpr std::size_t kFrame = 1024;  // ~64 ms pushes at 16 kHz
  for (auto _ : state) {
    pipeline.begin(trial.va.sample_rate(), &segmenter, Rng(10));
    for (std::size_t off = 0; off < va_limit || off < wear_limit;
         off += kFrame) {
      const auto frame_of = [off](const Signal& s, std::size_t limit) {
        const std::size_t begin = std::min(off, limit);
        const std::size_t end = std::min(off + kFrame, limit);
        return s.samples().subspan(begin, end - begin);
      };
      pipeline.push(frame_of(trial.va, va_limit),
                    frame_of(trial.wearable, wear_limit));
    }
    benchmark::DoNotOptimize(pipeline.finalize());
  }
}
BENCHMARK(BM_StreamingScore)->Arg(40)->Arg(70)->Arg(100);

void BM_ExperimentParallel(benchmark::State& state) {
  // Full Fig. 9-style evaluation at the requested thread count (arg 0 uses
  // the auto/VIBGUARD_THREADS setting). Scores are bit-identical at every
  // thread count; only wall-clock changes.
  eval::ExperimentConfig cfg;
  cfg.num_speakers = 4;
  cfg.legit_trials = 8;
  cfg.attack_trials = 8;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    eval::ExperimentRunner runner(cfg, 21);
    auto results =
        runner.run(attacks::AttackType::kReplay, {core::DefenseMode::kFull});
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_ExperimentParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ShardSteal(benchmark::State& state) {
  // Full victim→thief migration of one batch: steal_batch pops the FIFO
  // head under the victim's lock (releasing tenant charges), steal_in
  // re-admits each item under the thief's quota. This is the per-poll
  // cost the supervisor's steal rung pays, so it must stay far below the
  // poll period.
  const auto batch = static_cast<std::size_t>(state.range(0));
  VirtualClock clock;
  serving::ShardConfig cfg;
  cfg.queue_capacity = 256;
  cfg.batch_max = batch;
  cfg.batch_window_us = 0;
  serving::Shard victim(cfg, clock);
  serving::Shard thief(cfg, clock);
  std::vector<serving::WorkItem> stolen;
  std::vector<serving::WorkItem> expired;
  std::vector<serving::WorkItem> drain;
  serving::WorkItem item;
  std::uint64_t id = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      item.request_id = id++;
      victim.submit(item);
    }
    stolen.clear();
    expired.clear();
    victim.steal_batch(stolen, expired, batch);
    for (serving::WorkItem& w : stolen) thief.steal_in(w);
    // Empty the thief so the queues stay at steady-state depth.
    drain.clear();
    benchmark::DoNotOptimize(thief.form_batch(drain, /*force=*/true));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_ShardSteal)->Arg(1)->Arg(8);

}  // namespace
}  // namespace vibguard

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Recorded into the JSON context block so committed benchmark results
  // say which dispatch level produced them.
  benchmark::AddCustomContext(
      "vibguard_simd",
      vibguard::dsp::simd::level_name(vibguard::dsp::simd::active_level()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
