// Table II + Sec. V-A: barrier-effect-sensitive phoneme selection.
//
// Runs the offline selection procedure (Criteria I & II with Q3 FFT
// magnitudes at 75/85 dB through a glass window) over the 37 common
// phonemes and prints the Table II layout with selected phonemes marked.
#include "bench_util.hpp"

#include "acoustics/barrier.hpp"
#include "core/phoneme_selection.hpp"
#include "speech/corpus.hpp"

namespace vibguard {
namespace {

void run_selection() {
  bench::print_header(
      "Table II / Sec. V-A: barrier-effect-sensitive phoneme selection");
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = bench::trials_per_point(30);
  speech::PhonemeCorpus corpus(ccfg, 42);
  core::PhonemeSelector selector(core::SelectionConfig{},
                                 device::Wearable{});
  acoustics::Barrier barrier(acoustics::glass_window());
  Rng rng(7);

  const double alpha_cal = selector.calibrate_threshold(rng);
  std::printf("alpha (config) = %.4g, noise-floor calibration = %.4g\n\n",
              selector.config().alpha, alpha_cal);

  const auto result = selector.select(corpus, barrier, rng);

  std::printf("%-6s %6s %12s %12s %4s %4s %s\n", "phon", "count",
              "maxQ3(adv)", "minQ3(user)", "C1", "C2", "selected");
  for (const auto& info : result.phonemes) {
    const auto& p = speech::phoneme_by_symbol(info.symbol);
    std::printf("%-6s %6d %12.5f %12.5f %4s %4s %s\n", info.symbol.c_str(),
                p.command_frequency, info.max_q3_with_barrier,
                info.min_q3_without_barrier,
                info.passes_criterion1 ? "yes" : "NO",
                info.passes_criterion2 ? "yes" : "NO",
                info.selected ? "**selected**" : "");
  }
  std::printf("\nSelected %zu of %zu common phonemes (paper: 31 of 37).\n",
              result.sensitive.size(), result.phonemes.size());
  std::printf(
      "Criterion-I failures (trigger accelerometer through barrier): ");
  for (const auto& info : result.phonemes) {
    if (!info.passes_criterion1) std::printf("/%s/ ", info.symbol.c_str());
  }
  std::printf("\nCriterion-II failures (cannot trigger accelerometer): ");
  for (const auto& info : result.phonemes) {
    if (!info.passes_criterion2) std::printf("/%s/ ", info.symbol.c_str());
  }
  std::printf(
      "\nPaper shape: loud low vowels (/aa/, /ao/) fail Criterion I; weak\n"
      "phonemes fail Criterion II; the large majority is selected.\n");
}

void BM_Table2(benchmark::State& state) {
  for (auto _ : state) run_selection();
}
BENCHMARK(BM_Table2)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
