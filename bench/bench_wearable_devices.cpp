// Sec. VII-A device generality: the paper evaluates two smartwatches
// (Fossil Gen 5 and Moto 360 2020). This bench runs the full system with
// both wearable models under replay attacks.
#include "bench_util.hpp"

namespace vibguard {
namespace {

void run_devices() {
  bench::print_header(
      "Wearable-device generality: Fossil Gen 5 vs Moto 360 (2020)");
  std::printf("%-20s %10s %10s\n", "wearable", "AUC", "EER");
  std::uint64_t seed = 8800;
  for (const auto& wearable : {device::fossil_gen5(), device::moto360()}) {
    eval::ExperimentConfig cfg;
    cfg.scenario.wearable = wearable;
    cfg.legit_trials = bench::trials_per_point();
    cfg.attack_trials = bench::trials_per_point();
    const auto rocs = bench::run_point(cfg, attacks::AttackType::kReplay,
                                       {core::DefenseMode::kFull}, seed++);
    const auto& roc = rocs.at(core::DefenseMode::kFull);
    std::printf("%-20s %10.3f %10.3f\n", wearable.name.c_str(), roc.auc,
                roc.eer);
  }
  std::printf(
      "\nExpected: both devices defend effectively; the Moto 360's noisier\n"
      "accelerometer costs a little margin.\n");
}

void BM_WearableDevices(benchmark::State& state) {
  for (auto _ : state) run_devices();
}
BENCHMARK(BM_WearableDevices)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
