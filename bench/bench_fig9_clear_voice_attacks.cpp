// Figure 9: ROC/AUC/EER against clear voice attacks (random, replay, voice
// synthesis) for the three evaluation arms: audio-domain baseline,
// vibration-domain baseline (no phoneme selection), and the full system.
// AUC is reported with a 95% bootstrap confidence interval.
#include "bench_util.hpp"

#include "eval/confidence.hpp"

namespace vibguard {
namespace {

using attacks::AttackType;

void run_fig9() {
  bench::print_header("Figure 9: defense against clear voice attacks");
  eval::ExperimentConfig cfg;
  cfg.legit_trials = bench::trials_per_point();
  cfg.attack_trials = bench::trials_per_point();

  const char* panel[] = {"(a) Random attack", "(b) Replay attack",
                         "(c) Voice synthesis attack"};
  const AttackType attacks_list[] = {AttackType::kRandom,
                                     AttackType::kReplay,
                                     AttackType::kSynthesis};
  const double paper_auc[3][3] = {{0.693, 0.884, 0.994},
                                  {0.688, 0.869, 0.995},
                                  {0.662, 0.830, 0.990}};
  const double paper_eer[3][3] = {{0.374, 0.210, 0.038},
                                  {0.375, 0.207, 0.035},
                                  {0.370, 0.205, 0.039}};

  for (int i = 0; i < 3; ++i) {
    eval::ExperimentRunner runner(cfg, 42 + static_cast<std::uint64_t>(i));
    const auto pops = runner.run(attacks_list[i], bench::all_modes());
    std::printf("\n%s\n%-28s %22s %10s %12s %12s\n", panel[i], "method",
                "AUC [95% CI]", "EER", "paper AUC", "paper EER");
    int m = 0;
    for (core::DefenseMode mode : bench::all_modes()) {
      const auto& p = pops.at(mode);
      const auto roc = p.roc();
      const auto ci = eval::bootstrap_auc(p.attack, p.legit);
      std::printf("%-28s %8.3f [%.3f, %.3f] %10.3f %12.3f %12.3f\n",
                  bench::mode_label(mode), ci.point, ci.lower, ci.upper,
                  roc.eer, paper_auc[i][m], paper_eer[i][m]);
      ++m;
    }
  }
  std::printf(
      "\nPaper shape to verify: audio < vibration-baseline < full system in\n"
      "AUC for every attack; full-system EER in the low single digits.\n");
}

void BM_Fig9(benchmark::State& state) {
  for (auto _ : state) run_fig9();
}
BENCHMARK(BM_Fig9)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
