// Figure 11(a): EER under replay attacks at 65/75/85 dB for the three
// evaluation arms.
#include "bench_util.hpp"

namespace vibguard {
namespace {

void run_fig11a() {
  bench::print_header("Figure 11(a): impact of attack sound pressure level");
  std::printf("%-8s %-26s %-26s %-26s\n", "SPL", "Audio baseline EER",
              "Vibration baseline EER", "Our system EER");
  for (double spl : {65.0, 75.0, 85.0}) {
    eval::ExperimentConfig cfg;
    cfg.scenario.attack_spl = spl;
    cfg.legit_trials = bench::trials_per_point();
    cfg.attack_trials = bench::trials_per_point();
    const auto rocs =
        bench::run_point(cfg, attacks::AttackType::kReplay,
                         bench::all_modes(),
                         1100 + static_cast<std::uint64_t>(spl));
    std::printf("%-8.0f %-26.3f %-26.3f %-26.3f\n", spl,
                rocs.at(core::DefenseMode::kAudioBaseline).eer,
                rocs.at(core::DefenseMode::kVibrationBaseline).eer,
                rocs.at(core::DefenseMode::kFull).eer);
  }
  std::printf(
      "\nPaper shape: our system stays at low EER (<~4%%) at 65/75 dB and\n"
      "degrades gracefully at 85 dB, while the audio baseline collapses\n"
      "(~30%% EER at 85 dB).\n");
}

void BM_Fig11a(benchmark::State& state) {
  for (auto _ : state) run_fig11a();
}
BENCHMARK(BM_Fig11a)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
