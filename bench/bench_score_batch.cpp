// Steady-state benchmarks for the staged pipeline's batch scoring API.
//
// The headline measurement is `allocs_per_score`: after one warm-up call
// has grown a Workspace's buffers to their steady-state sizes, repeated
// scoring through that workspace must perform ZERO heap allocations per
// trial (counted via common/alloc_counter.hpp). The batch benchmarks also
// cover the serial stats-collecting path and the ThreadPool fan-out used by
// ExperimentRunner.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/alloc_counter.hpp"
#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "core/segmentation.hpp"
#include "eval/experiment.hpp"
#include "eval/scenario.hpp"

namespace vibguard {
namespace {

/// A small panel of rendered trials shared by the batch benchmarks.
struct TrialPanel {
  std::vector<eval::TrialRecordings> trials;
  std::vector<core::OracleSegmenter> segmenters;
  std::vector<core::ScoreRequest> requests;
};

TrialPanel make_panel(std::size_t n) {
  TrialPanel panel;
  eval::ScenarioSimulator sim(eval::ScenarioConfig{}, 8);
  Rng rng(9);
  const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
  panel.trials.reserve(n);
  panel.segmenters.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    panel.trials.push_back(sim.legitimate_trial(
        speech::command_by_text("turn on the lights"), user));
    panel.segmenters.emplace_back(panel.trials.back().alignment,
                                  eval::reference_sensitive_set());
  }
  for (std::size_t i = 0; i < n; ++i) {
    panel.requests.push_back(core::ScoreRequest{
        &panel.trials[i].va, &panel.trials[i].wearable, &panel.segmenters[i],
        Rng(10 + i)});
  }
  return panel;
}

void BM_ScoreWarmWorkspace(benchmark::State& state) {
  // One trial scored repeatedly through a caller-owned workspace: the
  // steady-state regime of DefenseSession and ExperimentRunner workers.
  const TrialPanel panel = make_panel(1);
  core::DefenseSystem system{core::DefenseConfig{}};
  core::Workspace workspace;
  {
    // Warm-up: the first score grows every workspace buffer (and the
    // thread-local FFT plans) to steady-state size.
    Rng r(10);
    system.score(panel.trials[0].va, panel.trials[0].wearable,
                 &panel.segmenters[0], r, workspace);
  }
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    Rng r(10);
    const std::uint64_t before = allocation_count();
    benchmark::DoNotOptimize(system.score(panel.trials[0].va,
                                          panel.trials[0].wearable,
                                          &panel.segmenters[0], r, workspace));
    allocs += allocation_count() - before;
  }
  // Target: 0. Any regression that re-introduces per-trial allocations in
  // the scoring hot path shows up here immediately.
  state.counters["allocs_per_score"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ScoreWarmWorkspace);

void BM_ScoreBatchSerial(benchmark::State& state) {
  // Serial batch with per-stage stats collection (the DefenseSession
  // process_batch path).
  const TrialPanel panel = make_panel(4);
  core::DefenseSystem system{core::DefenseConfig{}};
  core::Workspace workspace;
  core::PipelineTrace trace;
  core::PipelineStats stats;
  std::vector<double> scores(panel.requests.size());
  system.score_batch(panel.requests, scores, workspace, &trace, &stats);
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t before = allocation_count();
    system.score_batch(panel.requests, scores, workspace, &trace, &stats);
    allocs += allocation_count() - before;
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(panel.requests.size()));
  state.counters["allocs_per_trial"] = benchmark::Counter(
      static_cast<double>(allocs) /
          static_cast<double>(panel.requests.size()),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ScoreBatchSerial);

void BM_ScoreBatchParallel(benchmark::State& state) {
  // ThreadPool fan-out with one warm workspace per worker (the
  // ExperimentRunner path). Scores are bit-identical to the serial batch.
  const TrialPanel panel = make_panel(8);
  core::DefenseSystem system{core::DefenseConfig{}};
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<core::Workspace> workspaces(
      std::max<std::size_t>(1, pool.num_threads()));
  std::vector<double> scores(panel.requests.size());
  system.score_batch(panel.requests, scores, pool, workspaces);
  for (auto _ : state) {
    system.score_batch(panel.requests, scores, pool, workspaces);
    benchmark::DoNotOptimize(scores.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(panel.requests.size()));
}
BENCHMARK(BM_ScoreBatchParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
