// Figure 11(d): full-system EER across the four room environments.
#include "bench_util.hpp"

namespace vibguard {
namespace {

void run_fig11d() {
  bench::print_header("Figure 11(d): impact of room environments");
  std::printf("%-10s %-10s %-10s %-12s %-12s\n", "room", "random", "replay",
              "synthesis", "hidden");
  std::uint64_t seed = 4400;
  for (const auto& room : acoustics::all_rooms()) {
    std::printf("%-10s ", room.name.c_str());
    for (auto attack : attacks::all_attack_types()) {
      eval::ExperimentConfig cfg;
      cfg.scenario.room = room;
      cfg.legit_trials = bench::trials_per_point();
      cfg.attack_trials = bench::trials_per_point();
      const auto rocs =
          bench::run_point(cfg, attack, {core::DefenseMode::kFull}, seed++);
      std::printf("%-11.3f ", rocs.at(core::DefenseMode::kFull).eer);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: EER below ~5%% in every room; hidden voice attacks\n"
      "near 0%% (their 0-6 kHz occupancy maximizes the barrier effect).\n");
}

void BM_Fig11d(benchmark::State& state) {
  for (auto _ : state) run_fig11d();
}
BENCHMARK(BM_Fig11d)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
