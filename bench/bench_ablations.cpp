// Ablation study over the design choices DESIGN.md calls out:
//   1. amplifier LF-noise injection (the detector's physical signal)
//   2. the <=5 Hz spectrogram crop (accelerometer artifact removal)
//   3. max-normalization (distance invariance)
//   4. phoneme selection (the paper's own headline ablation)
//   5. aliasing (anti-alias filter inserted before 200 Hz sampling)
// Each ablation disables one mechanism and reports AUC/EER under replay
// attacks.
#include "bench_util.hpp"

namespace vibguard {
namespace {

struct Ablation {
  const char* name;
  eval::ExperimentConfig cfg;
  core::DefenseMode mode = core::DefenseMode::kFull;
};

void run_ablations() {
  bench::print_header("Ablation study (replay attacks, Room A)");

  eval::ExperimentConfig base;
  base.legit_trials = bench::trials_per_point();
  base.attack_trials = bench::trials_per_point();

  std::vector<Ablation> ablations;
  ablations.push_back({"full system (reference)", base});

  {
    Ablation a{"- amplifier noise injection", base};
    a.cfg.scenario.wearable.accelerometer.lf_noise_coeff = 0.0;
    ablations.push_back(a);
  }
  {
    Ablation a{"- <=5 Hz crop", base};
    a.cfg.defense.features.crop_below_hz = 0.0;
    a.cfg.defense.features.highpass_hz = 0.0;
    ablations.push_back(a);
  }
  {
    Ablation a{"- max-normalization", base};
    a.cfg.defense.features.normalize = false;
    ablations.push_back(a);
  }
  {
    Ablation a{"- phoneme selection", base,
               core::DefenseMode::kVibrationBaseline};
    ablations.push_back(a);
  }
  {
    Ablation a{"- aliasing (anti-alias filter on)", base};
    a.cfg.scenario.wearable.accelerometer.anti_alias = true;
    ablations.push_back(a);
  }

  std::printf("%-36s %10s %10s\n", "configuration", "AUC", "EER");
  std::uint64_t seed = 5500;
  for (const auto& ab : ablations) {
    const auto rocs =
        bench::run_point(ab.cfg, attacks::AttackType::kReplay, {ab.mode},
                         seed++);
    const auto& roc = rocs.at(ab.mode);
    std::printf("%-36s %10.3f %10.3f\n", ab.name, roc.auc, roc.eer);
  }
  std::printf(
      "\nExpected: every ablation degrades AUC/EER relative to the\n"
      "reference; removing noise injection or aliasing hurts most (they\n"
      "carry the cross-domain evidence).\n");
}

void BM_Ablations(benchmark::State& state) {
  for (auto _ : state) run_ablations();
}
BENCHMARK(BM_Ablations)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
