// Figure 11(b): full-system EER for wood vs glass barriers under all four
// attack types.
#include "bench_util.hpp"

namespace vibguard {
namespace {

void run_fig11b() {
  bench::print_header("Figure 11(b): impact of barrier materials");
  std::printf("%-10s %-10s %-10s %-12s %-12s\n", "material", "random",
              "replay", "synthesis", "hidden");
  const std::vector<std::pair<const char*, acoustics::RoomConfig>>
      materials = {{"Wood", acoustics::room_b()},
                   {"Glass", acoustics::room_a()}};
  for (const auto& [name, room] : materials) {
    std::printf("%-10s ", name);
    std::uint64_t seed = 2200;
    for (auto attack : attacks::all_attack_types()) {
      eval::ExperimentConfig cfg;
      cfg.scenario.room = room;
      cfg.legit_trials = bench::trials_per_point();
      cfg.attack_trials = bench::trials_per_point();
      const auto rocs =
          bench::run_point(cfg, attack, {core::DefenseMode::kFull}, seed++);
      std::printf("%-11.3f ", rocs.at(core::DefenseMode::kFull).eer);
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: EERs similar across the two materials, all below\n"
      "~4-5%%.\n");
}

void BM_Fig11b(benchmark::State& state) {
  for (auto _ : state) run_fig11b();
}
BENCHMARK(BM_Fig11b)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
