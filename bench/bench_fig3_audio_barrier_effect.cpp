// Figure 3: phoneme spectra before/after passing the barrier (audio domain).
//
// 100 segments of /ae/ (vowel) and /v/ (consonant) from five male and five
// female speakers, played at 75 dB through a glass window; average FFT
// magnitude over 0-3000 Hz before and after the barrier.
#include "bench_util.hpp"

#include "acoustics/barrier.hpp"
#include "common/db.hpp"
#include "dsp/spectral.hpp"
#include "speech/corpus.hpp"

namespace vibguard {
namespace {

constexpr std::size_t kPoints = 31;  // 100 Hz grid to 3 kHz
constexpr double kMaxHz = 3000.0;

std::vector<double> average_spectrum(
    const std::vector<speech::PhonemeSegment>& segments,
    const acoustics::Barrier* barrier) {
  std::vector<std::vector<double>> spectra;
  for (const auto& seg : segments) {
    Signal s = seg.audio.scaled_to_rms(spl_to_rms(75.0));
    if (barrier != nullptr) s = barrier->transmit(s);
    spectra.push_back(dsp::magnitude_spectrum_resampled(s, kMaxHz, kPoints));
  }
  return dsp::average_spectra(spectra);
}

void run_fig3() {
  bench::print_header(
      "Figure 3: average FFT magnitude before/after barrier (audio domain)");
  speech::CorpusConfig ccfg;
  ccfg.segments_per_phoneme = bench::trials_per_point(100);
  speech::PhonemeCorpus corpus(ccfg, 42);
  acoustics::Barrier barrier(acoustics::glass_window());

  for (const char* sym : {"ae", "v"}) {
    const auto segments = corpus.segments(sym);
    const auto before = average_spectrum(segments, nullptr);
    const auto after = average_spectrum(segments, &barrier);
    std::printf("\n/%s/:  %10s  %14s  %14s\n", sym, "freq(Hz)", "before",
                "after");
    double hf_before = 0.0, hf_after = 0.0, lf_before = 0.0, lf_after = 0.0;
    for (std::size_t i = 0; i < kPoints; ++i) {
      const double f =
          kMaxHz * static_cast<double>(i) / static_cast<double>(kPoints - 1);
      std::printf("      %10.0f  %14.6f  %14.6f\n", f, before[i], after[i]);
      if (f > 500.0) {
        hf_before += before[i];
        hf_after += after[i];
      } else {
        lf_before += before[i];
        lf_after += after[i];
      }
    }
    std::printf(
        "  >500 Hz attenuation: %.1f dB | <=500 Hz attenuation: %.1f dB\n",
        amplitude_to_db(hf_before / std::max(hf_after, 1e-12)),
        amplitude_to_db(lf_before / std::max(lf_after, 1e-12)));
  }
  std::printf(
      "\nPaper shape: high-frequency components (>500 Hz) of BOTH phonemes\n"
      "are attenuated far more than low frequencies; the thru-barrier vowel\n"
      "resembles the direct consonant, so the audio domain is unreliable.\n");
}

void BM_Fig3(benchmark::State& state) {
  for (auto _ : state) run_fig3();
}
BENCHMARK(BM_Fig3)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
