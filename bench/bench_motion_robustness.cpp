// Robustness to wearer motion: the user performs daily activities (rest,
// typing, walking, running) during the cross-domain capture. The ≤5 Hz
// spectrogram crop plus the high-pass pre-filter are designed to remove
// exactly this interference (paper Sec. VI-B, ref [22]); this bench
// quantifies how much headroom remains, including with the crop disabled.
#include "bench_util.hpp"

#include "sensors/body_motion.hpp"

namespace vibguard {
namespace {

void run_motion() {
  bench::print_header(
      "Motion robustness: replay attacks while the wearer moves");
  std::printf("%-12s %14s %14s   %s\n", "activity", "AUC", "EER",
              "(crop disabled: AUC / EER)");
  std::uint64_t seed = 9100;
  for (sensors::Activity activity : sensors::all_activities()) {
    eval::ExperimentConfig cfg;
    cfg.legit_trials = bench::trials_per_point();
    cfg.attack_trials = bench::trials_per_point();
    cfg.defense.user_activity = activity;
    const auto rocs = bench::run_point(cfg, attacks::AttackType::kReplay,
                                       {core::DefenseMode::kFull}, seed);

    eval::ExperimentConfig nocrop = cfg;
    nocrop.defense.features.crop_below_hz = 0.0;
    nocrop.defense.features.highpass_hz = 0.0;
    const auto rocs_nocrop = bench::run_point(
        nocrop, attacks::AttackType::kReplay, {core::DefenseMode::kFull},
        seed);
    ++seed;

    const auto& r = rocs.at(core::DefenseMode::kFull);
    const auto& rn = rocs_nocrop.at(core::DefenseMode::kFull);
    std::printf("%-12s %14.3f %14.3f   (%.3f / %.3f)\n",
                sensors::activity_name(activity).c_str(), r.auc, r.eer,
                rn.auc, rn.eer);
  }
  std::printf(
      "\nExpected: the crop + zero-phase high-pass keep resting/typing/\n"
      "walking near the motion-free operating point; running (arm-swing\n"
      "harmonics above 5 Hz) remains an honest limitation -- a deployment\n"
      "would re-prompt when large motion is detected. Without the crop,\n"
      "every activity corrupts the features.\n");
}

void BM_MotionRobustness(benchmark::State& state) {
  for (auto _ : state) run_motion();
}
BENCHMARK(BM_MotionRobustness)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
