// Related-work comparison (paper Sec. VIII): VibGuard vs WearID-style
// direct vibration verification [30] and 2MA-style two-microphone source
// verification [27], under replay attacks in two geometries:
//
//   (1) standard   — user near the wearable, attacker behind the barrier
//   (2) adversarial — the attacker's loudspeaker placed right outside the
//       barrier NEAR the wearable (0.5 m behind it) while the VA is 4 m
//       away, mimicking the level ratio 2MA expects from a legitimate user.
#include "bench_util.hpp"

#include "core/baselines.hpp"
#include "eval/scenario.hpp"

namespace vibguard {
namespace {

struct Scores {
  std::vector<double> legit;
  std::vector<double> attack;
};

void run_geometry(const char* name, const eval::ScenarioConfig& scfg,
                  std::uint64_t seed) {
  const std::size_t trials = bench::trials_per_point(24);
  eval::ScenarioSimulator sim(scfg, seed);
  Rng rng(seed + 1);
  auto speakers = speech::sample_population(4, rng);
  const auto lexicon = speech::command_lexicon();

  core::DefenseSystem vibguard_system{core::DefenseConfig{}};
  core::WearIdVerifier wearid;
  core::TwoMicVerifier twomic;

  Scores ours, wid, tma;
  Rng score_rng(seed + 2);
  for (std::size_t i = 0; i < 2 * trials; ++i) {
    const bool is_attack = i >= trials;
    const auto& cmd = lexicon[(i * 3 + 1) % lexicon.size()];
    const auto& user = speakers[i % speakers.size()];
    const auto& adv = speakers[(i + 1) % speakers.size()];
    const auto trial =
        is_attack ? sim.attack_trial(attacks::AttackType::kReplay, cmd, user,
                                     adv)
                  : sim.legitimate_trial(cmd, user);
    core::OracleSegmenter seg(trial.alignment,
                              eval::reference_sensitive_set());
    Rng r1 = score_rng.fork(i);
    Rng r2 = score_rng.fork(i + 1000);
    auto& o = is_attack ? ours.attack : ours.legit;
    auto& w = is_attack ? wid.attack : wid.legit;
    auto& t = is_attack ? tma.attack : tma.legit;
    o.push_back(
        vibguard_system.score(trial.va, trial.wearable, &seg, r1));
    // WearID sees the raw sound field at the wearable (its recording, pre
    // replay) vs the VA recording.
    w.push_back(wearid.score(trial.wearable, trial.va, r2));
    t.push_back(twomic.score(trial.wearable, trial.va));
  }

  std::printf("\n-- %s --\n%-24s %10s %10s\n", name, "system", "AUC", "EER");
  std::printf("%-24s %10.3f %10.3f\n", "VibGuard (ours)",
              eval::compute_roc(ours.attack, ours.legit).auc,
              eval::compute_roc(ours.attack, ours.legit).eer);
  std::printf("%-24s %10.3f %10.3f\n", "WearID-style",
              eval::compute_roc(wid.attack, wid.legit).auc,
              eval::compute_roc(wid.attack, wid.legit).eer);
  std::printf("%-24s %10.3f %10.3f\n", "2MA-style",
              eval::compute_roc(tma.attack, tma.legit).auc,
              eval::compute_roc(tma.attack, tma.legit).eer);
}

void run_related_work() {
  bench::print_header(
      "Related-work comparison (Sec. VIII): replay attacks");

  eval::ScenarioConfig standard;
  run_geometry("standard geometry (user 0.4 m from wearable)", standard,
               6600);

  eval::ScenarioConfig mimicry;
  mimicry.barrier_to_wearable_m = 0.5;  // attacker close to the wearable...
  mimicry.barrier_to_va_m = 4.0;        // ...and far from the VA
  run_geometry("2MA-mimicry geometry (attacker near wearable wall)",
               mimicry, 7700);

  std::printf(
      "\nExpected: 2MA-style verification collapses under geometry mimicry\n"
      "(the level ratio it checks is reproduced by the attacker), while\n"
      "VibGuard's vibration-domain evidence is position-independent.\n"
      "WearID-style direct capture suffers in BOTH geometries because the\n"
      "user speaks ~0.4 m from the wrist — beyond its working range.\n");
}

void BM_RelatedWork(benchmark::State& state) {
  for (auto _ : state) run_related_work();
}
BENCHMARK(BM_RelatedWork)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
