// Table I: thru-barrier attack success against four commercial VA devices.
//
// Reproduces the paper's attack study: a loudspeaker 10 cm outside a glass
// window / wooden door replays wake words at 65 and 75 dB; the VA device is
// 2 m behind the barrier. 10 attempts per cell; entries are successes
// "65dB; 75dB". Siri devices embed speaker verification, so random and
// synthesis attacks do not apply ("-"), matching the paper.
#include "bench_util.hpp"

#include "device/va_device.hpp"
#include "eval/scenario.hpp"

namespace vibguard {
namespace {

using attacks::AttackType;

struct Cell {
  int successes65 = -1;  // -1 = not applicable
  int successes75 = -1;
};

int run_attempts(const device::VaDeviceProfile& profile,
                 const acoustics::RoomConfig& room, AttackType type,
                 double spl, std::uint64_t seed) {
  eval::ScenarioConfig cfg;
  cfg.room = room;
  eval::ScenarioSimulator sim(cfg, seed);
  Rng rng(seed ^ 0xbeefULL);
  auto victim = speech::sample_speaker(speech::Sex::kFemale, rng);
  auto adversary = speech::sample_speaker(speech::Sex::kMale, rng);
  const auto& wake = speech::command_by_text(profile.wake_word);
  device::VaDevice device(profile);
  attacks::AttackGenerator gen;

  int successes = 0;
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto sound = gen.generate(type, wake, victim, adversary, rng);
    const Signal received = sim.attack_sound_at_va(sound.audio, spl);
    // Replay attacks replay the enrolled user's own voice, which passes
    // Siri's voice match.
    if (device.triggers(received, attacks::command_kind(type),
                        /*is_enrolled_voice=*/type == AttackType::kReplay,
                        rng)) {
      ++successes;
    }
  }
  return successes;
}

void print_table1() {
  bench::print_header(
      "Table I: thru-barrier attack success out of 10 attempts (65dB; 75dB)");
  const std::vector<AttackType> attack_cols = {
      AttackType::kRandom, AttackType::kReplay, AttackType::kSynthesis};
  const std::vector<std::pair<const char*, acoustics::RoomConfig>> barriers =
      {{"Glass window", acoustics::room_a()},
       {"Wooden door", acoustics::room_b()}};

  for (const auto& [barrier_name, room] : barriers) {
    std::printf("\n-- %s --\n", barrier_name);
    std::printf("%-14s %-10s %-16s %-16s %-16s\n", "Device", "Command",
                "Random", "Replay", "Synthesis");
    std::uint64_t seed = 1000;
    for (const auto& profile : device::all_va_devices()) {
      std::string cells[3];
      for (std::size_t a = 0; a < attack_cols.size(); ++a) {
        const AttackType t = attack_cols[a];
        const bool applicable =
            !(profile.requires_voice_match && t != AttackType::kReplay);
        if (!applicable) {
          cells[a] = "-";
          continue;
        }
        const int s65 = run_attempts(profile, room, t, 65.0, seed++);
        const int s75 = run_attempts(profile, room, t, 75.0, seed++);
        cells[a] = std::to_string(s65) + "/10; " + std::to_string(s75) +
                   "/10";
      }
      std::printf("%-14s %-10s %-16s %-16s %-16s\n", profile.name.c_str(),
                  profile.wake_word.c_str(), cells[0].c_str(),
                  cells[1].c_str(), cells[2].c_str());
    }
    // Hidden voice attack on Google Home (paper text: 5/10 at 65 dB through
    // glass, 10/10 at 75 dB and through wood).
    const int h65 = run_attempts(device::google_home(), room,
                                 AttackType::kHiddenVoice, 65.0, seed++);
    const int h75 = run_attempts(device::google_home(), room,
                                 AttackType::kHiddenVoice, 75.0, seed++);
    std::printf("%-14s %-10s hidden voice: %d/10; %d/10\n", "Google Home",
                "ok google", h65, h75);
  }
  std::printf(
      "\nPaper shape: smart speakers trigger at moderate/high rates, the\n"
      "iPhone rarely at 65dB; all devices trigger reliably at 75dB.\n");
}

void BM_Table1(benchmark::State& state) {
  for (auto _ : state) print_table1();
}
BENCHMARK(BM_Table1)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
