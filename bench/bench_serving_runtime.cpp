// Micro-benchmarks for the sharded serving runtime's data-plane
// primitives: SessionSlab open/lookup/close churn, MutexRingQueue
// push/pop, consistent-hash ring placement, and the shard's
// submit → form_batch hot path (no pipeline scoring — this is the
// bookkeeping cost a request pays on top of being scored).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "serving/session_slab.hpp"
#include "serving/shard.hpp"

namespace vibguard::serving {
namespace {

void BM_SessionSlabInsertEraseChurn(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  SessionSlab slab;
  std::vector<SessionHandle> handles;
  handles.reserve(live);
  SessionRecord record;
  for (std::size_t i = 0; i < live; ++i) {
    record.session_id = i;
    handles.push_back(slab.insert(record));
  }
  // Steady-state churn: one close + one open per iteration, cycling
  // through the resident set so the free list stays warm.
  std::size_t cursor = 0;
  for (auto _ : state) {
    slab.erase(handles[cursor]);
    record.session_id = 1'000'000 + cursor;
    handles[cursor] = slab.insert(record);
    benchmark::DoNotOptimize(handles[cursor]);
    cursor = (cursor + 1) % live;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionSlabInsertEraseChurn)->Arg(1024)->Arg(65536);

void BM_SessionSlabLookup(benchmark::State& state) {
  const auto live = static_cast<std::size_t>(state.range(0));
  SessionSlab slab;
  std::vector<SessionHandle> handles;
  handles.reserve(live);
  SessionRecord record;
  for (std::size_t i = 0; i < live; ++i) {
    record.session_id = i;
    handles.push_back(slab.insert(record));
  }
  std::size_t cursor = 0;
  for (auto _ : state) {
    SessionRecord* r = slab.get(handles[cursor]);
    benchmark::DoNotOptimize(r);
    cursor = (cursor + 1) % live;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SessionSlabLookup)->Arg(1024)->Arg(65536);

void BM_MutexRingQueuePushPop(benchmark::State& state) {
  MutexRingQueue queue(256);
  WorkItem item;
  WorkItem out;
  for (auto _ : state) {
    queue.try_push(item);
    queue.try_pop(out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexRingQueuePushPop);

void BM_ConsistentHashRingLookup(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  ConsistentHashRing ring(workers, 64);
  std::uint64_t id = 0;
  for (auto _ : state) {
    const std::size_t w = ring.worker_for(mix64(id++));
    benchmark::DoNotOptimize(w);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConsistentHashRingLookup)->Arg(4)->Arg(64);

void BM_ShardSubmitFormBatch(benchmark::State& state) {
  const auto batch_max = static_cast<std::size_t>(state.range(0));
  VirtualClock clock;
  ShardConfig cfg;
  cfg.queue_capacity = 256;
  cfg.batch_max = batch_max;
  cfg.batch_window_us = 0;
  Shard shard(cfg, clock);
  std::vector<WorkItem> batch;
  WorkItem item;
  std::uint64_t id = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch_max; ++i) {
      item.request_id = id++;
      shard.submit(item);
    }
    batch.clear();
    auto formed = shard.form_batch(batch, /*force=*/true);
    benchmark::DoNotOptimize(formed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch_max));
}
BENCHMARK(BM_ShardSubmitFormBatch)->Arg(1)->Arg(8);

}  // namespace
}  // namespace vibguard::serving

BENCHMARK_MAIN();
