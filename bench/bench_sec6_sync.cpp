// Sec. VI-A: cross-device synchronization accuracy.
//
// Sweeps injected network delays and reports the cross-correlation
// estimator's error on realistic paired recordings (direct scene at the VA,
// delayed scene at the wearable, independent noise at both).
#include "bench_util.hpp"

#include <cmath>

#include "eval/scenario.hpp"

namespace vibguard {
namespace {

void run_sec6() {
  bench::print_header(
      "Sec. VI-A: cross-correlation delay estimation (Eq. 5)");
  device::SyncChannel sync;
  std::printf("%12s %16s %16s\n", "delay (ms)", "mean |err| (ms)",
              "max |err| (ms)");

  Rng seeds(123);
  for (double delay_ms : {20.0, 50.0, 100.0, 150.0, 200.0, 250.0}) {
    double total_err = 0.0;
    double max_err = 0.0;
    const int reps = 10;
    for (int r = 0; r < reps; ++r) {
      eval::ScenarioConfig cfg;
      cfg.sync.mean_delay_s = delay_ms / 1000.0;
      cfg.sync.delay_stddev_s = 0.0;
      cfg.sync.min_delay_s = delay_ms / 1000.0;
      cfg.sync.max_delay_s = delay_ms / 1000.0;
      eval::ScenarioSimulator sim(cfg, seeds());
      Rng rng(seeds());
      const auto user = speech::sample_speaker(speech::Sex::kMale, rng);
      const auto trial = sim.legitimate_trial(
          speech::command_by_text("turn on the lights"), user);
      const double est = sync.estimate_delay_s(trial.va, trial.wearable);
      const double err = std::abs(est - trial.true_delay_s) * 1000.0;
      total_err += err;
      max_err = std::max(max_err, err);
    }
    std::printf("%12.0f %16.2f %16.2f\n", delay_ms, total_err / reps,
                max_err);
  }
  std::printf(
      "\nExpected: sub-millisecond mean error across the WiFi-delay range\n"
      "(~100 ms typical), enabling the segment-level comparison.\n");
}

void BM_Sec6(benchmark::State& state) {
  for (auto _ : state) run_sec6();
}
BENCHMARK(BM_Sec6)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace
}  // namespace vibguard

BENCHMARK_MAIN();
