file(REMOVE_RECURSE
  "CMakeFiles/vibguard_attacks.dir/attack.cpp.o"
  "CMakeFiles/vibguard_attacks.dir/attack.cpp.o.d"
  "libvibguard_attacks.a"
  "libvibguard_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
