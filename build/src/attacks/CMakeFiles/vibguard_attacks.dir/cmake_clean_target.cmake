file(REMOVE_RECURSE
  "libvibguard_attacks.a"
)
