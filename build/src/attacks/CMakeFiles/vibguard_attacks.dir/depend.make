# Empty dependencies file for vibguard_attacks.
# This may be replaced when dependencies are built.
