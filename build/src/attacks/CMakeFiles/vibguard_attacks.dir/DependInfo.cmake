
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attacks/attack.cpp" "src/attacks/CMakeFiles/vibguard_attacks.dir/attack.cpp.o" "gcc" "src/attacks/CMakeFiles/vibguard_attacks.dir/attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/vibguard_speech.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/vibguard_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vibguard_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
