
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cpp" "src/nn/CMakeFiles/vibguard_nn.dir/adam.cpp.o" "gcc" "src/nn/CMakeFiles/vibguard_nn.dir/adam.cpp.o.d"
  "/root/repo/src/nn/brnn.cpp" "src/nn/CMakeFiles/vibguard_nn.dir/brnn.cpp.o" "gcc" "src/nn/CMakeFiles/vibguard_nn.dir/brnn.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/vibguard_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/vibguard_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/vibguard_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/vibguard_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/vibguard_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/vibguard_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
