file(REMOVE_RECURSE
  "CMakeFiles/vibguard_nn.dir/adam.cpp.o"
  "CMakeFiles/vibguard_nn.dir/adam.cpp.o.d"
  "CMakeFiles/vibguard_nn.dir/brnn.cpp.o"
  "CMakeFiles/vibguard_nn.dir/brnn.cpp.o.d"
  "CMakeFiles/vibguard_nn.dir/dense.cpp.o"
  "CMakeFiles/vibguard_nn.dir/dense.cpp.o.d"
  "CMakeFiles/vibguard_nn.dir/lstm.cpp.o"
  "CMakeFiles/vibguard_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/vibguard_nn.dir/serialize.cpp.o"
  "CMakeFiles/vibguard_nn.dir/serialize.cpp.o.d"
  "libvibguard_nn.a"
  "libvibguard_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
