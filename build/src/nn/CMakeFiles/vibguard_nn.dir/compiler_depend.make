# Empty compiler generated dependencies file for vibguard_nn.
# This may be replaced when dependencies are built.
