file(REMOVE_RECURSE
  "libvibguard_nn.a"
)
