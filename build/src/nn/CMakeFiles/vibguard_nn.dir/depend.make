# Empty dependencies file for vibguard_nn.
# This may be replaced when dependencies are built.
