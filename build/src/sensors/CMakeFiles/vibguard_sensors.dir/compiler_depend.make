# Empty compiler generated dependencies file for vibguard_sensors.
# This may be replaced when dependencies are built.
