
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/accelerometer.cpp" "src/sensors/CMakeFiles/vibguard_sensors.dir/accelerometer.cpp.o" "gcc" "src/sensors/CMakeFiles/vibguard_sensors.dir/accelerometer.cpp.o.d"
  "/root/repo/src/sensors/body_motion.cpp" "src/sensors/CMakeFiles/vibguard_sensors.dir/body_motion.cpp.o" "gcc" "src/sensors/CMakeFiles/vibguard_sensors.dir/body_motion.cpp.o.d"
  "/root/repo/src/sensors/microphone.cpp" "src/sensors/CMakeFiles/vibguard_sensors.dir/microphone.cpp.o" "gcc" "src/sensors/CMakeFiles/vibguard_sensors.dir/microphone.cpp.o.d"
  "/root/repo/src/sensors/speaker.cpp" "src/sensors/CMakeFiles/vibguard_sensors.dir/speaker.cpp.o" "gcc" "src/sensors/CMakeFiles/vibguard_sensors.dir/speaker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
