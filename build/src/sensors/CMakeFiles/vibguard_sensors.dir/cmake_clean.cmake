file(REMOVE_RECURSE
  "CMakeFiles/vibguard_sensors.dir/accelerometer.cpp.o"
  "CMakeFiles/vibguard_sensors.dir/accelerometer.cpp.o.d"
  "CMakeFiles/vibguard_sensors.dir/body_motion.cpp.o"
  "CMakeFiles/vibguard_sensors.dir/body_motion.cpp.o.d"
  "CMakeFiles/vibguard_sensors.dir/microphone.cpp.o"
  "CMakeFiles/vibguard_sensors.dir/microphone.cpp.o.d"
  "CMakeFiles/vibguard_sensors.dir/speaker.cpp.o"
  "CMakeFiles/vibguard_sensors.dir/speaker.cpp.o.d"
  "libvibguard_sensors.a"
  "libvibguard_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
