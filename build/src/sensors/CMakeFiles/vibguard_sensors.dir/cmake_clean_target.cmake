file(REMOVE_RECURSE
  "libvibguard_sensors.a"
)
