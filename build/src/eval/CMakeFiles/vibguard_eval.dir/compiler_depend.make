# Empty compiler generated dependencies file for vibguard_eval.
# This may be replaced when dependencies are built.
