file(REMOVE_RECURSE
  "libvibguard_eval.a"
)
