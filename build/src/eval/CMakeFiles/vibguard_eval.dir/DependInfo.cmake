
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/confidence.cpp" "src/eval/CMakeFiles/vibguard_eval.dir/confidence.cpp.o" "gcc" "src/eval/CMakeFiles/vibguard_eval.dir/confidence.cpp.o.d"
  "/root/repo/src/eval/experiment.cpp" "src/eval/CMakeFiles/vibguard_eval.dir/experiment.cpp.o" "gcc" "src/eval/CMakeFiles/vibguard_eval.dir/experiment.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/vibguard_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/vibguard_eval.dir/metrics.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/eval/CMakeFiles/vibguard_eval.dir/report.cpp.o" "gcc" "src/eval/CMakeFiles/vibguard_eval.dir/report.cpp.o.d"
  "/root/repo/src/eval/scenario.cpp" "src/eval/CMakeFiles/vibguard_eval.dir/scenario.cpp.o" "gcc" "src/eval/CMakeFiles/vibguard_eval.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/vibguard_speech.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/vibguard_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vibguard_device.dir/DependInfo.cmake"
  "/root/repo/build/src/acoustics/CMakeFiles/vibguard_acoustics.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/vibguard_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vibguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/vibguard_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
