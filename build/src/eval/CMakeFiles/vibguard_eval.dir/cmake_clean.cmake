file(REMOVE_RECURSE
  "CMakeFiles/vibguard_eval.dir/confidence.cpp.o"
  "CMakeFiles/vibguard_eval.dir/confidence.cpp.o.d"
  "CMakeFiles/vibguard_eval.dir/experiment.cpp.o"
  "CMakeFiles/vibguard_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/vibguard_eval.dir/metrics.cpp.o"
  "CMakeFiles/vibguard_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/vibguard_eval.dir/report.cpp.o"
  "CMakeFiles/vibguard_eval.dir/report.cpp.o.d"
  "CMakeFiles/vibguard_eval.dir/scenario.cpp.o"
  "CMakeFiles/vibguard_eval.dir/scenario.cpp.o.d"
  "libvibguard_eval.a"
  "libvibguard_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
