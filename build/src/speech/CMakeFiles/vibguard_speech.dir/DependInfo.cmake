
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/speech/command.cpp" "src/speech/CMakeFiles/vibguard_speech.dir/command.cpp.o" "gcc" "src/speech/CMakeFiles/vibguard_speech.dir/command.cpp.o.d"
  "/root/repo/src/speech/corpus.cpp" "src/speech/CMakeFiles/vibguard_speech.dir/corpus.cpp.o" "gcc" "src/speech/CMakeFiles/vibguard_speech.dir/corpus.cpp.o.d"
  "/root/repo/src/speech/phoneme.cpp" "src/speech/CMakeFiles/vibguard_speech.dir/phoneme.cpp.o" "gcc" "src/speech/CMakeFiles/vibguard_speech.dir/phoneme.cpp.o.d"
  "/root/repo/src/speech/recognizer.cpp" "src/speech/CMakeFiles/vibguard_speech.dir/recognizer.cpp.o" "gcc" "src/speech/CMakeFiles/vibguard_speech.dir/recognizer.cpp.o.d"
  "/root/repo/src/speech/speaker.cpp" "src/speech/CMakeFiles/vibguard_speech.dir/speaker.cpp.o" "gcc" "src/speech/CMakeFiles/vibguard_speech.dir/speaker.cpp.o.d"
  "/root/repo/src/speech/synthesizer.cpp" "src/speech/CMakeFiles/vibguard_speech.dir/synthesizer.cpp.o" "gcc" "src/speech/CMakeFiles/vibguard_speech.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
