# Empty compiler generated dependencies file for vibguard_speech.
# This may be replaced when dependencies are built.
