file(REMOVE_RECURSE
  "libvibguard_speech.a"
)
