file(REMOVE_RECURSE
  "CMakeFiles/vibguard_speech.dir/command.cpp.o"
  "CMakeFiles/vibguard_speech.dir/command.cpp.o.d"
  "CMakeFiles/vibguard_speech.dir/corpus.cpp.o"
  "CMakeFiles/vibguard_speech.dir/corpus.cpp.o.d"
  "CMakeFiles/vibguard_speech.dir/phoneme.cpp.o"
  "CMakeFiles/vibguard_speech.dir/phoneme.cpp.o.d"
  "CMakeFiles/vibguard_speech.dir/recognizer.cpp.o"
  "CMakeFiles/vibguard_speech.dir/recognizer.cpp.o.d"
  "CMakeFiles/vibguard_speech.dir/speaker.cpp.o"
  "CMakeFiles/vibguard_speech.dir/speaker.cpp.o.d"
  "CMakeFiles/vibguard_speech.dir/synthesizer.cpp.o"
  "CMakeFiles/vibguard_speech.dir/synthesizer.cpp.o.d"
  "libvibguard_speech.a"
  "libvibguard_speech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_speech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
