# Empty compiler generated dependencies file for vibguard_device.
# This may be replaced when dependencies are built.
