file(REMOVE_RECURSE
  "libvibguard_device.a"
)
