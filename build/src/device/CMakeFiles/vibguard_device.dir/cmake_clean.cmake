file(REMOVE_RECURSE
  "CMakeFiles/vibguard_device.dir/sync.cpp.o"
  "CMakeFiles/vibguard_device.dir/sync.cpp.o.d"
  "CMakeFiles/vibguard_device.dir/va_device.cpp.o"
  "CMakeFiles/vibguard_device.dir/va_device.cpp.o.d"
  "CMakeFiles/vibguard_device.dir/wearable.cpp.o"
  "CMakeFiles/vibguard_device.dir/wearable.cpp.o.d"
  "libvibguard_device.a"
  "libvibguard_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
