file(REMOVE_RECURSE
  "libvibguard_acoustics.a"
)
