# Empty compiler generated dependencies file for vibguard_acoustics.
# This may be replaced when dependencies are built.
