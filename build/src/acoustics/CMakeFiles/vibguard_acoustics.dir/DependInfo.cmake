
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acoustics/ambient.cpp" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/ambient.cpp.o" "gcc" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/ambient.cpp.o.d"
  "/root/repo/src/acoustics/barrier.cpp" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/barrier.cpp.o" "gcc" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/barrier.cpp.o.d"
  "/root/repo/src/acoustics/material.cpp" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/material.cpp.o" "gcc" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/material.cpp.o.d"
  "/root/repo/src/acoustics/propagation.cpp" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/propagation.cpp.o" "gcc" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/propagation.cpp.o.d"
  "/root/repo/src/acoustics/room.cpp" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/room.cpp.o" "gcc" "src/acoustics/CMakeFiles/vibguard_acoustics.dir/room.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
