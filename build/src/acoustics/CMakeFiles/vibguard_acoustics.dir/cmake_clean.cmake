file(REMOVE_RECURSE
  "CMakeFiles/vibguard_acoustics.dir/ambient.cpp.o"
  "CMakeFiles/vibguard_acoustics.dir/ambient.cpp.o.d"
  "CMakeFiles/vibguard_acoustics.dir/barrier.cpp.o"
  "CMakeFiles/vibguard_acoustics.dir/barrier.cpp.o.d"
  "CMakeFiles/vibguard_acoustics.dir/material.cpp.o"
  "CMakeFiles/vibguard_acoustics.dir/material.cpp.o.d"
  "CMakeFiles/vibguard_acoustics.dir/propagation.cpp.o"
  "CMakeFiles/vibguard_acoustics.dir/propagation.cpp.o.d"
  "CMakeFiles/vibguard_acoustics.dir/room.cpp.o"
  "CMakeFiles/vibguard_acoustics.dir/room.cpp.o.d"
  "libvibguard_acoustics.a"
  "libvibguard_acoustics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_acoustics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
