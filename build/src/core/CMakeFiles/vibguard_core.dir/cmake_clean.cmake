file(REMOVE_RECURSE
  "CMakeFiles/vibguard_core.dir/baselines.cpp.o"
  "CMakeFiles/vibguard_core.dir/baselines.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/detector.cpp.o"
  "CMakeFiles/vibguard_core.dir/detector.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/fusion.cpp.o"
  "CMakeFiles/vibguard_core.dir/fusion.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/phoneme_selection.cpp.o"
  "CMakeFiles/vibguard_core.dir/phoneme_selection.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/pipeline.cpp.o"
  "CMakeFiles/vibguard_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/segmentation.cpp.o"
  "CMakeFiles/vibguard_core.dir/segmentation.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/session.cpp.o"
  "CMakeFiles/vibguard_core.dir/session.cpp.o.d"
  "CMakeFiles/vibguard_core.dir/vibration_features.cpp.o"
  "CMakeFiles/vibguard_core.dir/vibration_features.cpp.o.d"
  "libvibguard_core.a"
  "libvibguard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
