# Empty dependencies file for vibguard_core.
# This may be replaced when dependencies are built.
