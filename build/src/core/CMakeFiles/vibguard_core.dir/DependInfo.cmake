
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/vibguard_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/vibguard_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/fusion.cpp" "src/core/CMakeFiles/vibguard_core.dir/fusion.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/fusion.cpp.o.d"
  "/root/repo/src/core/phoneme_selection.cpp" "src/core/CMakeFiles/vibguard_core.dir/phoneme_selection.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/phoneme_selection.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/vibguard_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/segmentation.cpp" "src/core/CMakeFiles/vibguard_core.dir/segmentation.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/segmentation.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/vibguard_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/session.cpp.o.d"
  "/root/repo/src/core/vibration_features.cpp" "src/core/CMakeFiles/vibguard_core.dir/vibration_features.cpp.o" "gcc" "src/core/CMakeFiles/vibguard_core.dir/vibration_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/vibguard_speech.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/vibguard_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vibguard_device.dir/DependInfo.cmake"
  "/root/repo/build/src/acoustics/CMakeFiles/vibguard_acoustics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/vibguard_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
