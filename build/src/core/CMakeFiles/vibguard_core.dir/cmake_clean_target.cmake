file(REMOVE_RECURSE
  "libvibguard_core.a"
)
