file(REMOVE_RECURSE
  "libvibguard_common.a"
)
