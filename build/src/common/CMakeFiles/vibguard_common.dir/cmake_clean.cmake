file(REMOVE_RECURSE
  "CMakeFiles/vibguard_common.dir/db.cpp.o"
  "CMakeFiles/vibguard_common.dir/db.cpp.o.d"
  "CMakeFiles/vibguard_common.dir/rng.cpp.o"
  "CMakeFiles/vibguard_common.dir/rng.cpp.o.d"
  "CMakeFiles/vibguard_common.dir/signal.cpp.o"
  "CMakeFiles/vibguard_common.dir/signal.cpp.o.d"
  "CMakeFiles/vibguard_common.dir/stats.cpp.o"
  "CMakeFiles/vibguard_common.dir/stats.cpp.o.d"
  "CMakeFiles/vibguard_common.dir/wav.cpp.o"
  "CMakeFiles/vibguard_common.dir/wav.cpp.o.d"
  "libvibguard_common.a"
  "libvibguard_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
