# Empty compiler generated dependencies file for vibguard_common.
# This may be replaced when dependencies are built.
