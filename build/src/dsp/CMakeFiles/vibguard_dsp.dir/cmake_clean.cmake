file(REMOVE_RECURSE
  "CMakeFiles/vibguard_dsp.dir/correlate.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/dtw.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/dtw.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/envelope.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/envelope.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/fft.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/filter.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/generate.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/generate.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/mel.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/mel.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/resample.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/spectral.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/spectral.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/stft.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/vibguard_dsp.dir/window.cpp.o"
  "CMakeFiles/vibguard_dsp.dir/window.cpp.o.d"
  "libvibguard_dsp.a"
  "libvibguard_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
