
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/correlate.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/correlate.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/correlate.cpp.o.d"
  "/root/repo/src/dsp/dtw.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/dtw.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/dtw.cpp.o.d"
  "/root/repo/src/dsp/envelope.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/envelope.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/envelope.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filter.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/filter.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/filter.cpp.o.d"
  "/root/repo/src/dsp/generate.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/generate.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/generate.cpp.o.d"
  "/root/repo/src/dsp/mel.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/mel.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/mel.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/spectral.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/spectral.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/spectral.cpp.o.d"
  "/root/repo/src/dsp/stft.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/stft.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/stft.cpp.o.d"
  "/root/repo/src/dsp/window.cpp" "src/dsp/CMakeFiles/vibguard_dsp.dir/window.cpp.o" "gcc" "src/dsp/CMakeFiles/vibguard_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
