# Empty compiler generated dependencies file for vibguard_dsp.
# This may be replaced when dependencies are built.
