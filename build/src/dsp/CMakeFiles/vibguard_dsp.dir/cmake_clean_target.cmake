file(REMOVE_RECURSE
  "libvibguard_dsp.a"
)
