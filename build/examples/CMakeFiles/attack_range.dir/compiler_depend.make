# Empty compiler generated dependencies file for attack_range.
# This may be replaced when dependencies are built.
