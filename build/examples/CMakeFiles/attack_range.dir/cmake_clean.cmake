file(REMOVE_RECURSE
  "CMakeFiles/attack_range.dir/attack_range.cpp.o"
  "CMakeFiles/attack_range.dir/attack_range.cpp.o.d"
  "attack_range"
  "attack_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
