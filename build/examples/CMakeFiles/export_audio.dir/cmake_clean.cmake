file(REMOVE_RECURSE
  "CMakeFiles/export_audio.dir/export_audio.cpp.o"
  "CMakeFiles/export_audio.dir/export_audio.cpp.o.d"
  "export_audio"
  "export_audio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_audio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
