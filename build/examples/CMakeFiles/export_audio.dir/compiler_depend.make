# Empty compiler generated dependencies file for export_audio.
# This may be replaced when dependencies are built.
