file(REMOVE_RECURSE
  "CMakeFiles/phoneme_lab.dir/phoneme_lab.cpp.o"
  "CMakeFiles/phoneme_lab.dir/phoneme_lab.cpp.o.d"
  "phoneme_lab"
  "phoneme_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phoneme_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
