# Empty dependencies file for phoneme_lab.
# This may be replaced when dependencies are built.
