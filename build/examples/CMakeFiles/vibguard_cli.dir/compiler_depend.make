# Empty compiler generated dependencies file for vibguard_cli.
# This may be replaced when dependencies are built.
