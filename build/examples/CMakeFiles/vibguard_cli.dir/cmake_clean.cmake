file(REMOVE_RECURSE
  "CMakeFiles/vibguard_cli.dir/vibguard_cli.cpp.o"
  "CMakeFiles/vibguard_cli.dir/vibguard_cli.cpp.o.d"
  "vibguard_cli"
  "vibguard_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vibguard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
