file(REMOVE_RECURSE
  "CMakeFiles/smart_home_guard.dir/smart_home_guard.cpp.o"
  "CMakeFiles/smart_home_guard.dir/smart_home_guard.cpp.o.d"
  "smart_home_guard"
  "smart_home_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
