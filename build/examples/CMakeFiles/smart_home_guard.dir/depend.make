# Empty dependencies file for smart_home_guard.
# This may be replaced when dependencies are built.
