# Empty dependencies file for acoustics_tests.
# This may be replaced when dependencies are built.
