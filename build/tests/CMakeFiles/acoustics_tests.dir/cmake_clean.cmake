file(REMOVE_RECURSE
  "CMakeFiles/acoustics_tests.dir/acoustics/ambient_test.cpp.o"
  "CMakeFiles/acoustics_tests.dir/acoustics/ambient_test.cpp.o.d"
  "CMakeFiles/acoustics_tests.dir/acoustics/barrier_test.cpp.o"
  "CMakeFiles/acoustics_tests.dir/acoustics/barrier_test.cpp.o.d"
  "CMakeFiles/acoustics_tests.dir/acoustics/material_test.cpp.o"
  "CMakeFiles/acoustics_tests.dir/acoustics/material_test.cpp.o.d"
  "CMakeFiles/acoustics_tests.dir/acoustics/propagation_test.cpp.o"
  "CMakeFiles/acoustics_tests.dir/acoustics/propagation_test.cpp.o.d"
  "CMakeFiles/acoustics_tests.dir/acoustics/room_test.cpp.o"
  "CMakeFiles/acoustics_tests.dir/acoustics/room_test.cpp.o.d"
  "acoustics_tests"
  "acoustics_tests.pdb"
  "acoustics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acoustics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
