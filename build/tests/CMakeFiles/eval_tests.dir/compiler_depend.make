# Empty compiler generated dependencies file for eval_tests.
# This may be replaced when dependencies are built.
