file(REMOVE_RECURSE
  "CMakeFiles/device_tests.dir/device/sync_test.cpp.o"
  "CMakeFiles/device_tests.dir/device/sync_test.cpp.o.d"
  "CMakeFiles/device_tests.dir/device/va_device_test.cpp.o"
  "CMakeFiles/device_tests.dir/device/va_device_test.cpp.o.d"
  "CMakeFiles/device_tests.dir/device/wearable_test.cpp.o"
  "CMakeFiles/device_tests.dir/device/wearable_test.cpp.o.d"
  "device_tests"
  "device_tests.pdb"
  "device_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
