
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dsp/correlate_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/correlate_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/correlate_test.cpp.o.d"
  "/root/repo/tests/dsp/dtw_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/dtw_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/dtw_test.cpp.o.d"
  "/root/repo/tests/dsp/envelope_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/envelope_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/envelope_test.cpp.o.d"
  "/root/repo/tests/dsp/fft_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/fft_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/fft_test.cpp.o.d"
  "/root/repo/tests/dsp/filter_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/filter_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/filter_test.cpp.o.d"
  "/root/repo/tests/dsp/generate_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/generate_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/generate_test.cpp.o.d"
  "/root/repo/tests/dsp/mel_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/mel_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/mel_test.cpp.o.d"
  "/root/repo/tests/dsp/property_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/property_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/property_test.cpp.o.d"
  "/root/repo/tests/dsp/resample_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/resample_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/resample_test.cpp.o.d"
  "/root/repo/tests/dsp/spectral_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/spectral_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/spectral_test.cpp.o.d"
  "/root/repo/tests/dsp/stft_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/stft_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/stft_test.cpp.o.d"
  "/root/repo/tests/dsp/window_test.cpp" "tests/CMakeFiles/dsp_tests.dir/dsp/window_test.cpp.o" "gcc" "tests/CMakeFiles/dsp_tests.dir/dsp/window_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/vibguard_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vibguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/vibguard_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vibguard_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/vibguard_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/vibguard_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/vibguard_speech.dir/DependInfo.cmake"
  "/root/repo/build/src/acoustics/CMakeFiles/vibguard_acoustics.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
