file(REMOVE_RECURSE
  "CMakeFiles/dsp_tests.dir/dsp/correlate_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/correlate_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/dtw_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/dtw_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/envelope_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/envelope_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/fft_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/fft_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/filter_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/filter_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/generate_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/generate_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/mel_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/mel_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/property_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/property_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/resample_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/resample_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/spectral_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/spectral_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/stft_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/stft_test.cpp.o.d"
  "CMakeFiles/dsp_tests.dir/dsp/window_test.cpp.o"
  "CMakeFiles/dsp_tests.dir/dsp/window_test.cpp.o.d"
  "dsp_tests"
  "dsp_tests.pdb"
  "dsp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
