file(REMOVE_RECURSE
  "CMakeFiles/attacks_tests.dir/attacks/attack_test.cpp.o"
  "CMakeFiles/attacks_tests.dir/attacks/attack_test.cpp.o.d"
  "attacks_tests"
  "attacks_tests.pdb"
  "attacks_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attacks_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
