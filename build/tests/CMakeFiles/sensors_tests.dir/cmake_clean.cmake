file(REMOVE_RECURSE
  "CMakeFiles/sensors_tests.dir/sensors/accelerometer_test.cpp.o"
  "CMakeFiles/sensors_tests.dir/sensors/accelerometer_test.cpp.o.d"
  "CMakeFiles/sensors_tests.dir/sensors/body_motion_test.cpp.o"
  "CMakeFiles/sensors_tests.dir/sensors/body_motion_test.cpp.o.d"
  "CMakeFiles/sensors_tests.dir/sensors/microphone_test.cpp.o"
  "CMakeFiles/sensors_tests.dir/sensors/microphone_test.cpp.o.d"
  "CMakeFiles/sensors_tests.dir/sensors/speaker_test.cpp.o"
  "CMakeFiles/sensors_tests.dir/sensors/speaker_test.cpp.o.d"
  "sensors_tests"
  "sensors_tests.pdb"
  "sensors_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensors_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
