# Empty dependencies file for sensors_tests.
# This may be replaced when dependencies are built.
