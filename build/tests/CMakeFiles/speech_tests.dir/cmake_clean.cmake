file(REMOVE_RECURSE
  "CMakeFiles/speech_tests.dir/speech/command_test.cpp.o"
  "CMakeFiles/speech_tests.dir/speech/command_test.cpp.o.d"
  "CMakeFiles/speech_tests.dir/speech/corpus_test.cpp.o"
  "CMakeFiles/speech_tests.dir/speech/corpus_test.cpp.o.d"
  "CMakeFiles/speech_tests.dir/speech/phoneme_test.cpp.o"
  "CMakeFiles/speech_tests.dir/speech/phoneme_test.cpp.o.d"
  "CMakeFiles/speech_tests.dir/speech/recognizer_test.cpp.o"
  "CMakeFiles/speech_tests.dir/speech/recognizer_test.cpp.o.d"
  "CMakeFiles/speech_tests.dir/speech/speaker_test.cpp.o"
  "CMakeFiles/speech_tests.dir/speech/speaker_test.cpp.o.d"
  "CMakeFiles/speech_tests.dir/speech/synthesizer_test.cpp.o"
  "CMakeFiles/speech_tests.dir/speech/synthesizer_test.cpp.o.d"
  "speech_tests"
  "speech_tests.pdb"
  "speech_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
