
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/adam_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/adam_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/adam_test.cpp.o.d"
  "/root/repo/tests/nn/brnn_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/brnn_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/brnn_test.cpp.o.d"
  "/root/repo/tests/nn/dense_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/dense_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/dense_test.cpp.o.d"
  "/root/repo/tests/nn/lstm_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/lstm_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/lstm_test.cpp.o.d"
  "/root/repo/tests/nn/serialize_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/vibguard_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vibguard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/vibguard_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/vibguard_device.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/vibguard_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/vibguard_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/speech/CMakeFiles/vibguard_speech.dir/DependInfo.cmake"
  "/root/repo/build/src/acoustics/CMakeFiles/vibguard_acoustics.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/vibguard_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vibguard_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
