file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/adam_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/adam_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/brnn_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/brnn_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/dense_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/dense_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/lstm_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/lstm_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
