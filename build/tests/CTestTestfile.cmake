# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/dsp_tests[1]_include.cmake")
include("/root/repo/build/tests/acoustics_tests[1]_include.cmake")
include("/root/repo/build/tests/speech_tests[1]_include.cmake")
include("/root/repo/build/tests/sensors_tests[1]_include.cmake")
include("/root/repo/build/tests/device_tests[1]_include.cmake")
include("/root/repo/build/tests/nn_tests[1]_include.cmake")
include("/root/repo/build/tests/attacks_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/eval_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
