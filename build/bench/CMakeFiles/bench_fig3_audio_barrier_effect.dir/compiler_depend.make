# Empty compiler generated dependencies file for bench_fig3_audio_barrier_effect.
# This may be replaced when dependencies are built.
