file(REMOVE_RECURSE
  "CMakeFiles/bench_sec6_sync.dir/bench_sec6_sync.cpp.o"
  "CMakeFiles/bench_sec6_sync.dir/bench_sec6_sync.cpp.o.d"
  "bench_sec6_sync"
  "bench_sec6_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec6_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
