# Empty dependencies file for bench_sec6_sync.
# This may be replaced when dependencies are built.
