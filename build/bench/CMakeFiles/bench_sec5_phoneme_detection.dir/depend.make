# Empty dependencies file for bench_sec5_phoneme_detection.
# This may be replaced when dependencies are built.
