file(REMOVE_RECURSE
  "CMakeFiles/bench_sec5_phoneme_detection.dir/bench_sec5_phoneme_detection.cpp.o"
  "CMakeFiles/bench_sec5_phoneme_detection.dir/bench_sec5_phoneme_detection.cpp.o.d"
  "bench_sec5_phoneme_detection"
  "bench_sec5_phoneme_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec5_phoneme_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
