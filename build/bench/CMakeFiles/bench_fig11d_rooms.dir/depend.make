# Empty dependencies file for bench_fig11d_rooms.
# This may be replaced when dependencies are built.
