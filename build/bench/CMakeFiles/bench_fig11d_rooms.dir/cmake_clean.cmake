file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11d_rooms.dir/bench_fig11d_rooms.cpp.o"
  "CMakeFiles/bench_fig11d_rooms.dir/bench_fig11d_rooms.cpp.o.d"
  "bench_fig11d_rooms"
  "bench_fig11d_rooms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11d_rooms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
