# Empty dependencies file for bench_table2_phoneme_selection.
# This may be replaced when dependencies are built.
