file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_phoneme_selection.dir/bench_table2_phoneme_selection.cpp.o"
  "CMakeFiles/bench_table2_phoneme_selection.dir/bench_table2_phoneme_selection.cpp.o.d"
  "bench_table2_phoneme_selection"
  "bench_table2_phoneme_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_phoneme_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
