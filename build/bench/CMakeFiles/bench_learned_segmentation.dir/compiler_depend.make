# Empty compiler generated dependencies file for bench_learned_segmentation.
# This may be replaced when dependencies are built.
