file(REMOVE_RECURSE
  "CMakeFiles/bench_learned_segmentation.dir/bench_learned_segmentation.cpp.o"
  "CMakeFiles/bench_learned_segmentation.dir/bench_learned_segmentation.cpp.o.d"
  "bench_learned_segmentation"
  "bench_learned_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learned_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
