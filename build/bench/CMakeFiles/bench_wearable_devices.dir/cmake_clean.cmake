file(REMOVE_RECURSE
  "CMakeFiles/bench_wearable_devices.dir/bench_wearable_devices.cpp.o"
  "CMakeFiles/bench_wearable_devices.dir/bench_wearable_devices.cpp.o.d"
  "bench_wearable_devices"
  "bench_wearable_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wearable_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
