# Empty compiler generated dependencies file for bench_wearable_devices.
# This may be replaced when dependencies are built.
