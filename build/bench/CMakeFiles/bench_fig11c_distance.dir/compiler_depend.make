# Empty compiler generated dependencies file for bench_fig11c_distance.
# This may be replaced when dependencies are built.
