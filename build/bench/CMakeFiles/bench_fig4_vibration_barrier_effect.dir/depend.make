# Empty dependencies file for bench_fig4_vibration_barrier_effect.
# This may be replaced when dependencies are built.
