file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_accel_chirp_response.dir/bench_fig7_accel_chirp_response.cpp.o"
  "CMakeFiles/bench_fig7_accel_chirp_response.dir/bench_fig7_accel_chirp_response.cpp.o.d"
  "bench_fig7_accel_chirp_response"
  "bench_fig7_accel_chirp_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_accel_chirp_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
