# Empty compiler generated dependencies file for bench_fig7_accel_chirp_response.
# This may be replaced when dependencies are built.
