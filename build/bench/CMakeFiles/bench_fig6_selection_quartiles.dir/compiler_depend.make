# Empty compiler generated dependencies file for bench_fig6_selection_quartiles.
# This may be replaced when dependencies are built.
