file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_selection_quartiles.dir/bench_fig6_selection_quartiles.cpp.o"
  "CMakeFiles/bench_fig6_selection_quartiles.dir/bench_fig6_selection_quartiles.cpp.o.d"
  "bench_fig6_selection_quartiles"
  "bench_fig6_selection_quartiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_selection_quartiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
