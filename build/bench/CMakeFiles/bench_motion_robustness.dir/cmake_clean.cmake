file(REMOVE_RECURSE
  "CMakeFiles/bench_motion_robustness.dir/bench_motion_robustness.cpp.o"
  "CMakeFiles/bench_motion_robustness.dir/bench_motion_robustness.cpp.o.d"
  "bench_motion_robustness"
  "bench_motion_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motion_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
