# Empty dependencies file for bench_motion_robustness.
# This may be replaced when dependencies are built.
