# Empty compiler generated dependencies file for bench_fig9_clear_voice_attacks.
# This may be replaced when dependencies are built.
