file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_clear_voice_attacks.dir/bench_fig9_clear_voice_attacks.cpp.o"
  "CMakeFiles/bench_fig9_clear_voice_attacks.dir/bench_fig9_clear_voice_attacks.cpp.o.d"
  "bench_fig9_clear_voice_attacks"
  "bench_fig9_clear_voice_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_clear_voice_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
