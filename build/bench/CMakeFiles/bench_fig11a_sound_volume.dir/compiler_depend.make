# Empty compiler generated dependencies file for bench_fig11a_sound_volume.
# This may be replaced when dependencies are built.
