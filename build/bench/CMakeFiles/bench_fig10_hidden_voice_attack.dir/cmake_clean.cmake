file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hidden_voice_attack.dir/bench_fig10_hidden_voice_attack.cpp.o"
  "CMakeFiles/bench_fig10_hidden_voice_attack.dir/bench_fig10_hidden_voice_attack.cpp.o.d"
  "bench_fig10_hidden_voice_attack"
  "bench_fig10_hidden_voice_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hidden_voice_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
