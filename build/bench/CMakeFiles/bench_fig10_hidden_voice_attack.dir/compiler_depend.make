# Empty compiler generated dependencies file for bench_fig10_hidden_voice_attack.
# This may be replaced when dependencies are built.
