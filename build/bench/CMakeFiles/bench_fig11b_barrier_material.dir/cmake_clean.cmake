file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_barrier_material.dir/bench_fig11b_barrier_material.cpp.o"
  "CMakeFiles/bench_fig11b_barrier_material.dir/bench_fig11b_barrier_material.cpp.o.d"
  "bench_fig11b_barrier_material"
  "bench_fig11b_barrier_material.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_barrier_material.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
