# Empty dependencies file for bench_fig11b_barrier_material.
# This may be replaced when dependencies are built.
